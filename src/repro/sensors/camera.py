"""The simulated front camera.

Every simulation step the camera captures a :class:`CameraFrame` containing an
image-plane bounding box per visible object.  The frame is the man-in-the-middle
attack surface: RoboTack intercepts it on the camera's Ethernet link (paper
§III-B) and mutates object boxes (or removes objects) before the ADS's object
detector consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.geometry import BoundingBox, CameraIntrinsics, CameraProjection
from repro.sim.actors import ActorKind, ActorSnapshot
from repro.sim.world import GroundTruthSnapshot

__all__ = ["CameraObject", "CameraFrame", "CameraSensor"]


@dataclass(frozen=True)
class CameraObject:
    """One object as rendered in the camera frame.

    ``actor_id`` identifies the underlying simulated actor; it is simulation
    bookkeeping (used by the detector's per-object noise state and by the
    metrics), not something the victim perception uses for association.
    """

    actor_id: int
    kind: ActorKind
    bbox: BoundingBox
    distance_m: float
    lateral_m: float
    object_height_m: float
    object_width_m: float


@dataclass(frozen=True)
class CameraFrame:
    """All objects visible to the front camera at one time step."""

    time_s: float
    frame_index: int
    objects: tuple[CameraObject, ...] = field(default_factory=tuple)

    def object_for_actor(self, actor_id: int) -> Optional[CameraObject]:
        """The rendering of a specific actor, if visible in this frame."""
        for obj in self.objects:
            if obj.actor_id == actor_id:
                return obj
        return None

    def without_actor(self, actor_id: int) -> "CameraFrame":
        """A copy of the frame with one actor removed (the `Disappear` attack)."""
        return replace(
            self, objects=tuple(o for o in self.objects if o.actor_id != actor_id)
        )

    def with_replaced_object(self, updated: CameraObject) -> "CameraFrame":
        """A copy of the frame with one object replaced (bbox perturbation)."""
        new_objects = tuple(
            updated if o.actor_id == updated.actor_id else o for o in self.objects
        )
        return replace(self, objects=new_objects)


class CameraSensor:
    """Projects world actors into image-plane bounding boxes."""

    def __init__(
        self,
        intrinsics: CameraIntrinsics | None = None,
        max_range_m: float = 110.0,
    ):
        if max_range_m <= 0:
            raise ValueError("camera range must be positive")
        self.projection = CameraProjection(intrinsics)
        self.max_range_m = max_range_m

    def capture(self, snapshot: GroundTruthSnapshot) -> CameraFrame:
        """Render all visible actors into a camera frame."""
        ego = snapshot.ego
        camera_x = ego.position.x + ego.dimensions.length_m / 2.0
        objects: List[CameraObject] = []
        for actor in snapshot.actors:
            rendered = self._render_actor(actor, camera_x, ego.position.y)
            if rendered is not None:
                objects.append(rendered)
        objects.sort(key=lambda o: o.distance_m)
        return CameraFrame(
            time_s=snapshot.time_s,
            frame_index=snapshot.step_index,
            objects=tuple(objects),
        )

    def _render_actor(
        self, actor: ActorSnapshot, camera_x: float, ego_y: float
    ) -> Optional[CameraObject]:
        distance = actor.position.x - camera_x
        if distance <= CameraProjection.MIN_DISTANCE_M or distance > self.max_range_m:
            return None
        lateral = actor.position.y - ego_y
        if not self.projection.in_field_of_view(distance, lateral):
            return None
        # The camera sees the actor's cross-road extent: for vehicles ahead of
        # the EV that is the vehicle width; height is the physical height.
        bbox = self.projection.project(
            distance_m=distance,
            lateral_m=lateral,
            object_width_m=actor.dimensions.width_m,
            object_height_m=actor.dimensions.height_m,
        )
        return CameraObject(
            actor_id=actor.actor_id,
            kind=actor.kind,
            bbox=bbox,
            distance_m=distance,
            lateral_m=lateral,
            object_height_m=actor.dimensions.height_m,
            object_width_m=actor.dimensions.width_m,
        )

"""The full perception system facade.

``PerceptionSystem`` wires together the simulated detector, the multi-object
tracker, the image-to-world transformation, and a registry-selected fusion
policy — the pipeline labelled "Perception System" in paper Fig. 1.

Two configurations are used in the reproduction:

* the **victim ADS** runs the full pipeline with the fusion policy named by
  ``PerceptionConfig.fusion.policy`` (``late`` by default);
* **RoboTack** runs a camera-only instance to reconstruct its own approximate
  world state from the tapped camera feed (paper §III-D, Phase 2).

``use_lidar=False`` is kept as a deprecated alias that forces the
``camera_only`` policy; there is no separate camera-only code path anymore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.perception.detection import Detection, DetectorConfig, SimulatedDetector
from repro.perception.fusion import FusedObstacle, FusionConfig, build_fusion_policy
from repro.perception.mot import MultiObjectTracker, TrackerConfig
from repro.perception.tracker import ObjectTrack
from repro.perception.transforms import ImageToWorldTransform, WorldObjectEstimate
from repro.sensors.camera import CameraFrame
from repro.sensors.lidar import LidarScan

__all__ = ["PerceptionConfig", "PerceptionOutput", "PerceptionSystem"]


@dataclass(frozen=True)
class PerceptionConfig:
    """Configuration of the perception pipeline."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    fusion: FusionConfig = field(default_factory=FusionConfig)
    #: Deprecated alias: ``False`` forces the ``camera_only`` fusion policy,
    #: overriding ``fusion.policy``.  Prefer
    #: ``fusion=FusionConfig(policy="camera_only")``.
    use_lidar: bool = True
    frame_dt_s: float = 1.0 / 15.0

    @property
    def fusion_policy(self) -> str:
        """The fusion-policy name this config resolves to."""
        return self.fusion.policy if self.use_lidar else "camera_only"


@dataclass(frozen=True)
class PerceptionOutput:
    """Everything the perception system produces for one camera frame."""

    time_s: float
    frame_index: int
    detections: tuple[Detection, ...]
    tracks: tuple[ObjectTrack, ...]
    world_estimates: tuple[WorldObjectEstimate, ...]
    obstacles: tuple[FusedObstacle, ...]

    def nearest_obstacle(self) -> Optional[FusedObstacle]:
        """The closest registered obstacle, if any."""
        return self.obstacles[0] if self.obstacles else None

    def estimate_for_actor(self, actor_id: int) -> Optional[WorldObjectEstimate]:
        """Bookkeeping lookup of the camera estimate for a given actor."""
        for estimate in self.world_estimates:
            if estimate.actor_id == actor_id:
                return estimate
        return None

    def obstacle_for_actor(self, actor_id: int) -> Optional[FusedObstacle]:
        """Bookkeeping lookup of the fused obstacle for a given actor."""
        for obstacle in self.obstacles:
            if obstacle.actor_id == actor_id:
                return obstacle
        return None


class PerceptionSystem:
    """Detector + tracker + transform (+ fusion) pipeline."""

    def __init__(
        self,
        config: PerceptionConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or PerceptionConfig()
        self.detector = SimulatedDetector(self.config.detector, rng=rng)
        self.tracker = MultiObjectTracker(self.config.tracker)
        self.transform = ImageToWorldTransform(frame_dt_s=self.config.frame_dt_s)
        self.fusion = build_fusion_policy(self.config.fusion_policy, self.config.fusion)

    def reset(self) -> None:
        """Reset all stateful stages."""
        self.detector.reset()
        self.tracker.reset()
        self.transform.reset()
        self.fusion.reset()

    def process(
        self,
        camera_frame: CameraFrame,
        lidar_scan: Optional[LidarScan] = None,
        ego_speed_mps: float = 0.0,
    ) -> PerceptionOutput:
        """Run the pipeline on one camera frame (and optional LiDAR scan)."""
        detections = self.detector.detect(camera_frame)
        tracks = self.tracker.step(detections)
        # Only tracks that were actually observed this frame (or missed a single
        # frame) count as camera evidence downstream; coasting Kalman
        # predictions are kept for re-association but are not world
        # measurements, otherwise a vanished object would keep "existing" for
        # the whole track-retirement window.
        observed_tracks = [t for t in tracks if t.consecutive_misses <= 1]
        world_estimates = self.transform.transform(observed_tracks)
        obstacles = self.fusion.step(
            camera_estimates=world_estimates,
            lidar_scan=lidar_scan,
            ego_speed_mps=ego_speed_mps,
            frame_dt_s=self.config.frame_dt_s,
        )
        return PerceptionOutput(
            time_s=camera_frame.time_s,
            frame_index=camera_frame.frame_index,
            detections=tuple(detections),
            tracks=tuple(tracks),
            world_estimates=tuple(world_estimates),
            obstacles=tuple(obstacles),
        )

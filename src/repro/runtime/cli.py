"""The ``repro-campaign`` console entry point.

Runs seeded experiment campaigns from the command line, with parallel
execution (``--jobs``), disk-backed artifact caching (``--cache-dir``), and
the full scenario catalog (``--list-scenarios``).  Two modes:

* the default reproduces the paper's Table II evaluation: the six RoboTack
  campaigns plus the DS-5 random baseline, printing the reproduced table and
  the §I headline findings;
* ``--scenario DS-6 --attacker robotack --vector disappear`` runs a single
  custom campaign against any registered scenario and prints its summary row.

Examples::

    repro-campaign --runs 30 --jobs 4
    repro-campaign --scenario DS-7 --attacker robotack --vector disappear --jobs -1
    repro-campaign --list-scenarios
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--runs", type=int, default=10, help="simulation runs per campaign")
    parser.add_argument("--seed", type=int, default=2020, help="root seed for the campaigns")
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0/1 = serial, -1 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist trained predictors and campaign results under this directory",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="run one campaign against this scenario instead of the Table II suite",
    )
    parser.add_argument(
        "--attacker",
        default="robotack",
        help="attacker kind for --scenario mode (robotack, robotack_no_sh, random, none)",
    )
    parser.add_argument(
        "--vector",
        default=None,
        help="attack vector for --scenario mode (disappear, move_out, move_in)",
    )
    parser.add_argument(
        "--predictor",
        default="neural",
        help="safety-potential oracle (neural, kinematic)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the campaign result cache (predictors are still reused)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario catalog and exit",
    )
    return parser


def _print_scenarios() -> None:
    from repro.sim.scenarios import scenario_catalog

    print("Registered driving scenarios:")
    for scenario_id, description in scenario_catalog().items():
        print(f"  {scenario_id:<6s} {description}")


def _run_table2_suite(args: argparse.Namespace) -> None:
    from repro.experiments.campaign import (
        baseline_random_campaign,
        run_campaigns,
        standard_campaigns,
    )
    from repro.experiments.metrics import summarize_campaign
    from repro.experiments.tables import headline_findings

    configs = list(standard_campaigns(n_runs=args.runs, seed=args.seed))
    configs.append(baseline_random_campaign(n_runs=args.runs, seed=args.seed))
    print(
        f"Running {len(configs)} campaigns x {args.runs} runs "
        f"(jobs={args.jobs}, seed={args.seed}) ..."
    )
    results = run_campaigns(configs, use_cache=not args.no_cache, executor=args.jobs)
    print("\n=== Table II (reproduced) ===")
    for campaign in results:
        print(summarize_campaign(campaign).format_row())
    findings = headline_findings(results[:-1], results[-1])
    print("\n=== Headline findings (paper §I) ===")
    print(f"RoboTack EB rate      : {findings['robotack_eb_rate']:.1%} (paper 75.2%)")
    print(f"RoboTack crash rate   : {findings['robotack_crash_rate']:.1%} (paper 52.6%)")
    print(f"Random baseline EB    : {findings['random_eb_rate']:.1%} (paper 2.3%)")
    print(
        f"Pedestrians vs vehicles: {findings['pedestrian_success_rate']:.1%} "
        f"vs {findings['vehicle_success_rate']:.1%} (paper 84.1% vs 31.7%)"
    )


def _run_single_campaign(args: argparse.Namespace) -> None:
    from repro.core.attack_vectors import AttackVector
    from repro.experiments.campaign import (
        AttackerKind,
        CampaignConfig,
        PredictorKind,
        run_campaign,
    )
    from repro.experiments.metrics import summarize_campaign
    from repro.sim.scenarios import list_scenario_ids

    if args.scenario not in list_scenario_ids():
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; available: {list_scenario_ids()}"
        )
    try:
        attacker = AttackerKind(args.attacker)
    except ValueError:
        raise SystemExit(
            f"unknown attacker {args.attacker!r}; "
            f"choose from {[kind.value for kind in AttackerKind]}"
        ) from None
    vector = None
    if args.vector is not None:
        try:
            vector = AttackVector.from_string(args.vector)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    try:
        predictor = PredictorKind(args.predictor)
    except ValueError:
        raise SystemExit(
            f"unknown predictor {args.predictor!r}; "
            f"choose from {[kind.value for kind in PredictorKind]}"
        ) from None
    if vector is None and attacker in (AttackerKind.ROBOTACK, AttackerKind.ROBOTACK_NO_SH):
        raise SystemExit(
            f"attacker {attacker.value!r} needs an attack vector; pass "
            f"--vector {{{', '.join(v.name.lower() for v in AttackVector)}}}"
        )

    vector_label = vector.name.title() if vector is not None else attacker.value.title()
    config = CampaignConfig(
        campaign_id=f"{args.scenario}-{vector_label}-cli",
        scenario_id=args.scenario,
        attacker=attacker,
        vector=vector,
        n_runs=args.runs,
        seed=args.seed,
        predictor=predictor,
    )
    print(f"Running {config.campaign_id}: {args.runs} runs (jobs={args.jobs}) ...")
    result = run_campaign(config, use_cache=not args.no_cache, executor=args.jobs)
    print(summarize_campaign(result).format_row())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)

    if args.runs < 1:
        raise SystemExit("--runs must be a positive number of simulation runs")
    if args.jobs < -1:
        raise SystemExit("--jobs must be -1 (all CPUs), 0/1 (serial), or a worker count")

    if args.list_scenarios:
        _print_scenarios()
        return 0

    if args.cache_dir:
        from repro.experiments.campaign import set_cache_dir

        set_cache_dir(args.cache_dir)

    if args.scenario is not None:
        _run_single_campaign(args)
    else:
        _run_table2_suite(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

"""Campaign runner: seeded batches of (possibly attacked) simulation runs.

A *campaign* fixes a driving scenario, an attack vector, and an attacker kind
(RoboTack, RoboTack without the safety hijacker, the random baseline, or no
attacker at all) and executes ``n_runs`` independent, seeded simulation runs
with randomized initial conditions — mirroring the experimental campaigns of
paper §VI-C ("a set of simulation runs executed with the same driving scenario
and attack vector").

Every run is seeded from ``SeedSequence([campaign_seed, run_index])`` and
shares no state with its siblings, so campaigns fan out over the
:mod:`repro.runtime` executors: ``run_campaign(config, executor=4)`` runs on
four worker processes and produces *element-wise identical* results to the
serial path.  Safety-hijacker predictors are trained once per
(scenario, vector) pair in the parent process and shipped to the workers, and
both predictors and campaign results live in process-safe
:class:`~repro.runtime.cache.ArtifactCache` stores (set ``REPRO_CACHE_DIR`` to
persist them across processes and sessions).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.core.attack_vectors import AttackVector
from repro.core.baselines import RandomAttacker, RoboTackWithoutSafetyHijacker
from repro.core.robotack import CameraMitmAttackerBase, RoboTack, RoboTackConfig
from repro.core.safety_hijacker import (
    KinematicSafetyPredictor,
    SafetyHijacker,
    SafetyHijackerConfig,
    SafetyPredictor,
)
from repro.core.training import (
    collect_safety_dataset,
    load_registered_predictor,
    train_and_register_predictor,
    train_neural_safety_predictor,
    training_spec_hash,
)
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.store import ExperimentStore, RunRecord, config_hash
from repro.perception.detection import DetectorDegradation
from repro.perception.fusion import DEFAULT_FUSION_POLICY, FusionConfig
from repro.perception.pipeline import PerceptionConfig
from repro.sim.actors import ActorKind
from repro.runtime import ArtifactCache, Executor, ExecutorLike, resolve_executor
from repro.sim.config import SimulationConfig
from repro.sim.scenarios import DrivingScenario, ScenarioVariation, build_scenario
from repro.sim.simulator import SimulationResult, Simulator

__all__ = [
    "AttackerKind",
    "PredictorKind",
    "CampaignConfig",
    "StoreLike",
    "run_single_experiment",
    "run_single_experiment_record",
    "run_campaign",
    "run_campaigns",
    "get_or_train_predictor",
    "training_grid_for",
    "clear_caches",
]

#: Anything the ``store=`` knobs accept: a store instance or its root path.
StoreLike = Union[ExperimentStore, str, Path, None]


def resolve_store(store: StoreLike) -> Optional[ExperimentStore]:
    """Coerce a store spec (instance, root path, or ``None``) to a store."""
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)


class AttackerKind(enum.Enum):
    """Which attacker (if any) is installed on the camera link."""

    ROBOTACK = "robotack"
    ROBOTACK_NO_SH = "robotack_no_sh"
    RANDOM = "random"
    NONE = "none"


class PredictorKind(enum.Enum):
    """Which safety-potential oracle the safety hijacker uses."""

    NEURAL = "neural"
    KINEMATIC = "kinematic"


#: Training grids (delta_inject values, k values) per scenario used to collect
#: the safety-hijacker dataset.  Pedestrian scenarios use shorter windows.
_TRAINING_GRIDS: Dict[str, Tuple[Tuple[float, ...], Tuple[int, ...]]] = {
    "DS-1": ((28.0, 24.0, 21.0, 18.0, 15.0, 12.0), (30, 42, 50, 58)),
    "DS-2": ((55.0, 48.0, 42.0, 38.0, 34.0, 30.0), (10, 16, 22, 28)),
    "DS-3": ((20.0, 15.0, 11.0, 7.0, 3.0, 0.0), (12, 25, 40, 55)),
    "DS-4": ((16.0, 12.0, 9.0, 6.0, 3.0, 0.0), (10, 16, 23, 30)),
    "DS-5": ((28.0, 24.0, 21.0, 18.0, 15.0, 12.0), (30, 42, 50, 58)),
    # DS-6's cut-in target behaves like the DS-1 lead once it occupies the
    # ego lane, but the gap is tighter, so the trigger grid sits lower.
    "DS-6": ((24.0, 21.0, 18.0, 15.0, 12.0, 9.0), (30, 42, 50, 58)),
    # DS-7's foggy pedestrian crossing: the slower EV and late detections
    # compress the usable trigger range versus DS-2.
    "DS-7": ((45.0, 40.0, 35.0, 30.0, 26.0, 22.0), (10, 16, 22, 28)),
}

#: Fallback grid for scenarios registered by downstream plugins without a
#: curated grid: a wide trigger sweep with mid-length windows.
_DEFAULT_TRAINING_GRID: Tuple[Tuple[float, ...], Tuple[int, ...]] = (
    (40.0, 32.0, 24.0, 18.0, 12.0, 6.0),
    (12, 24, 36, 48),
)

_PREDICTOR_CACHE = ArtifactCache("predictors")
_CAMPAIGN_CACHE = ArtifactCache("campaigns")


def training_grid_for(scenario_id: str) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    """The (delta_inject, k) training grid for a scenario (with a generic fallback)."""
    return _TRAINING_GRIDS.get(scenario_id, _DEFAULT_TRAINING_GRID)


def clear_caches(*, disk: bool = False) -> None:
    """Drop all cached predictors and campaign results (mainly for tests)."""
    _PREDICTOR_CACHE.clear(disk=disk)
    _CAMPAIGN_CACHE.clear(disk=disk)


def set_cache_dir(cache_dir) -> None:
    """Point both artifact caches at a disk directory (``None`` = env default)."""
    _PREDICTOR_CACHE.set_directory(cache_dir)
    _CAMPAIGN_CACHE.set_directory(cache_dir)


@dataclass(frozen=True)
class CampaignConfig:
    """Specification of one experimental campaign."""

    campaign_id: str
    scenario_id: str
    attacker: AttackerKind
    vector: Optional[AttackVector] = None
    n_runs: int = 30
    seed: int = 2020
    predictor: PredictorKind = PredictorKind.NEURAL
    #: Epochs used when training the neural predictor for this campaign.
    training_epochs: int = 200
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    #: Pin every run of the campaign to this exact initial-condition variation
    #: (``None`` = sample a fresh variation per run, the Monte-Carlo default).
    #: Sweeps pin variations to probe specific points of the perturbation space.
    variation: Optional[ScenarioVariation] = None
    #: Degrade the scenario's camera detector (fog/low-light sweeps); ``None``
    #: keeps whatever detector the scenario itself prescribes.
    detector_degradation: Optional[DetectorDegradation] = None
    #: Fusion-policy victim variant for the campaign's ADS agent; ``None``
    #: keeps whatever fusion the scenario prescribes (the late-fusion default
    #: for the paper's catalog).
    fusion: Optional[FusionConfig] = None

    def __post_init__(self) -> None:
        if self.n_runs <= 0:
            raise ValueError("n_runs must be positive")
        if self.attacker in (AttackerKind.ROBOTACK, AttackerKind.ROBOTACK_NO_SH) and self.vector is None:
            raise ValueError("RoboTack campaigns must pin an attack vector")

    @property
    def fusion_policy(self) -> str:
        """Effective fusion-policy name (defaulted configs run ``late``)."""
        return self.fusion.policy if self.fusion is not None else DEFAULT_FUSION_POLICY

    def cache_key(self) -> Tuple:
        # Every field that changes the campaign's results belongs here: with
        # the disk cache enabled, two configs differing only in training
        # epochs or simulation parameters must never shadow each other.  The
        # experiment store's content address is derived from this same key.
        key = (
            self.campaign_id,
            self.scenario_id,
            self.attacker,
            self.vector,
            self.n_runs,
            self.seed,
            self.predictor,
            self.training_epochs,
            self.simulation,
            self.variation,
            self.detector_degradation,
        )
        # Appended only when set, so every pre-fusion config keeps its exact
        # hash and existing stores resume without re-running anything.
        if self.fusion is not None:
            key = key + (self.fusion,)
        return key

    # ------------------------------------------------------------------ #
    # JSON round-trip — the experiment-store manifest format
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-safe dict that :meth:`from_json_dict` inverts losslessly."""
        return {
            "campaign_id": self.campaign_id,
            "scenario_id": self.scenario_id,
            "attacker": self.attacker.value,
            "vector": self.vector.name if self.vector is not None else None,
            "n_runs": self.n_runs,
            "seed": self.seed,
            "predictor": self.predictor.value,
            "training_epochs": self.training_epochs,
            "simulation": dataclasses.asdict(self.simulation),
            "variation": (
                dataclasses.asdict(self.variation) if self.variation is not None else None
            ),
            "detector_degradation": (
                dataclasses.asdict(self.detector_degradation)
                if self.detector_degradation is not None
                else None
            ),
            "fusion": (
                dataclasses.asdict(self.fusion) if self.fusion is not None else None
            ),
        }

    @staticmethod
    def from_json_dict(payload: Dict[str, object]) -> "CampaignConfig":
        """Reconstruct a config from :meth:`to_json_dict` output."""
        vector = payload["vector"]
        variation = payload.get("variation")
        degradation = payload.get("detector_degradation")
        # .get: manifests written before the fusion-policy refactor carry no
        # "fusion" key and must load as fusion=None (same config, same hash).
        fusion = payload.get("fusion")
        return CampaignConfig(
            campaign_id=str(payload["campaign_id"]),
            scenario_id=str(payload["scenario_id"]),
            attacker=AttackerKind(payload["attacker"]),
            vector=AttackVector[str(vector)] if vector else None,
            n_runs=int(payload["n_runs"]),
            seed=int(payload["seed"]),
            predictor=PredictorKind(payload["predictor"]),
            training_epochs=int(payload["training_epochs"]),
            simulation=SimulationConfig(**payload["simulation"]),  # type: ignore[arg-type]
            variation=ScenarioVariation(**variation) if variation else None,
            detector_degradation=(
                DetectorDegradation(**degradation) if degradation else None
            ),
            fusion=FusionConfig(**fusion) if fusion else None,  # type: ignore[arg-type]
        )


def build_ads_agent(
    scenario: DrivingScenario,
    rng: np.random.Generator,
    fusion: Optional[FusionConfig] = None,
) -> AdsAgent:
    """Construct the victim ADS agent for a scenario.

    Scenarios that model degraded sensing (e.g. DS-7's fog) carry a detector
    override, which is threaded into the agent's perception pipeline here.
    ``fusion`` selects a fusion-policy victim variant; when ``None`` the
    scenario's own ``fusion_config`` (usually ``None`` → the late default)
    applies.
    """
    fusion_config = fusion if fusion is not None else scenario.fusion_config
    perception_kwargs = {}
    if scenario.detector_config is not None:
        perception_kwargs["detector"] = scenario.detector_config
    if fusion_config is not None:
        perception_kwargs["fusion"] = fusion_config
    perception_config = PerceptionConfig(**perception_kwargs) if perception_kwargs else None
    return AdsAgent(
        road=scenario.road,
        planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
        perception_config=perception_config,
        rng=rng,
    )


def _train_predictor(
    scenario_id: str,
    vector: AttackVector,
    kind: PredictorKind,
    seed: int,
    training_epochs: int,
) -> SafetyPredictor:
    if kind is PredictorKind.KINEMATIC:
        return KinematicSafetyPredictor(vector)
    delta_grid, k_grid = training_grid_for(scenario_id)
    dataset = collect_safety_dataset(
        scenario_id=scenario_id,
        vector=vector,
        delta_inject_values=delta_grid,
        k_values=k_grid,
        seed=seed,
        repeats=2,
    )
    predictor, _ = train_neural_safety_predictor(dataset, epochs=training_epochs, seed=seed)
    return predictor


def _store_backed_predictor(
    scenario_id: str,
    vector: AttackVector,
    seed: int,
    training_epochs: int,
    store: ExperimentStore,
    executor: ExecutorLike = None,
) -> SafetyPredictor:
    """Load the registered oracle from the store, or train-and-register it.

    This is the train-once/deploy-many path: the first process (usually
    ``repro-campaign train``) pays collection + training and publishes the
    model; every later campaign process — including every restart — reloads
    the identical weights instead of retraining.
    """
    delta_grid, k_grid = training_grid_for(scenario_id)
    spec_hash = training_spec_hash(
        scenario_id, vector, delta_grid, k_grid,
        collect_seed=seed, repeats=2, epochs=training_epochs,
    )
    loaded = load_registered_predictor(store, spec_hash)
    if loaded is not None:
        return loaded
    artifact = train_and_register_predictor(
        scenario_id, vector, delta_grid, k_grid,
        seed=seed, repeats=2, epochs=training_epochs,
        executor=executor, store=store,
    )
    return artifact.predictor


def get_or_train_predictor(
    scenario_id: str,
    vector: AttackVector,
    kind: PredictorKind = PredictorKind.NEURAL,
    seed: int = 7,
    training_epochs: int = 120,
    store: StoreLike = None,
    executor: ExecutorLike = None,
) -> SafetyPredictor:
    """Return the safety-potential oracle for a scenario/vector, training it if needed.

    With a ``store=``, the store's model registry is consulted first (and a
    freshly trained oracle is published back into it); the dataset collection
    behind a training miss fans out over ``executor`` and is itself resumable.
    """
    # training_epochs is part of the key: with the disk layer enabled, a
    # predictor trained with different epochs must never shadow this one.
    cache_key = (scenario_id, vector, kind, seed, training_epochs)
    resolved_store = resolve_store(store)
    if resolved_store is not None and kind is PredictorKind.NEURAL:
        # The store root is part of the key: each store must get its own
        # publish-to-registry side effect (and its own disk-cache entry), or
        # a second store would silently never receive the trained model.
        return _PREDICTOR_CACHE.get_or_create(
            cache_key + ("store", str(resolved_store.root)),
            functools.partial(
                _store_backed_predictor, scenario_id, vector, seed, training_epochs,
                resolved_store, executor,
            ),
        )
    return _PREDICTOR_CACHE.get_or_create(
        cache_key,
        functools.partial(
            _train_predictor, scenario_id, vector, kind, seed, training_epochs
        ),
    )


def _safety_hijacker_for(
    scenario: DrivingScenario, predictor: SafetyPredictor
) -> SafetyHijacker:
    """A safety hijacker whose stealth bound Kmax follows the scenario's detector.

    Kmax is the 99th percentile of the continuous-misdetection bursts; a
    degraded detector has longer bursts, so the attacker may hide behind a
    correspondingly longer window without tripping the intrusion detector.
    """
    if scenario.detector_config is None:
        return SafetyHijacker(predictor)
    detector = scenario.detector_config
    k_max = {
        ActorKind.PEDESTRIAN: int(
            round(detector.pedestrian_noise.misdetection_burst_p99_frames)
        ),
        ActorKind.VEHICLE: int(round(detector.vehicle_noise.misdetection_burst_p99_frames)),
    }
    return SafetyHijacker(predictor, SafetyHijackerConfig(k_max_frames=k_max))


def _build_attacker(
    config: CampaignConfig,
    scenario: DrivingScenario,
    rng: np.random.Generator,
    predictor: Optional[SafetyPredictor] = None,
) -> Optional[CameraMitmAttackerBase]:
    if config.attacker is AttackerKind.NONE:
        return None
    allowed = (config.vector,) if config.vector is not None else tuple(AttackVector)
    # Scenarios with a degraded detector (e.g. DS-7's fog) recalibrate the
    # attacker's reconstruction and stealth bounds through the shared factory.
    attack_config = RoboTackConfig.for_detector(allowed, scenario.detector_config)
    if config.attacker is AttackerKind.ROBOTACK:
        if predictor is None:
            predictor = get_or_train_predictor(
                config.scenario_id,
                config.vector,
                kind=config.predictor,
                training_epochs=config.training_epochs,
            )
        hijacker = _safety_hijacker_for(scenario, predictor)
        return RoboTack(scenario.road, hijacker, attack_config, rng=rng)
    if config.attacker is AttackerKind.ROBOTACK_NO_SH:
        return RoboTackWithoutSafetyHijacker(scenario.road, attack_config, rng=rng)
    return RandomAttacker(
        scenario.road,
        attack_config,
        rng=rng,
        candidate_target_actor_ids=[actor.actor_id for actor in scenario.world.actors],
    )


def _true_delta_at_attack_end(
    result: SimulationResult, attacker: Optional[CameraMitmAttackerBase]
) -> float:
    if attacker is None or not attacker.record.launched or attacker.record.start_frame is None:
        return float("nan")
    trace = result.events.true_delta_trace
    if not trace:
        return float("nan")
    index = min(
        attacker.record.start_frame - 1 + attacker.record.planned_k_frames, len(trace) - 1
    )
    return float(trace[index])


@dataclasses.dataclass
class _RunSetup:
    """Everything a seeded run needs before its simulator starts stepping."""

    run_index: int
    run_seed: int
    variation: ScenarioVariation
    scenario: DrivingScenario
    ads: AdsAgent
    attacker: Optional[CameraMitmAttackerBase]
    sim_rng: np.random.Generator


def _build_run_setup(
    config: CampaignConfig,
    run_index: int,
    predictor: Optional[SafetyPredictor] = None,
) -> _RunSetup:
    """Derive one run's scenario, agent, attacker, and RNGs from its seed.

    The draw order on ``rng`` (ads seed, attacker seed, simulator seed — the
    attacker seed is drawn even for :attr:`AttackerKind.NONE`) is the
    determinism contract shared by the scalar and batch engines; changing it
    changes every stored trace.
    """
    run_seed = int(np.random.SeedSequence([config.seed, run_index]).generate_state(1)[0])
    rng = np.random.default_rng(run_seed)
    if config.variation is not None:
        variation = config.variation
    else:
        variation = ScenarioVariation.sample(rng)
    scenario = build_scenario(config.scenario_id, variation)
    if config.detector_degradation is not None and not config.detector_degradation.is_identity():
        scenario.detector_config = config.detector_degradation.apply(scenario.detector_config)
    ads = build_ads_agent(
        scenario,
        np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
        fusion=config.fusion,
    )
    attacker = _build_attacker(
        config,
        scenario,
        np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
        predictor=predictor,
    )
    return _RunSetup(
        run_index=run_index,
        run_seed=run_seed,
        variation=variation,
        scenario=scenario,
        ads=ads,
        attacker=attacker,
        sim_rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
    )


def run_single_experiment_record(
    config: CampaignConfig,
    run_index: int,
    predictor: Optional[SafetyPredictor] = None,
) -> RunRecord:
    """Execute one seeded run and flatten it into a durable :class:`RunRecord`.

    ``predictor`` lets the campaign runner pre-train the safety-potential
    oracle in the parent process and ship it to worker processes; when omitted
    (direct calls), the per-process predictor cache is consulted as before.
    """
    setup = _build_run_setup(config, run_index, predictor=predictor)
    simulator = Simulator(
        setup.scenario,
        setup.ads,
        config=config.simulation,
        attacker=setup.attacker,
        rng=setup.sim_rng,
    )
    return _record_from_result(config, setup, simulator.run())


def _record_from_result(
    config: CampaignConfig, setup: _RunSetup, result: SimulationResult
) -> RunRecord:
    """Flatten a finished run into the durable, store-appendable record."""
    attacker = setup.attacker
    record = attacker.record if attacker is not None else None
    min_delta = result.min_true_delta_from_attack()
    accident = result.accident_occurred(config.simulation.halt_gap_m)
    run_result = RunResult(
        run_index=setup.run_index,
        seed=setup.run_seed,
        scenario_id=config.scenario_id,
        attacker_kind=config.attacker.value,
        vector=record.vector if record is not None else None,
        target_kind=(
            record.target_kind if record is not None else setup.scenario.target_kind
        ),
        attack_launched=bool(record.launched) if record is not None else False,
        emergency_braking=result.emergency_braking_occurred,
        collision=result.collision_occurred,
        accident=accident,
        min_true_delta_m=min_delta,
        true_delta_at_attack_end_m=_true_delta_at_attack_end(result, attacker),
        predicted_delta_m=record.predicted_delta_m if record is not None else float("nan"),
        planned_k_frames=record.planned_k_frames if record is not None else 0,
        frames_perturbed=record.frames_perturbed if record is not None else 0,
        k_prime_frames=record.shift_frames_k_prime if record is not None else 0,
        delta_at_launch_m=(
            record.features_at_launch.delta_m
            if record is not None and record.features_at_launch is not None
            else float("nan")
        ),
    )
    events = tuple(
        (event.kind.value, event.step_index, event.time_s, dict(event.details))
        for event in result.events.events
    )
    return RunRecord(
        config_hash=config_hash(config),
        campaign_id=config.campaign_id,
        run_index=setup.run_index,
        seed=setup.run_seed,
        variation=setup.variation,
        result=run_result,
        steps_executed=result.steps_executed,
        duration_s=result.duration_s,
        halted_on_collision=result.halted_on_collision,
        events=events,
        true_delta_trace=np.asarray(result.events.true_delta_trace, dtype=np.float64),
        perceived_delta_trace=np.asarray(
            result.events.perceived_delta_trace, dtype=np.float64
        ),
        ego_speed_trace=np.asarray(result.events.ego_speed_trace, dtype=np.float64),
    )


def run_single_experiment(
    config: CampaignConfig,
    run_index: int,
    predictor: Optional[SafetyPredictor] = None,
) -> RunResult:
    """Execute one seeded run of a campaign and summarize it."""
    return run_single_experiment_record(config, run_index, predictor=predictor).result


#: Lanes per :class:`~repro.sim.batch.BatchSimulator` when ``engine="batch"``.
DEFAULT_BATCH_SIZE = 16


def _validate_engine(engine: str, batch_size: int) -> None:
    if engine not in ("scalar", "batch"):
        raise ValueError(f"unknown engine {engine!r}: expected 'scalar' or 'batch'")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")


def _chunked(indices: Sequence[int], size: int) -> List[List[int]]:
    return [list(indices[start:start + size]) for start in range(0, len(indices), size)]


def _run_batch_chunk(
    config: CampaignConfig,
    run_indices: Sequence[int],
    predictor: Optional[SafetyPredictor] = None,
) -> List[RunRecord]:
    """Execute a chunk of runs in lockstep on one :class:`BatchSimulator`.

    Because every run is independently seeded by :func:`_build_run_setup` and
    the batch engine is bit-identical to the scalar path, the records this
    produces are interchangeable with ``run_single_experiment_record`` output
    — same cache keys, same store layout, same statistics.
    """
    from repro.sim.batch import BatchRunSpec, BatchSimulator

    setups = [
        _build_run_setup(config, run_index, predictor=predictor)
        for run_index in run_indices
    ]
    specs = [
        BatchRunSpec(
            scenario=setup.scenario,
            ads=setup.ads,
            attacker=setup.attacker,
            rng=setup.sim_rng,
        )
        for setup in setups
    ]
    results = BatchSimulator(specs, config=config.simulation).run()
    return [
        _record_from_result(config, setup, result)
        for setup, result in zip(setups, results)
    ]


def _prepare_predictor(
    config: CampaignConfig,
    store: Optional[ExperimentStore] = None,
    executor: ExecutorLike = None,
) -> Optional[SafetyPredictor]:
    """Train (or fetch) the predictor a RoboTack campaign needs, in-process.

    Doing this *before* fanning runs out guarantees (a) workers never train
    redundant copies and (b) serial and parallel campaigns use the exact same
    oracle weights — the invariant behind bit-identical campaign statistics.
    With a ``store``, a pretrained oracle is loaded from its model registry
    instead of being retrained per process.
    """
    if config.attacker is not AttackerKind.ROBOTACK:
        return None
    return get_or_train_predictor(
        config.scenario_id,
        config.vector,
        kind=config.predictor,
        training_epochs=config.training_epochs,
        store=store,
        executor=executor,
    )


def _run_campaign_checkpointed(
    config: CampaignConfig,
    store: ExperimentStore,
    executor: ExecutorLike,
    engine: str = "scalar",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> CampaignResult:
    """Stream a campaign's runs into the store, skipping already-stored ones.

    Each run record is appended to the store *as it completes* (order-tagged
    streaming over :meth:`Executor.imap`), so a killed campaign loses at most
    the runs in flight.  On restart, the stored (config-hash, run-index)
    pairs are skipped, and because every run is independently seeded from
    ``(campaign_seed, run_index)``, the merged statistics are bit-identical
    to an uninterrupted serial campaign.  With ``engine="batch"`` the pending
    indices are chunked onto lockstep :class:`BatchSimulator` lanes instead
    (checkpoint granularity becomes one chunk); resuming a campaign with a
    different engine or chunk size is safe because records only depend on the
    per-run seed.
    """
    store.write_manifest(config)
    done = store.run_indices(config_hash(config))
    pending = [index for index in range(config.n_runs) if index not in done]
    if pending:
        resolved = resolve_executor(executor)
        try:
            # The oracle comes from the store's model registry when one is
            # published (train-once/deploy-many); a registry miss trains it
            # here, fanning the dataset collection out over the same pool.
            predictor = _prepare_predictor(config, store=store, executor=resolved)
            if engine == "batch":
                worker = functools.partial(_run_batch_chunk, config, predictor=predictor)
                for _, records in resolved.imap(worker, _chunked(pending, batch_size)):
                    for record in records:
                        store.append(record)
            else:
                worker = functools.partial(
                    run_single_experiment_record, config, predictor=predictor
                )
                for _, record in resolved.imap(worker, pending):
                    store.append(record)
        finally:
            if resolved is not executor:
                resolved.close()
    campaign = store.campaign_result(config, allow_partial=True)
    if campaign.n_runs != config.n_runs:  # pragma: no cover - store invariant
        raise RuntimeError(
            f"campaign {config.campaign_id!r} has {campaign.n_runs} stored runs, "
            f"expected {config.n_runs}"
        )
    return campaign


def run_campaign(
    config: CampaignConfig,
    use_cache: bool = True,
    executor: ExecutorLike = None,
    store: StoreLike = None,
    engine: str = "scalar",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> CampaignResult:
    """Execute all runs of a campaign, optionally fanning out over processes.

    ``executor`` accepts anything :func:`repro.runtime.resolve_executor`
    understands: ``None`` (serial), a worker count, or an
    :class:`~repro.runtime.executor.Executor` instance to share a worker pool
    across campaigns.  Results are cached per process (and on disk when a
    cache directory is configured).

    ``store`` (an :class:`~repro.experiments.store.ExperimentStore` or its
    root path) switches the campaign to the durable, resumable path: every
    run is checkpointed to the store as it completes, already-stored runs are
    skipped, and the opaque pickle cache is bypassed — the store *is* the
    durable record.

    ``engine`` selects the simulation engine: ``"scalar"`` (the reference
    :class:`~repro.sim.simulator.Simulator`, one run per work item) or
    ``"batch"`` (the vectorized :class:`~repro.sim.batch.BatchSimulator`,
    ``batch_size`` lockstep runs per work item).  Both produce bit-identical
    results, so the engine deliberately does not enter the cache key or the
    store's config hash — a batch campaign resumes a scalar one and
    vice versa.
    """
    _validate_engine(engine, batch_size)
    resolved_store = resolve_store(store)
    if resolved_store is not None:
        return _run_campaign_checkpointed(
            config, resolved_store, executor, engine=engine, batch_size=batch_size
        )
    key = config.cache_key()
    if use_cache:
        cached = _CAMPAIGN_CACHE.get(key)
        if cached is not None:
            return cached
    predictor = _prepare_predictor(config)
    resolved = resolve_executor(executor)
    try:
        if engine == "batch":
            record_chunks = resolved.map(
                functools.partial(_run_batch_chunk, config, predictor=predictor),
                _chunked(range(config.n_runs), batch_size),
            )
            runs = [record.result for chunk in record_chunks for record in chunk]
        else:
            runs = list(
                resolved.map(
                    functools.partial(run_single_experiment, config, predictor=predictor),
                    range(config.n_runs),
                )
            )
    finally:
        if resolved is not executor:
            # We created this executor; release its workers even when a run fails.
            resolved.close()
    campaign = CampaignResult(
        campaign_id=config.campaign_id,
        scenario_id=config.scenario_id,
        attacker_kind=config.attacker.value,
        vector=config.vector,
        runs=runs,
    )
    if use_cache:
        _CAMPAIGN_CACHE.put(key, campaign)
    return campaign


def run_campaigns(
    configs: Sequence[CampaignConfig],
    use_cache: bool = True,
    executor: ExecutorLike = None,
    store: StoreLike = None,
    engine: str = "scalar",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> List[CampaignResult]:
    """Execute several campaigns, sharing one executor (and its worker pool)."""
    resolved_store = resolve_store(store)
    resolved = resolve_executor(executor)
    try:
        return [
            run_campaign(
                config,
                use_cache=use_cache,
                executor=resolved,
                store=resolved_store,
                engine=engine,
                batch_size=batch_size,
            )
            for config in configs
        ]
    finally:
        if resolved is not executor:
            resolved.close()


def standard_campaigns(
    n_runs: int = 30,
    seed: int = 2020,
    attacker: AttackerKind = AttackerKind.ROBOTACK,
    predictor: PredictorKind = PredictorKind.NEURAL,
) -> Sequence[CampaignConfig]:
    """The six RoboTack campaigns of paper Table II (without the random baseline)."""
    pairs = [
        ("DS-1", AttackVector.DISAPPEAR),
        ("DS-2", AttackVector.DISAPPEAR),
        ("DS-1", AttackVector.MOVE_OUT),
        ("DS-2", AttackVector.MOVE_OUT),
        ("DS-3", AttackVector.MOVE_IN),
        ("DS-4", AttackVector.MOVE_IN),
    ]
    suffix = "R" if attacker is AttackerKind.ROBOTACK else "R-wo-SH"
    return [
        CampaignConfig(
            campaign_id=f"{scenario}-{vector.name.title()}-{suffix}",
            scenario_id=scenario,
            attacker=attacker,
            vector=vector,
            n_runs=n_runs,
            seed=seed,
            predictor=predictor,
        )
        for scenario, vector in pairs
    ]


def baseline_random_campaign(n_runs: int = 30, seed: int = 2020) -> CampaignConfig:
    """The DS-5 Baseline-Random campaign of paper Table II."""
    return CampaignConfig(
        campaign_id="DS-5-Baseline-Random",
        scenario_id="DS-5",
        attacker=AttackerKind.RANDOM,
        vector=None,
        n_runs=n_runs,
        seed=seed,
    )

"""The Hungarian (Kuhn-Munkres) assignment algorithm.

The multi-object tracker formulates the association of detections to existing
trackers as a bipartite matching problem solved with the Hungarian algorithm
("M" in paper Fig. 1).  This is a from-scratch O(n^3) implementation using the
shortest-augmenting-path formulation with potentials; it is also the matching
cost that the trajectory hijacker maximizes in paper Eq. (4).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["hungarian_assignment", "assignment_total_cost"]


def hungarian_assignment(cost_matrix: np.ndarray) -> List[Tuple[int, int]]:
    """Solve the minimum-cost assignment problem.

    ``cost_matrix`` has shape ``(n_rows, n_cols)``; the function returns a list
    of ``(row, col)`` pairs forming a minimum-cost matching that covers
    ``min(n_rows, n_cols)`` rows/columns.  The matrix does not need to be
    square.
    """
    cost = np.asarray(cost_matrix, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost matrix must be two-dimensional")
    n_rows, n_cols = cost.shape
    if n_rows == 0 or n_cols == 0:
        return []
    transposed = False
    if n_rows > n_cols:
        cost = cost.T
        n_rows, n_cols = cost.shape
        transposed = True

    # Potentials-based shortest augmenting path algorithm (1-indexed).
    INF = float("inf")
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    match_for_col = np.zeros(n_cols + 1, dtype=int)
    way = np.zeros(n_cols + 1, dtype=int)

    for row in range(1, n_rows + 1):
        match_for_col[0] = row
        j0 = 0
        min_values = np.full(n_cols + 1, INF)
        used = np.zeros(n_cols + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_for_col[j0]
            delta = INF
            j1 = -1
            for j in range(1, n_cols + 1):
                if used[j]:
                    continue
                current = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if current < min_values[j]:
                    min_values[j] = current
                    way[j] = j0
                if min_values[j] < delta:
                    delta = min_values[j]
                    j1 = j
            for j in range(n_cols + 1):
                if used[j]:
                    u[match_for_col[j]] += delta
                    v[j] -= delta
                else:
                    min_values[j] -= delta
            j0 = j1
            if match_for_col[j0] == 0:
                break
        while True:
            j1 = way[j0]
            match_for_col[j0] = match_for_col[j1]
            j0 = j1
            if j0 == 0:
                break

    pairs: List[Tuple[int, int]] = []
    for col in range(1, n_cols + 1):
        row = match_for_col[col]
        if row > 0:
            pairs.append((row - 1, col - 1))
    if transposed:
        pairs = [(col, row) for row, col in pairs]
    pairs.sort()
    return pairs


def assignment_total_cost(cost_matrix: np.ndarray, pairs: List[Tuple[int, int]]) -> float:
    """Total cost of an assignment returned by :func:`hungarian_assignment`."""
    cost = np.asarray(cost_matrix, dtype=float)
    return float(sum(cost[row, col] for row, col in pairs))

"""Adaptive samplers: propose/observe strategies over a :class:`ParameterSpace`.

The blind sweep samplers (:mod:`repro.sim.sweeps`) draw every point up front;
an *adaptive* sampler closes the loop — it proposes a batch, watches the
objective scores that come back from the simulator, and steers the next batch
toward the attack-success boundary.  The protocol is deliberately tiny:

* :meth:`AdaptiveSampler.propose` returns ``n`` assignments (axis path ->
  value, the same shape the sweep engine expands into campaigns);
* :meth:`AdaptiveSampler.observe` feeds back one score per proposed
  assignment (higher = closer to falsification);
* :meth:`AdaptiveSampler.state_dict` / :meth:`AdaptiveSampler.load_state_dict`
  round-trip the complete sampler state — including the RNG stream and the
  units of a proposed-but-unobserved batch — through JSON, which is what
  makes a killed search resume *bit-identically* from its checkpoint.

Built-ins (the :data:`SEARCH_SAMPLERS` registry behind ``--sampler``):

* ``random`` — the non-adaptive control: i.i.d. uniform draws whose first
  batch is bit-identical to ``ParameterSpace.random`` at the same seed (the
  golden bridge to plain sweeps);
* ``ce`` — cross-entropy: per-axis elite-quantile refitting (Gaussian over
  the unit interval for :class:`~repro.sim.sweeps.Uniform` axes, categorical
  for :class:`~repro.sim.sweeps.Choice` axes), the ``verifaiSamplerType =
  'ce'`` idiom of the VerifAI scenic files;
* ``ucb`` / ``thompson`` — bandit budget allocators over discrete arms
  (the cartesian product of the Choice axes, or strata of the first axis when
  the space is fully continuous), steering runs toward the arms where attack
  success is most uncertain (MAB-Malware's action-selection shape).

All samplers draw through the space's public unit-cube bridge
(:meth:`~repro.sim.sweeps.ParameterSpace.sample_from`) — none reaches into
sweep internals.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.runtime.registry import Registry
from repro.sim.sweeps import Assignment, Choice, ParameterSpace, Uniform

__all__ = [
    "AdaptiveSampler",
    "RandomSearchSampler",
    "CrossEntropySampler",
    "BanditSampler",
    "SEARCH_SAMPLERS",
    "build_search_sampler",
    "list_search_samplers",
]


@runtime_checkable
class AdaptiveSampler(Protocol):
    """The closed-loop sampling protocol (see module docstring)."""

    #: Registry name of the sampler (recorded in search manifests).
    name: str

    def propose(self, n: int) -> List[Assignment]:
        """Draw the next batch of ``n`` assignments to evaluate."""
        ...

    def observe(self, assignments: Sequence[Assignment], scores: Sequence[float]) -> None:
        """Feed back the objective scores of the *latest* proposed batch.

        ``assignments`` must be the batch :meth:`propose` returned (same
        order); ``scores`` align positionally, higher = closer to violation.
        """
        ...

    def state_dict(self) -> Dict[str, object]:
        """The complete, JSON-serializable sampler state."""
        ...

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output bit-identically."""
        ...


def _rng_state(rng: np.random.Generator) -> Dict[str, object]:
    return rng.bit_generator.state


def _restore_rng(state: Dict[str, object]) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


def _check_batch(
    pending: Optional[List[List[float]]],
    assignments: Sequence[Assignment],
    scores: Sequence[float],
) -> None:
    if pending is None:
        raise RuntimeError("observe() called before propose()")
    if len(assignments) != len(pending) or len(scores) != len(pending):
        raise ValueError(
            f"observe() batch mismatch: proposed {len(pending)} points, "
            f"got {len(assignments)} assignments / {len(scores)} scores"
        )


class RandomSearchSampler:
    """The non-adaptive control: i.i.d. uniform draws from the space.

    The first ``propose(n)`` after construction is bit-identical to
    ``space.random(n, seed)`` — the bridge that lets a golden test pin
    ``repro-campaign search --sampler random`` to plain ``sweep`` output.
    Later batches simply continue the same RNG stream.
    """

    name = "random"

    def __init__(self, space: ParameterSpace, seed: int = 0):
        self.space = space
        self._rng = np.random.default_rng(seed)
        self._pending: Optional[List[List[float]]] = None

    def propose(self, n: int) -> List[Assignment]:
        units = self._rng.uniform(size=(n, len(self.space)))
        self._pending = units.tolist()
        return self.space.sample_from(units)

    def observe(self, assignments: Sequence[Assignment], scores: Sequence[float]) -> None:
        _check_batch(self._pending, assignments, scores)
        self._pending = None

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rng": _rng_state(self._rng),
            "pending": self._pending,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._rng = _restore_rng(state["rng"])  # type: ignore[arg-type]
        self._pending = state["pending"]  # type: ignore[assignment]


class CrossEntropySampler:
    """Cross-entropy search: refit elite-quantile distributions per axis.

    The sampler maintains an independent proposal distribution per axis in
    unit-cube space: a (mean, sigma) Gaussian for :class:`Uniform` axes
    (draws clipped to ``[0, 1]``) and a categorical over values for
    :class:`Choice` axes.  After each batch, the elite fraction (top
    ``elite_frac`` by score) refits the distributions with exponential
    smoothing — the textbook CE loop, and the ``verifaiSamplerType = 'ce'``
    idiom of the VerifAI scenic files.

    ``min_sigma`` floors the Gaussian widths so the search keeps exploring
    instead of collapsing onto a point estimate; ``smoothing`` blends the
    refit toward the previous parameters (1.0 = replace outright).
    """

    name = "ce"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        elite_frac: float = 0.25,
        smoothing: float = 0.7,
        min_sigma: float = 0.03,
        init_sigma: float = 0.35,
    ):
        if not 0.0 < elite_frac <= 1.0:
            raise ValueError("elite_frac must be in (0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.space = space
        self.elite_frac = float(elite_frac)
        self.smoothing = float(smoothing)
        self.min_sigma = float(min_sigma)
        self._rng = np.random.default_rng(seed)
        self._paths = space.paths()
        self._means: Dict[str, float] = {}
        self._sigmas: Dict[str, float] = {}
        self._probs: Dict[str, List[float]] = {}
        for path in self._paths:
            spec = space.spec(path)
            if isinstance(spec, Uniform):
                self._means[path] = 0.5
                self._sigmas[path] = float(init_sigma)
            else:
                k = len(spec.values)
                self._probs[path] = [1.0 / k] * k
        self._pending: Optional[List[List[float]]] = None
        self.iterations_observed = 0

    # ------------------------------------------------------------------ #

    def propose(self, n: int) -> List[Assignment]:
        columns: List[np.ndarray] = []
        for path in self._paths:
            spec = self.space.spec(path)
            if isinstance(spec, Uniform):
                draws = self._rng.normal(self._means[path], self._sigmas[path], size=n)
                columns.append(np.clip(draws, 0.0, 1.0))
            else:
                k = len(spec.values)
                categories = self._rng.choice(k, size=n, p=np.asarray(self._probs[path]))
                # Category j maps back through the unit interval's j-th cell
                # midpoint, so Choice.value_at recovers exactly values[j].
                columns.append((categories + 0.5) / k)
        units = np.column_stack(columns) if columns else np.empty((n, 0))
        self._pending = units.tolist()
        return self.space.sample_from(units)

    def observe(self, assignments: Sequence[Assignment], scores: Sequence[float]) -> None:
        _check_batch(self._pending, assignments, scores)
        units = np.asarray(self._pending, dtype=np.float64)
        values = np.asarray(scores, dtype=np.float64)
        n_elite = max(1, int(round(self.elite_frac * len(values))))
        # Stable selection: ties broken by proposal order, so the elite set
        # (and thus the refit state) is identical across resumes.
        elite_rows = np.argsort(-values, kind="stable")[:n_elite]
        elites = units[elite_rows]
        alpha = self.smoothing
        for column, path in enumerate(self._paths):
            spec = self.space.spec(path)
            if isinstance(spec, Uniform):
                mean = float(np.mean(elites[:, column]))
                sigma = float(np.std(elites[:, column]))
                self._means[path] = alpha * mean + (1 - alpha) * self._means[path]
                self._sigmas[path] = max(
                    self.min_sigma, alpha * sigma + (1 - alpha) * self._sigmas[path]
                )
            else:
                k = len(spec.values)
                categories = np.minimum((elites[:, column] * k).astype(int), k - 1)
                counts = np.bincount(categories, minlength=k).astype(np.float64)
                freshly = counts / counts.sum()
                old = np.asarray(self._probs[path])
                blended = alpha * freshly + (1 - alpha) * old
                self._probs[path] = (blended / blended.sum()).tolist()
        self._pending = None
        self.iterations_observed += 1

    # ------------------------------------------------------------------ #

    def distribution(self, path: str) -> Dict[str, object]:
        """The current proposal distribution of one axis (for reports)."""
        spec = self.space.spec(path)
        if isinstance(spec, Uniform):
            return {"mean": self._means[path], "sigma": self._sigmas[path]}
        return {"probs": list(self._probs[path])}

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rng": _rng_state(self._rng),
            "means": dict(self._means),
            "sigmas": dict(self._sigmas),
            "probs": {path: list(probs) for path, probs in self._probs.items()},
            "pending": self._pending,
            "iterations_observed": self.iterations_observed,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._rng = _restore_rng(state["rng"])  # type: ignore[arg-type]
        self._means = {path: float(v) for path, v in state["means"].items()}  # type: ignore[union-attr]
        self._sigmas = {path: float(v) for path, v in state["sigmas"].items()}  # type: ignore[union-attr]
        self._probs = {
            path: [float(p) for p in probs]
            for path, probs in state["probs"].items()  # type: ignore[union-attr]
        }
        self._pending = state["pending"]  # type: ignore[assignment]
        self.iterations_observed = int(state["iterations_observed"])


class BanditSampler:
    """UCB / Thompson budget allocation over discrete arms of the space.

    Arms are the cartesian product of the :class:`Choice` axes (a scenario
    list, fusion policies, ...); within an arm, the continuous axes draw
    uniformly.  When the space has no Choice axis, the *first* axis is
    discretized into ``bins`` equal strata so a fully continuous space still
    yields a meaningful arm structure.

    ``mode="ucb"`` allocates each proposal to the arm maximizing the UCB1
    index ``mean + c * sqrt(2 ln N / n)`` (unplayed arms first);
    ``mode="thompson"`` samples a Beta posterior per arm — scores in
    ``[0, 1]`` update the posterior fractionally (``a += score``,
    ``b += 1 - score``), so rate-valued objectives need no binarization.
    Both concentrate the run budget where attack success is still uncertain.
    """

    name = "bandit"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        mode: str = "ucb",
        exploration: float = 1.0,
        bins: int = 8,
    ):
        if mode not in ("ucb", "thompson"):
            raise ValueError(f"unknown bandit mode {mode!r}: expected 'ucb' or 'thompson'")
        if bins < 2:
            raise ValueError("bins must be at least 2")
        self.space = space
        self.mode = mode
        self.name = mode
        self.exploration = float(exploration)
        self.bins = int(bins)
        self._rng = np.random.default_rng(seed)
        self._paths = space.paths()
        self._choice_paths = [
            path for path in self._paths if isinstance(space.spec(path), Choice)
        ]
        if self._choice_paths:
            self._binned_path: Optional[str] = None
            sizes = [len(space.spec(path).values) for path in self._choice_paths]
            self._arms: List[Tuple[int, ...]] = [
                combo for combo in itertools.product(*(range(size) for size in sizes))
            ]
        else:
            self._binned_path = self._paths[0]
            self._arms = [(index,) for index in range(self.bins)]
        n_arms = len(self._arms)
        self._counts = [0] * n_arms
        self._score_sums = [0.0] * n_arms
        self._alpha = [1.0] * n_arms
        self._beta = [1.0] * n_arms
        self._pending: Optional[List[List[float]]] = None
        self._pending_arms: Optional[List[int]] = None

    # ------------------------------------------------------------------ #

    @property
    def n_arms(self) -> int:
        return len(self._arms)

    def arm_label(self, arm_index: int) -> Dict[str, object]:
        """Human-readable description of an arm (for reports)."""
        combo = self._arms[arm_index]
        if self._binned_path is not None:
            low = combo[0] / self.bins
            return {self._binned_path: f"[{low:.3f}, {low + 1.0 / self.bins:.3f})"}
        return {
            path: self.space.spec(path).values[value_index]
            for path, value_index in zip(self._choice_paths, combo)
        }

    def _select_arms(self, n: int) -> List[int]:
        counts = np.asarray(self._counts, dtype=np.float64)
        sums = np.asarray(self._score_sums, dtype=np.float64)
        picked: List[int] = []
        if self.mode == "ucb":
            for _ in range(n):
                total = counts.sum()
                with np.errstate(divide="ignore", invalid="ignore"):
                    means = np.where(counts > 0, sums / counts, 0.0)
                    bonus = self.exploration * np.sqrt(
                        2.0 * np.log(max(total, 1.0)) / counts
                    )
                index = np.where(
                    counts == 0, np.inf, means + np.where(counts > 0, bonus, 0.0)
                )
                arm = int(np.argmax(index))
                picked.append(arm)
                # Provisional update within the batch: count the pull and
                # assume the arm's current mean repeats, so the shrinking
                # bonus spreads a batch across near-tied arms instead of
                # dumping every proposal on one argmax.
                counts[arm] += 1
                if counts[arm] > 1:
                    sums[arm] += sums[arm] / (counts[arm] - 1)
        else:
            for _ in range(n):
                draws = self._rng.beta(np.asarray(self._alpha), np.asarray(self._beta))
                picked.append(int(np.argmax(draws)))
        return picked

    def propose(self, n: int) -> List[Assignment]:
        arms = self._select_arms(n)
        units = np.empty((n, len(self._paths)), dtype=np.float64)
        for row, arm in enumerate(arms):
            combo = self._arms[arm]
            for column, path in enumerate(self._paths):
                spec = self.space.spec(path)
                if self._binned_path == path:
                    stratum = combo[0]
                    units[row, column] = (stratum + self._rng.uniform()) / self.bins
                elif isinstance(spec, Choice):
                    value_index = combo[self._choice_paths.index(path)]
                    units[row, column] = (value_index + 0.5) / len(spec.values)
                else:
                    units[row, column] = self._rng.uniform()
        self._pending = units.tolist()
        self._pending_arms = arms
        return self.space.sample_from(units)

    def observe(self, assignments: Sequence[Assignment], scores: Sequence[float]) -> None:
        _check_batch(self._pending, assignments, scores)
        assert self._pending_arms is not None
        for arm, score in zip(self._pending_arms, scores):
            value = float(min(max(score, 0.0), 1.0))
            self._counts[arm] += 1
            self._score_sums[arm] += value
            self._alpha[arm] += value
            self._beta[arm] += 1.0 - value
        self._pending = None
        self._pending_arms = None

    # ------------------------------------------------------------------ #

    def arm_statistics(self) -> List[Dict[str, object]]:
        """Per-arm pull counts and mean scores (for reports and tests)."""
        return [
            {
                "arm": self.arm_label(index),
                "pulls": self._counts[index],
                "mean_score": (
                    self._score_sums[index] / self._counts[index]
                    if self._counts[index]
                    else float("nan")
                ),
            }
            for index in range(self.n_arms)
        ]

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mode": self.mode,
            "rng": _rng_state(self._rng),
            "counts": list(self._counts),
            "score_sums": list(self._score_sums),
            "alpha": list(self._alpha),
            "beta": list(self._beta),
            "pending": self._pending,
            "pending_arms": self._pending_arms,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if state.get("mode", self.mode) != self.mode:
            raise ValueError(
                f"checkpoint was written by a {state['mode']!r} bandit, "
                f"this sampler runs {self.mode!r}"
            )
        self._rng = _restore_rng(state["rng"])  # type: ignore[arg-type]
        self._counts = [int(v) for v in state["counts"]]  # type: ignore[union-attr]
        self._score_sums = [float(v) for v in state["score_sums"]]  # type: ignore[union-attr]
        self._alpha = [float(v) for v in state["alpha"]]  # type: ignore[union-attr]
        self._beta = [float(v) for v in state["beta"]]  # type: ignore[union-attr]
        self._pending = state["pending"]  # type: ignore[assignment]
        self._pending_arms = (
            [int(v) for v in state["pending_arms"]]  # type: ignore[union-attr]
            if state["pending_arms"] is not None
            else None
        )


#: Sampler name -> factory(space, seed, **options); the ``--sampler`` registry.
SEARCH_SAMPLERS: Registry = Registry("search sampler")
SEARCH_SAMPLERS.register(
    "random", RandomSearchSampler,
    description="non-adaptive uniform draws (the sweep-equivalent control)",
)
SEARCH_SAMPLERS.register(
    "ce", CrossEntropySampler,
    description="cross-entropy elite-quantile refitting per axis",
)
SEARCH_SAMPLERS.register(
    "ucb",
    lambda space, seed=0, **options: BanditSampler(space, seed, mode="ucb", **options),
    description="UCB1 bandit budget allocation over discrete arms",
)
SEARCH_SAMPLERS.register(
    "thompson",
    lambda space, seed=0, **options: BanditSampler(space, seed, mode="thompson", **options),
    description="Thompson-sampling bandit allocation over discrete arms",
)


def build_search_sampler(
    name: str, space: ParameterSpace, seed: int = 0, **options
) -> AdaptiveSampler:
    """Instantiate a registered sampler over a space (the ``--sampler`` path)."""
    factory = SEARCH_SAMPLERS.get(name)
    return factory(space, seed, **options)


def list_search_samplers() -> List[str]:
    """The registered sampler names (CLI help and validation)."""
    return SEARCH_SAMPLERS.keys()

"""Tests for the scenario registry and the DS-6 / DS-7 catalog extensions."""

import numpy as np
import pytest

from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaign
from repro.sim.actors import ActorKind
from repro.sim.scenarios import (
    ScenarioVariation,
    build_scenario,
    list_scenario_ids,
    register_scenario,
    scenario_catalog,
)
from repro.sim.simulator import Simulator


class TestScenarioRegistryExtension:
    def test_catalog_reports_at_least_seven_scenarios(self):
        assert len(list_scenario_ids()) >= 7

    def test_catalog_descriptions_populated(self):
        catalog = scenario_catalog()
        for scenario_id in ("DS-6", "DS-7"):
            assert scenario_id in catalog
            assert catalog[scenario_id]

    def test_register_scenario_decorator_round_trip(self):
        from repro.sim import scenarios as scenarios_module

        @register_scenario("TEST-DS", description="temporary test scenario")
        def _build_test(variation: ScenarioVariation):
            scenario = build_scenario("DS-1", variation)
            scenario.scenario_id = "TEST-DS"
            return scenario

        try:
            assert "TEST-DS" in list_scenario_ids()
            built = build_scenario("TEST-DS")
            assert built.scenario_id == "TEST-DS"
        finally:
            scenarios_module._SCENARIOS.unregister("TEST-DS")
        assert "TEST-DS" not in list_scenario_ids()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError):

            @register_scenario("DS-1")
            def _clash(variation: ScenarioVariation):
                raise AssertionError("never built")


class TestDs6PlatoonCutIn:
    def test_structure(self):
        scenario = build_scenario("DS-6", ScenarioVariation.nominal())
        names = {actor.name for actor in scenario.world.actors}
        assert {"platoon-tail", "platoon-lead", "cut-in-vehicle"} <= names
        assert scenario.target_kind is ActorKind.VEHICLE
        cutter = next(a for a in scenario.world.actors if a.name == "cut-in-vehicle")
        assert scenario.target_actor_id == cutter.actor_id

    def test_cutter_starts_outside_and_ends_in_ego_lane(self):
        scenario = build_scenario("DS-6", ScenarioVariation.nominal())
        cutter = next(a for a in scenario.world.actors if a.name == "cut-in-vehicle")
        assert not scenario.road.in_ego_lane(cutter.route.position.y)
        assert scenario.road.in_ego_lane(cutter.route.waypoints[-1].position.y)

    def test_golden_run_executes(self, ads_factory):
        scenario = build_scenario("DS-6", ScenarioVariation.nominal())
        simulator = Simulator(
            scenario, ads_factory(scenario), rng=np.random.default_rng(3)
        )
        result = simulator.run()
        assert result.steps_executed > 0


class TestDs7FogCrossing:
    def test_detector_is_degraded(self):
        scenario = build_scenario("DS-7", ScenarioVariation.nominal())
        assert scenario.detector_config is not None
        from repro.perception.detection import DetectorNoiseModel

        clear = DetectorNoiseModel.pedestrian_default()
        foggy = scenario.detector_config.pedestrian_noise
        assert foggy.misdetection_start_probability > clear.misdetection_start_probability
        assert foggy.center_noise_sigma_x > clear.center_noise_sigma_x
        assert scenario.detector_config.min_bbox_height_px > 8.0

    def test_ev_slows_down_in_fog(self):
        fog = build_scenario("DS-7", ScenarioVariation.nominal())
        clear = build_scenario("DS-2", ScenarioVariation.nominal())
        assert fog.cruise_speed_mps < clear.cruise_speed_mps

    def test_campaign_threads_detector_config_into_the_ads(self):
        from repro.experiments.campaign import build_ads_agent

        scenario = build_scenario("DS-7", ScenarioVariation.nominal())
        ads = build_ads_agent(scenario, np.random.default_rng(1))
        assert (
            ads.perception.config.detector.min_bbox_height_px
            == scenario.detector_config.min_bbox_height_px
        )


class TestAllScenariosRunEndToEnd:
    @pytest.mark.parametrize("scenario_id", list_scenario_ids())
    def test_run_campaign_smoke(self, scenario_id):
        config = CampaignConfig(
            campaign_id=f"smoke-{scenario_id}",
            scenario_id=scenario_id,
            attacker=AttackerKind.NONE,
            n_runs=1,
            seed=31,
        )
        campaign = run_campaign(config, use_cache=False)
        assert campaign.n_runs == 1
        assert campaign.runs[0].scenario_id == scenario_id

"""The autonomous driving system (ADS) under attack.

This package is the Apollo-like software stack of paper Fig. 1: the perception
output (``repro.perception``) feeds a world model, obstacle prediction, a
longitudinal planner with comfortable and emergency braking, and a PID-style
actuation controller.  It also implements the safety model of paper §II-C
(stopping distance, safety envelope, and safety potential δ).
"""

from repro.ads.agent import AdsAgent, AdsDecision
from repro.ads.pid import PIDController
from repro.ads.planning import LongitudinalPlanner, PlannerConfig, PlanningDecision
from repro.ads.prediction import ObstaclePredictor, PredictionConfig
from repro.ads.safety import SafetyModel, ground_truth_delta
from repro.ads.world_model import WorldModel

__all__ = [
    "AdsAgent",
    "AdsDecision",
    "PIDController",
    "LongitudinalPlanner",
    "PlannerConfig",
    "PlanningDecision",
    "ObstaclePredictor",
    "PredictionConfig",
    "SafetyModel",
    "ground_truth_delta",
    "WorldModel",
]

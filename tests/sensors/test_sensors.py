"""Tests for the camera, LiDAR, and GPS/IMU sensor models."""

import numpy as np
import pytest

from repro.sensors.camera import CameraSensor
from repro.sensors.gps_imu import GpsImuSensor
from repro.sensors.lidar import LidarSensor
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation, build_scenario


@pytest.fixture
def ds1_snapshot():
    return build_scenario("DS-1", ScenarioVariation.nominal()).world.snapshot()


@pytest.fixture
def ds2_snapshot():
    return build_scenario("DS-2", ScenarioVariation.nominal()).world.snapshot()


class TestCameraSensor:
    def test_sees_lead_vehicle(self, ds1_snapshot):
        frame = CameraSensor().capture(ds1_snapshot)
        assert len(frame.objects) == 1
        assert frame.objects[0].kind is ActorKind.VEHICLE

    def test_distance_measured_from_front_bumper(self, ds1_snapshot):
        frame = CameraSensor().capture(ds1_snapshot)
        ego = ds1_snapshot.ego
        expected = 60.0 - ego.dimensions.length_m / 2.0
        assert frame.objects[0].distance_m == pytest.approx(expected)

    def test_range_limit(self, ds1_snapshot):
        assert len(CameraSensor(max_range_m=20.0).capture(ds1_snapshot).objects) == 0

    def test_objects_sorted_by_distance(self):
        snapshot = build_scenario("DS-5", ScenarioVariation.nominal()).world.snapshot()
        frame = CameraSensor().capture(snapshot)
        distances = [o.distance_m for o in frame.objects]
        assert distances == sorted(distances)

    def test_frame_manipulation_helpers(self, ds1_snapshot):
        frame = CameraSensor().capture(ds1_snapshot)
        target_id = frame.objects[0].actor_id
        assert frame.object_for_actor(target_id) is not None
        removed = frame.without_actor(target_id)
        assert removed.object_for_actor(target_id) is None
        shifted_obj = frame.objects[0]
        replaced = frame.with_replaced_object(shifted_obj)
        assert len(replaced.objects) == len(frame.objects)

    def test_pedestrian_visible_in_ds2(self, ds2_snapshot):
        frame = CameraSensor().capture(ds2_snapshot)
        assert any(o.kind is ActorKind.PEDESTRIAN for o in frame.objects)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            CameraSensor(max_range_m=0.0)


class TestLidarSensor:
    def test_vehicle_detected_at_60m(self, ds1_snapshot):
        scan = LidarSensor(rng=np.random.default_rng(0)).scan(ds1_snapshot)
        assert len(scan.detections) == 1
        assert scan.detections[0].kind is ActorKind.VEHICLE

    def test_pedestrian_range_shorter_than_vehicle_range(self):
        lidar = LidarSensor()
        assert lidar.effective_range(ActorKind.PEDESTRIAN) < lidar.effective_range(
            ActorKind.VEHICLE
        )

    def test_distant_pedestrian_not_detected(self, ds2_snapshot):
        # The DS-2 pedestrian starts ~85 m ahead, beyond the LiDAR pedestrian range.
        scan = LidarSensor(rng=np.random.default_rng(0)).scan(ds2_snapshot)
        assert scan.detection_for_actor(ds2_snapshot.actors[0].actor_id) is None

    def test_position_noise_is_small(self, ds1_snapshot):
        lidar = LidarSensor(position_noise_m=0.05, rng=np.random.default_rng(1))
        scan = lidar.scan(ds1_snapshot)
        expected = 60.0 - ds1_snapshot.ego.dimensions.length_m / 2.0
        assert scan.detections[0].distance_m == pytest.approx(expected, abs=0.5)

    def test_velocity_reported(self, ds1_snapshot):
        scan = LidarSensor(rng=np.random.default_rng(2)).scan(ds1_snapshot)
        assert scan.detections[0].velocity.x == pytest.approx(25.0 / 3.6, abs=0.01)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            LidarSensor(vehicle_range_m=0.0)
        with pytest.raises(ValueError):
            LidarSensor(position_noise_m=-1.0)


class TestGpsImuSensor:
    def test_speed_estimate_close_to_truth(self, ds1_snapshot):
        sensor = GpsImuSensor(rng=np.random.default_rng(3))
        estimate = sensor.measure(ds1_snapshot)
        assert estimate.speed_mps == pytest.approx(ds1_snapshot.ego.speed, abs=0.3)

    def test_acceleration_estimated_from_successive_measurements(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        sensor = GpsImuSensor(position_noise_m=0.0, speed_noise_mps=0.0, rng=np.random.default_rng(4))
        first = sensor.measure(scenario.world.snapshot())
        assert first.acceleration_mps2 == 0.0
        scenario.world.step(1.0 / 15.0, ego_acceleration_mps2=1.5)
        second = sensor.measure(scenario.world.snapshot())
        assert second.acceleration_mps2 == pytest.approx(1.5, abs=0.2)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            GpsImuSensor(position_noise_m=-0.1)

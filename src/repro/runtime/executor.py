"""Executors: serial and process-parallel fan-out of independent work items.

The experiment campaigns of the paper are embarrassingly parallel: each run
is seeded independently via ``np.random.SeedSequence([root_seed, run_index])``
and shares no mutable state with its siblings.  The :class:`Executor`
abstraction lets every campaign entry point fan those runs out over worker
processes while guaranteeing that :class:`SerialExecutor` and
:class:`ParallelExecutor` produce *element-wise identical* results — the
ordering and seeding of work items never depend on the execution backend.

Worker functions must be picklable (module-level callables or
``functools.partial`` of them) because :class:`ParallelExecutor` is backed by
:class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "FaultInjectingExecutor",
    "InjectedFault",
    "ExecutorLike",
    "resolve_executor",
    "available_cpus",
]

T = TypeVar("T")
R = TypeVar("R")

#: Anything :func:`resolve_executor` accepts: an executor, a worker count
#: (``-1`` = all CPUs, ``0``/``1`` = serial), or ``None`` (serial).
ExecutorLike = Union["Executor", int, None]


def available_cpus() -> int:
    """The number of CPUs usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class Executor(abc.ABC):
    """Maps a function over work items, preserving input order."""

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item and return the results in input order."""

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[Tuple[int, R]]:
        """Apply ``fn`` to every item, yielding ``(input_index, result)`` pairs.

        Results stream back *as they complete* — the order of the yielded
        pairs is backend-dependent, but every pair is tagged with the index of
        its input item, so consumers that checkpoint or reassemble by index
        (the resumable campaign runner) are backend-independent.  The default
        implementation falls back to :meth:`map` (no streaming); Serial and
        Parallel executors override it with genuinely incremental versions.
        """
        yield from enumerate(self.map(fn, items))

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every work item in-process, one after another."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[Tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, fn(item)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fans work items out over a pool of worker processes.

    The pool is created lazily on the first :meth:`map` call and reused until
    :meth:`close`, so one executor can serve many campaigns without paying the
    process start-up cost each time.  Results come back in input order, and
    per-item seeding is the caller's responsibility (the campaign runner seeds
    each run from ``(root_seed, run_index)``), which is what makes parallel
    output bit-identical to serial output.

    Workers are started with the ``fork`` method where the platform offers it,
    so per-process state set up before the fan-out — scenarios registered by
    downstream plugins via ``@register_scenario``, cache directories set with
    ``set_cache_dir`` — is visible inside the workers.  On spawn-only
    platforms (Windows) such state must instead be established at module
    import time, because workers re-import modules from scratch.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or available_cpus()
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self._chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _mp_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - spawn-only platforms
            return None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._mp_context()
            )
        return self._pool

    def _chunksize_for(self, n_items: int) -> int:
        if self._chunksize is not None:
            return self._chunksize
        # Two chunks per worker balances load against pickling overhead.
        return max(1, n_items // (self.max_workers * 2) or 1)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        materialized: Sequence[T] = list(items)
        if not materialized:
            return []
        if len(materialized) == 1:
            # A single item never amortizes pool start-up; run it inline.
            return [fn(materialized[0])]
        pool = self._ensure_pool()
        return list(
            pool.map(fn, materialized, chunksize=self._chunksize_for(len(materialized)))
        )

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[Tuple[int, R]]:
        materialized: Sequence[T] = list(items)
        if not materialized:
            return
        if len(materialized) == 1:
            yield 0, fn(materialized[0])
            return
        pool = self._ensure_pool()
        index_of = {
            pool.submit(fn, item): index for index, item in enumerate(materialized)
        }
        pending = set(index_of)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield index_of[future], future.result()
        finally:
            # The consumer may abandon the stream (or a work item may raise);
            # don't leave queued-but-unstarted futures behind in the pool.
            for future in pending:
                future.cancel()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ParallelExecutor(max_workers={self.max_workers})"


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjectingExecutor` at its configured fail point."""


class FaultInjectingExecutor(Executor):
    """An executor that dies after a fixed number of completed work items.

    A testing aid for crash/resume semantics: the first ``fail_after`` items
    complete normally (and reach the consumer, so checkpoints land on disk),
    then :class:`InjectedFault` is raised — simulating a campaign process
    killed mid-flight without needing real signals.  The counter spans calls,
    mirroring a single process crashing partway through a batch.
    """

    def __init__(self, fail_after: int, inner: Optional[Executor] = None):
        if fail_after < 0:
            raise ValueError("fail_after must be non-negative")
        self.fail_after = fail_after
        self.inner = inner or SerialExecutor()
        self.completed = 0

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        pairs = sorted(self.imap(fn, items))
        return [result for _, result in pairs]

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[Tuple[int, R]]:
        for pair in self.inner.imap(fn, items):
            if self.completed >= self.fail_after:
                raise InjectedFault(
                    f"injected fault after {self.completed} completed items"
                )
            self.completed += 1
            yield pair

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return (
            f"FaultInjectingExecutor(fail_after={self.fail_after}, inner={self.inner!r})"
        )


def resolve_executor(spec: ExecutorLike = None) -> Executor:
    """Coerce an executor spec into an :class:`Executor`.

    * ``None``, ``0``, or ``1`` — :class:`SerialExecutor`;
    * ``n > 1`` — :class:`ParallelExecutor` with ``n`` workers;
    * ``-1`` — :class:`ParallelExecutor` over all available CPUs;
    * an :class:`Executor` instance — returned unchanged.

    This is the type behind every ``executor=`` / ``--jobs`` knob in the
    experiment layer.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, bool) or not isinstance(spec, int):
        raise TypeError(f"executor spec must be an Executor, int, or None, got {spec!r}")
    if spec == -1:
        return ParallelExecutor(available_cpus())
    if spec < -1:
        raise ValueError(f"negative worker counts other than -1 are invalid: {spec}")
    if spec <= 1:
        return SerialExecutor()
    return ParallelExecutor(spec)

"""Pinhole-style projection between the road frame and the image plane.

The LGSVL setup in the paper uses a 1920x1080 front camera.  We model a
simplified pinhole camera that maps an object at longitudinal distance ``d``
(metres ahead of the camera) and lateral offset ``y`` (metres, positive left)
to an image-plane bounding box:

* horizontal centre:  ``cx = image_cx - focal * y / d``  (left in the world is
  left in the image),
* box width:          ``focal * object_width / d``,
* box height:         ``focal * object_height / d``,
* vertical centre:    derived from the camera height and the object's vertical
  extent so that nearer/taller objects sit lower/larger in the frame.

The perception stack inverts the same model ("T" in paper Fig. 1) to recover
distance and lateral offset from a box, which is exactly the quantity the
trajectory hijacker manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.bbox import BoundingBox

__all__ = ["CameraIntrinsics", "CameraProjection"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Intrinsic parameters of the simulated front camera."""

    image_width: int = 1920
    image_height: int = 1080
    focal_px: float = 1000.0
    camera_height_m: float = 1.5

    def __post_init__(self) -> None:
        if self.image_width <= 0 or self.image_height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.focal_px <= 0:
            raise ValueError("focal length must be positive")

    @property
    def image_cx(self) -> float:
        return self.image_width / 2.0

    @property
    def image_cy(self) -> float:
        return self.image_height / 2.0


class CameraProjection:
    """Bidirectional mapping between road-frame positions and image boxes."""

    #: Minimum projection distance; objects closer than this are clamped so the
    #: projection stays finite (the simulator halts well before this range).
    MIN_DISTANCE_M = 0.5

    def __init__(self, intrinsics: CameraIntrinsics | None = None):
        self.intrinsics = intrinsics or CameraIntrinsics()

    def project(
        self,
        distance_m: float,
        lateral_m: float,
        object_width_m: float,
        object_height_m: float,
    ) -> BoundingBox:
        """Project an object into an image-plane bounding box.

        ``distance_m`` is the longitudinal distance from the camera to the
        object (must be ahead of the camera), ``lateral_m`` the lateral offset
        of the object centre (positive left).
        """
        if object_width_m <= 0 or object_height_m <= 0:
            raise ValueError("object dimensions must be positive")
        d = max(distance_m, self.MIN_DISTANCE_M)
        intr = self.intrinsics
        scale = intr.focal_px / d
        width_px = object_width_m * scale
        height_px = object_height_m * scale
        cx = intr.image_cx - lateral_m * scale
        # The vertical position of the object centre on the image plane: the
        # ground plane sits camera_height below the optical axis.
        ground_y = intr.image_cy + intr.camera_height_m * scale
        cy = ground_y - (object_height_m / 2.0) * scale
        return BoundingBox(cx=cx, cy=cy, width=width_px, height=height_px)

    def inverse_distance(self, box: BoundingBox, object_height_m: float) -> float:
        """Recover the longitudinal distance from a box's pixel height."""
        if object_height_m <= 0:
            raise ValueError("object height must be positive")
        if box.height <= 0:
            raise ValueError("box height must be positive to invert the projection")
        return self.intrinsics.focal_px * object_height_m / box.height

    def inverse_lateral(self, box: BoundingBox, distance_m: float) -> float:
        """Recover the lateral offset (metres, positive left) from a box centre."""
        d = max(distance_m, self.MIN_DISTANCE_M)
        return (self.intrinsics.image_cx - box.cx) * d / self.intrinsics.focal_px

    def lateral_shift_to_pixels(self, lateral_shift_m: float, distance_m: float) -> float:
        """Convert a world-frame lateral shift into an image-plane pixel shift.

        Used by the trajectory hijacker to translate its desired world-frame
        displacement Omega into per-frame pixel perturbations.
        """
        d = max(distance_m, self.MIN_DISTANCE_M)
        return -lateral_shift_m * self.intrinsics.focal_px / d

    def pixels_to_lateral_shift(self, pixel_shift: float, distance_m: float) -> float:
        """Convert an image-plane pixel shift into a world-frame lateral shift."""
        d = max(distance_m, self.MIN_DISTANCE_M)
        return -pixel_shift * d / self.intrinsics.focal_px

    def in_field_of_view(self, distance_m: float, lateral_m: float) -> bool:
        """Whether a point projects inside the horizontal image bounds."""
        if distance_m < self.MIN_DISTANCE_M:
            return False
        intr = self.intrinsics
        cx = intr.image_cx - lateral_m * intr.focal_px / distance_m
        return 0.0 <= cx <= intr.image_width

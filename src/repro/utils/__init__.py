"""General utilities shared by the simulation, perception, and attack code.

The utilities are deliberately small and dependency-free: seeded random number
helpers (:mod:`repro.utils.rng`), distribution fitting and summary statistics
used by the evaluation harness (:mod:`repro.utils.stats`), and unit conversion
helpers (:mod:`repro.utils.units`).
"""

from repro.utils.rng import SeedSequenceFactory, make_rng, spawn_rngs
from repro.utils.stats import (
    BoxplotStats,
    ExponentialFit,
    NormalFit,
    boxplot_stats,
    fit_exponential,
    fit_normal,
    percentile,
)
from repro.utils.units import kph_to_mps, mps_to_kph

__all__ = [
    "SeedSequenceFactory",
    "make_rng",
    "spawn_rngs",
    "BoxplotStats",
    "ExponentialFit",
    "NormalFit",
    "boxplot_stats",
    "fit_exponential",
    "fit_normal",
    "percentile",
    "kph_to_mps",
    "mps_to_kph",
]

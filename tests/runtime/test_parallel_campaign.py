"""Determinism and caching tests for the parallel campaign runtime.

The core invariant of the refactor: a campaign fanned out over worker
processes yields *element-wise identical* results to the serial path for the
same ``CampaignConfig`` seed.
"""

import math

import pytest

from repro.core.attack_vectors import AttackVector
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    PredictorKind,
    clear_caches,
    run_campaign,
    run_campaigns,
)
from repro.experiments.results import RunResult
from repro.runtime import ParallelExecutor, SerialExecutor


def assert_runs_identical(a: RunResult, b: RunResult) -> None:
    """Field-wise equality with NaN == NaN (absent measurements match)."""
    for name in RunResult.__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if isinstance(left, float) and math.isnan(left):
            assert isinstance(right, float) and math.isnan(right), name
        else:
            assert left == right, (name, left, right)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestSerialParallelDeterminism:
    def test_golden_campaign_identical(self):
        config = CampaignConfig(
            campaign_id="det-none-ds1",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=4,
            seed=17,
        )
        serial = run_campaign(config, use_cache=False, executor=SerialExecutor())
        with ParallelExecutor(max_workers=2) as executor:
            parallel = run_campaign(config, use_cache=False, executor=executor)
        assert serial.n_runs == parallel.n_runs == 4
        for left, right in zip(serial.runs, parallel.runs):
            assert_runs_identical(left, right)

    def test_attacked_campaign_identical(self):
        # The kinematic oracle avoids NN training cost while still exercising
        # the predictor hand-off from parent to workers.
        config = CampaignConfig(
            campaign_id="det-robotack-ds2",
            scenario_id="DS-2",
            attacker=AttackerKind.ROBOTACK,
            vector=AttackVector.DISAPPEAR,
            n_runs=3,
            seed=23,
            predictor=PredictorKind.KINEMATIC,
        )
        serial = run_campaign(config, use_cache=False)
        parallel = run_campaign(config, use_cache=False, executor=2)
        for left, right in zip(serial.runs, parallel.runs):
            assert_runs_identical(left, right)

    def test_executor_shared_across_campaigns(self):
        configs = [
            CampaignConfig(
                campaign_id=f"shared-{scenario_id}",
                scenario_id=scenario_id,
                attacker=AttackerKind.NONE,
                n_runs=2,
                seed=5,
            )
            for scenario_id in ("DS-1", "DS-3")
        ]
        serial = run_campaigns(configs, use_cache=False)
        parallel = run_campaigns(configs, use_cache=False, executor=2)
        assert [c.campaign_id for c in serial] == [c.campaign_id for c in parallel]
        for s_campaign, p_campaign in zip(serial, parallel):
            for left, right in zip(s_campaign.runs, p_campaign.runs):
                assert_runs_identical(left, right)


class TestCampaignCaching:
    def _config(self) -> CampaignConfig:
        return CampaignConfig(
            campaign_id="cache-rt-ds1",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=2,
            seed=13,
        )

    def test_cache_hit_returns_same_object(self):
        first = run_campaign(self._config())
        second = run_campaign(self._config())
        assert first is second

    def test_parallel_execution_populates_the_same_cache(self):
        parallel = run_campaign(self._config(), executor=2)
        cached = run_campaign(self._config())
        assert cached is parallel

    def test_disk_backed_cache_survives_memory_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_campaign(self._config())
        clear_caches()  # drops the memory layer; disk files remain
        reloaded = run_campaign(self._config())
        assert reloaded is not first
        assert reloaded.n_runs == first.n_runs
        for left, right in zip(first.runs, reloaded.runs):
            assert_runs_identical(left, right)

"""Tests for the road/lane model and the simulation configuration."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.road import Lane, Road


class TestLane:
    def test_bounds(self):
        lane = Lane("ego", center_y=0.0, width=3.5)
        assert lane.y_min == -1.75 and lane.y_max == 1.75

    def test_contains_lateral_with_margin(self):
        lane = Lane("ego", 0.0, 3.5)
        assert lane.contains_lateral(1.9, margin=0.2)
        assert not lane.contains_lateral(1.9, margin=0.0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Lane("x", 0.0, width=0.0)


class TestRoad:
    def test_default_lanes_present(self, road):
        assert set(road.lanes) == {"ego", "opposite", "parking"}

    def test_ego_lane_centered_at_zero(self, road):
        assert road.ego_lane.center_y == 0.0

    def test_lane_lookup(self, road):
        assert road.lane("parking").center_y == pytest.approx(-3.5)

    def test_unknown_lane_rejected(self, road):
        with pytest.raises(KeyError):
            road.lane("bicycle")

    def test_lane_of_returns_containing_lane(self, road):
        assert road.lane_of(3.4).name == "opposite"
        assert road.lane_of(-3.4).name == "parking"
        assert road.lane_of(0.5).name == "ego"

    def test_lane_of_outside_road(self, road):
        assert road.lane_of(50.0) is None

    def test_in_ego_lane(self, road):
        assert road.in_ego_lane(0.0)
        assert not road.in_ego_lane(3.0)
        assert road.in_ego_lane(2.0, margin=0.5)


class TestSimulationConfig:
    def test_default_rates_match_paper(self):
        config = SimulationConfig()
        assert config.camera_rate_hz == 15.0
        assert config.lidar_rate_hz == 10.0

    def test_dt_is_camera_period(self):
        assert SimulationConfig().dt == pytest.approx(1.0 / 15.0)

    def test_max_steps(self):
        config = SimulationConfig(max_duration_s=2.0)
        assert config.max_steps == 30

    def test_lidar_due_frequency(self):
        config = SimulationConfig()
        # Over ten seconds of camera frames, the 10 Hz LiDAR completes ~100
        # scans (the very first frame may or may not coincide with a scan).
        due = [config.lidar_due(step) for step in range(150)]
        assert sum(due) in (99, 100)

    def test_lidar_due_negative_step_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig().lidar_due(-1)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(camera_rate_hz=0.0)

    def test_max_decel_must_cover_comfortable(self):
        with pytest.raises(ValueError):
            SimulationConfig(comfortable_decel_mps2=5.0, max_decel_mps2=4.0)

    def test_accident_threshold_default(self):
        assert SimulationConfig().halt_gap_m == 4.0

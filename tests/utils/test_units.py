"""Tests for unit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.units import kph_to_mps, mps_to_kph


def test_known_conversion():
    assert kph_to_mps(36.0) == pytest.approx(10.0)
    assert mps_to_kph(10.0) == pytest.approx(36.0)


def test_paper_cruise_speed():
    # The EV cruises at 45 kph (paper §V-C).
    assert kph_to_mps(45.0) == pytest.approx(12.5)


def test_zero():
    assert kph_to_mps(0.0) == 0.0
    assert mps_to_kph(0.0) == 0.0


@given(st.floats(-500, 500))
def test_round_trip(value):
    assert mps_to_kph(kph_to_mps(value)) == pytest.approx(value, abs=1e-9)

"""Campaign runner: seeded batches of (possibly attacked) simulation runs.

A *campaign* fixes a driving scenario, an attack vector, and an attacker kind
(RoboTack, RoboTack without the safety hijacker, the random baseline, or no
attacker at all) and executes ``n_runs`` independent, seeded simulation runs
with randomized initial conditions — mirroring the experimental campaigns of
paper §VI-C ("a set of simulation runs executed with the same driving scenario
and attack vector").

Safety-hijacker predictors are trained once per (scenario, vector) pair and
cached for the lifetime of the process, as are campaign results, so that the
table and figure benchmarks can share work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.core.attack_vectors import AttackVector
from repro.core.baselines import RandomAttacker, RoboTackWithoutSafetyHijacker
from repro.core.robotack import CameraMitmAttackerBase, RoboTack, RoboTackConfig
from repro.core.safety_hijacker import (
    KinematicSafetyPredictor,
    SafetyHijacker,
    SafetyPredictor,
)
from repro.core.training import collect_safety_dataset, train_neural_safety_predictor
from repro.experiments.results import CampaignResult, RunResult
from repro.sim.config import SimulationConfig
from repro.sim.scenarios import DrivingScenario, ScenarioVariation, build_scenario
from repro.sim.simulator import SimulationResult, Simulator

__all__ = [
    "AttackerKind",
    "PredictorKind",
    "CampaignConfig",
    "run_single_experiment",
    "run_campaign",
    "get_or_train_predictor",
    "clear_caches",
]


class AttackerKind(enum.Enum):
    """Which attacker (if any) is installed on the camera link."""

    ROBOTACK = "robotack"
    ROBOTACK_NO_SH = "robotack_no_sh"
    RANDOM = "random"
    NONE = "none"


class PredictorKind(enum.Enum):
    """Which safety-potential oracle the safety hijacker uses."""

    NEURAL = "neural"
    KINEMATIC = "kinematic"


#: Training grids (delta_inject values, k values) per scenario used to collect
#: the safety-hijacker dataset.  Pedestrian scenarios use shorter windows.
_TRAINING_GRIDS: Dict[str, Tuple[Tuple[float, ...], Tuple[int, ...]]] = {
    "DS-1": ((28.0, 24.0, 21.0, 18.0, 15.0, 12.0), (30, 42, 50, 58)),
    "DS-2": ((55.0, 48.0, 42.0, 38.0, 34.0, 30.0), (10, 16, 22, 28)),
    "DS-3": ((20.0, 15.0, 11.0, 7.0, 3.0, 0.0), (12, 25, 40, 55)),
    "DS-4": ((16.0, 12.0, 9.0, 6.0, 3.0, 0.0), (10, 16, 23, 30)),
    "DS-5": ((28.0, 24.0, 21.0, 18.0, 15.0, 12.0), (30, 42, 50, 58)),
}

_PREDICTOR_CACHE: Dict[Tuple[str, AttackVector, PredictorKind, int], SafetyPredictor] = {}
_CAMPAIGN_CACHE: Dict[Tuple, CampaignResult] = {}


def clear_caches() -> None:
    """Drop all cached predictors and campaign results (mainly for tests)."""
    _PREDICTOR_CACHE.clear()
    _CAMPAIGN_CACHE.clear()


@dataclass(frozen=True)
class CampaignConfig:
    """Specification of one experimental campaign."""

    campaign_id: str
    scenario_id: str
    attacker: AttackerKind
    vector: Optional[AttackVector] = None
    n_runs: int = 30
    seed: int = 2020
    predictor: PredictorKind = PredictorKind.NEURAL
    #: Epochs used when training the neural predictor for this campaign.
    training_epochs: int = 200
    simulation: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        if self.n_runs <= 0:
            raise ValueError("n_runs must be positive")
        if self.attacker in (AttackerKind.ROBOTACK, AttackerKind.ROBOTACK_NO_SH) and self.vector is None:
            raise ValueError("RoboTack campaigns must pin an attack vector")

    def cache_key(self) -> Tuple:
        return (
            self.campaign_id,
            self.scenario_id,
            self.attacker,
            self.vector,
            self.n_runs,
            self.seed,
            self.predictor,
        )


def build_ads_agent(scenario: DrivingScenario, rng: np.random.Generator) -> AdsAgent:
    """Construct the victim ADS agent for a scenario."""
    return AdsAgent(
        road=scenario.road,
        planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
        rng=rng,
    )


def get_or_train_predictor(
    scenario_id: str,
    vector: AttackVector,
    kind: PredictorKind = PredictorKind.NEURAL,
    seed: int = 7,
    training_epochs: int = 120,
) -> SafetyPredictor:
    """Return the safety-potential oracle for a scenario/vector, training it if needed."""
    cache_key = (scenario_id, vector, kind, seed)
    if cache_key in _PREDICTOR_CACHE:
        return _PREDICTOR_CACHE[cache_key]
    if kind is PredictorKind.KINEMATIC:
        predictor: SafetyPredictor = KinematicSafetyPredictor(vector)
    else:
        delta_grid, k_grid = _TRAINING_GRIDS[scenario_id]
        dataset = collect_safety_dataset(
            scenario_id=scenario_id,
            vector=vector,
            delta_inject_values=delta_grid,
            k_values=k_grid,
            seed=seed,
            repeats=2,
        )
        predictor, _ = train_neural_safety_predictor(
            dataset, epochs=training_epochs, seed=seed
        )
    _PREDICTOR_CACHE[cache_key] = predictor
    return predictor


def _build_attacker(
    config: CampaignConfig,
    scenario: DrivingScenario,
    rng: np.random.Generator,
) -> Optional[CameraMitmAttackerBase]:
    if config.attacker is AttackerKind.NONE:
        return None
    allowed = (config.vector,) if config.vector is not None else tuple(AttackVector)
    attack_config = RoboTackConfig(allowed_vectors=allowed)
    if config.attacker is AttackerKind.ROBOTACK:
        predictor = get_or_train_predictor(
            config.scenario_id,
            config.vector,
            kind=config.predictor,
            training_epochs=config.training_epochs,
        )
        hijacker = SafetyHijacker(predictor)
        return RoboTack(scenario.road, hijacker, attack_config, rng=rng)
    if config.attacker is AttackerKind.ROBOTACK_NO_SH:
        return RoboTackWithoutSafetyHijacker(scenario.road, attack_config, rng=rng)
    return RandomAttacker(
        scenario.road,
        attack_config,
        rng=rng,
        candidate_target_actor_ids=[actor.actor_id for actor in scenario.world.actors],
    )


def _true_delta_at_attack_end(
    result: SimulationResult, attacker: Optional[CameraMitmAttackerBase]
) -> float:
    if attacker is None or not attacker.record.launched or attacker.record.start_frame is None:
        return float("nan")
    trace = result.events.true_delta_trace
    if not trace:
        return float("nan")
    index = min(
        attacker.record.start_frame - 1 + attacker.record.planned_k_frames, len(trace) - 1
    )
    return float(trace[index])


def run_single_experiment(config: CampaignConfig, run_index: int) -> RunResult:
    """Execute one seeded run of a campaign and summarize it."""
    run_seed = int(np.random.SeedSequence([config.seed, run_index]).generate_state(1)[0])
    rng = np.random.default_rng(run_seed)
    variation = ScenarioVariation.sample(rng)
    scenario = build_scenario(config.scenario_id, variation)
    ads = build_ads_agent(scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1))))
    attacker = _build_attacker(config, scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1))))
    simulator = Simulator(
        scenario,
        ads,
        config=config.simulation,
        attacker=attacker,
        rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
    )
    result = simulator.run()

    record = attacker.record if attacker is not None else None
    min_delta = result.min_true_delta_from_attack()
    accident = result.accident_occurred(config.simulation.halt_gap_m)
    return RunResult(
        run_index=run_index,
        seed=run_seed,
        scenario_id=config.scenario_id,
        attacker_kind=config.attacker.value,
        vector=record.vector if record is not None else None,
        target_kind=record.target_kind if record is not None else scenario.target_kind,
        attack_launched=bool(record.launched) if record is not None else False,
        emergency_braking=result.emergency_braking_occurred,
        collision=result.collision_occurred,
        accident=accident,
        min_true_delta_m=min_delta,
        true_delta_at_attack_end_m=_true_delta_at_attack_end(result, attacker),
        predicted_delta_m=record.predicted_delta_m if record is not None else float("nan"),
        planned_k_frames=record.planned_k_frames if record is not None else 0,
        frames_perturbed=record.frames_perturbed if record is not None else 0,
        k_prime_frames=record.shift_frames_k_prime if record is not None else 0,
        delta_at_launch_m=(
            record.features_at_launch.delta_m
            if record is not None and record.features_at_launch is not None
            else float("nan")
        ),
    )


def run_campaign(config: CampaignConfig, use_cache: bool = True) -> CampaignResult:
    """Execute all runs of a campaign (results are cached per process)."""
    key = config.cache_key()
    if use_cache and key in _CAMPAIGN_CACHE:
        return _CAMPAIGN_CACHE[key]
    campaign = CampaignResult(
        campaign_id=config.campaign_id,
        scenario_id=config.scenario_id,
        attacker_kind=config.attacker.value,
        vector=config.vector,
    )
    for run_index in range(config.n_runs):
        campaign.runs.append(run_single_experiment(config, run_index))
    if use_cache:
        _CAMPAIGN_CACHE[key] = campaign
    return campaign


def standard_campaigns(
    n_runs: int = 30,
    seed: int = 2020,
    attacker: AttackerKind = AttackerKind.ROBOTACK,
    predictor: PredictorKind = PredictorKind.NEURAL,
) -> Sequence[CampaignConfig]:
    """The six RoboTack campaigns of paper Table II (without the random baseline)."""
    pairs = [
        ("DS-1", AttackVector.DISAPPEAR),
        ("DS-2", AttackVector.DISAPPEAR),
        ("DS-1", AttackVector.MOVE_OUT),
        ("DS-2", AttackVector.MOVE_OUT),
        ("DS-3", AttackVector.MOVE_IN),
        ("DS-4", AttackVector.MOVE_IN),
    ]
    suffix = "R" if attacker is AttackerKind.ROBOTACK else "R-wo-SH"
    return [
        CampaignConfig(
            campaign_id=f"{scenario}-{vector.name.title()}-{suffix}",
            scenario_id=scenario,
            attacker=attacker,
            vector=vector,
            n_runs=n_runs,
            seed=seed,
            predictor=predictor,
        )
        for scenario, vector in pairs
    ]


def baseline_random_campaign(n_runs: int = 30, seed: int = 2020) -> CampaignConfig:
    """The DS-5 Baseline-Random campaign of paper Table II."""
    return CampaignConfig(
        campaign_id="DS-5-Baseline-Random",
        scenario_id="DS-5",
        attacker=AttackerKind.RANDOM,
        vector=None,
        n_runs=n_runs,
        seed=seed,
    )

"""Tests for obstacle prediction, the longitudinal planner, and the ADS agent."""

import numpy as np
import pytest

from repro.ads.planning import LongitudinalPlanner, PlannerConfig
from repro.ads.prediction import ObstaclePredictor, PredictionConfig
from repro.ads.world_model import WorldModel
from repro.geometry import Vec2
from repro.perception.fusion import FusedObstacle
from repro.sensors.gps_imu import EgoPoseEstimate
from repro.sim.actors import ActorKind
from repro.sim.road import Road
from repro.utils.units import kph_to_mps


def obstacle(
    distance,
    lateral,
    speed=0.0,
    lateral_velocity=0.0,
    kind=ActorKind.VEHICLE,
    obstacle_id="obs-1",
    actor_id=1,
):
    return FusedObstacle(
        obstacle_id=obstacle_id,
        kind=kind,
        distance_m=distance,
        lateral_m=lateral,
        longitudinal_speed_mps=speed,
        lateral_velocity_mps=lateral_velocity,
        sources=("camera", "lidar"),
        actor_id=actor_id,
    )


def world(ego_speed, obstacles=()):
    ego = EgoPoseEstimate(time_s=0.0, position=Vec2(0, 0), speed_mps=ego_speed, acceleration_mps2=0.0)
    return WorldModel(time_s=0.0, ego=ego, obstacles=tuple(obstacles))


class TestObstaclePredictor:
    @pytest.fixture
    def predictor(self, road):
        return ObstaclePredictor(road)

    def test_in_lane_vehicle_is_in_path(self, predictor):
        assert predictor.currently_in_path(obstacle(30, 0.0))

    def test_parked_vehicle_not_in_path(self, predictor):
        assert not predictor.currently_in_path(obstacle(30, -3.5))

    def test_crossing_pedestrian_predicted_in_path(self, predictor):
        ped = obstacle(40, -3.0, lateral_velocity=1.4, kind=ActorKind.PEDESTRIAN)
        assert not predictor.currently_in_path(ped)
        assert predictor.predicted_in_path(ped)

    def test_small_lateral_velocity_ignored(self, predictor):
        ped = obstacle(40, -3.0, lateral_velocity=0.3, kind=ActorKind.PEDESTRIAN)
        assert not predictor.predicted_in_path(ped)

    def test_close_range_prediction_disabled(self, predictor):
        ped = obstacle(5.0, -3.0, lateral_velocity=1.4, kind=ActorKind.PEDESTRIAN)
        assert not predictor.predicted_in_path(ped)

    def test_nearest_in_path_selection(self, predictor):
        near_out_of_lane = obstacle(15, 3.5, obstacle_id="a", actor_id=1)
        far_in_lane = obstacle(40, 0.0, obstacle_id="b", actor_id=2)
        assert predictor.nearest_in_path([near_out_of_lane, far_in_lane]).obstacle_id == "b"

    def test_nearest_in_path_none_when_clear(self, predictor):
        assert predictor.nearest_in_path([obstacle(30, 3.5)]) is None

    def test_bumper_gap_subtracts_half_length(self, predictor):
        vehicle = obstacle(30, 0.0)
        assert predictor.bumper_gap(vehicle) < vehicle.distance_m

    def test_pedestrians_near_path(self, predictor):
        ped = obstacle(30, -2.6, kind=ActorKind.PEDESTRIAN)
        found = predictor.pedestrians_near_path([ped], max_distance_m=45.0, caution_margin_m=1.6)
        assert found == [ped]
        none_found = predictor.pedestrians_near_path([ped], max_distance_m=20.0, caution_margin_m=1.6)
        assert none_found == []

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PredictionConfig(horizon_s=-1.0)


class TestLongitudinalPlanner:
    @pytest.fixture
    def planner(self, road):
        return LongitudinalPlanner(road, PlannerConfig())

    def test_accelerates_on_clear_road_below_cruise(self, planner):
        decision = planner.plan(world(ego_speed=8.0))
        assert decision.desired_acceleration_mps2 > 0
        assert not decision.emergency_brake
        assert decision.perceived_delta_m == float("inf")

    def test_holds_speed_at_cruise(self, planner):
        decision = planner.plan(world(ego_speed=kph_to_mps(45.0)))
        assert abs(decision.desired_acceleration_mps2) < 0.2

    def test_brakes_for_slow_lead_vehicle(self, planner):
        decision = planner.plan(world(ego_speed=12.5, obstacles=[obstacle(25, 0.0, speed=5.0)]))
        assert decision.desired_acceleration_mps2 < 0
        assert decision.lead_obstacle is not None

    def test_ignores_parked_vehicle_in_parking_lane(self, planner):
        decision = planner.plan(world(ego_speed=12.5, obstacles=[obstacle(40, -3.5, speed=0.0)]))
        assert decision.lead_obstacle is None

    def test_emergency_brake_for_suddenly_close_stopped_obstacle(self, planner):
        decision = planner.plan(world(ego_speed=12.5, obstacles=[obstacle(16, 0.0, speed=0.0)]))
        assert decision.emergency_brake
        assert decision.desired_acceleration_mps2 == pytest.approx(-PlannerConfig().max_decel_mps2)

    def test_no_emergency_brake_when_obstacle_faster(self, planner):
        decision = planner.plan(world(ego_speed=10.0, obstacles=[obstacle(12, 0.0, speed=15.0)]))
        assert not decision.emergency_brake

    def test_pedestrian_caution_caps_target_speed(self, planner):
        ped = obstacle(30, -2.6, kind=ActorKind.PEDESTRIAN)
        decision = planner.plan(world(ego_speed=12.5, obstacles=[ped]))
        assert decision.target_speed_mps == pytest.approx(kph_to_mps(35.0))

    def test_lost_lead_triggers_coasting(self, planner):
        # Establish a lead obstacle, then make it vanish: the planner should
        # not accelerate for the coasting hold period.
        planner.plan(world(ego_speed=8.0, obstacles=[obstacle(20, 0.0, speed=7.0)]))
        after_loss = planner.plan(world(ego_speed=8.0))
        assert after_loss.desired_acceleration_mps2 <= 0.0

    def test_coasting_expires(self, planner):
        planner.plan(world(ego_speed=8.0, obstacles=[obstacle(20, 0.0, speed=7.0)]))
        for _ in range(PlannerConfig().lost_lead_coast_frames + 1):
            decision = planner.plan(world(ego_speed=8.0))
        assert decision.desired_acceleration_mps2 > 0.0

    def test_reset_clears_coasting_state(self, planner):
        planner.plan(world(ego_speed=8.0, obstacles=[obstacle(20, 0.0, speed=7.0)]))
        planner.reset()
        decision = planner.plan(world(ego_speed=8.0))
        assert decision.desired_acceleration_mps2 > 0.0

    def test_perceived_delta_matches_safety_model(self, planner):
        lead = obstacle(30, 0.0, speed=5.0)
        decision = planner.plan(world(ego_speed=10.0, obstacles=[lead]))
        gap = planner.predictor.bumper_gap(lead)
        expected = planner.safety_model.safety_potential(gap, 10.0)
        assert decision.perceived_delta_m == pytest.approx(expected)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(cruise_speed_mps=0.0)
        with pytest.raises(ValueError):
            PlannerConfig(comfortable_decel_mps2=5.0, max_decel_mps2=4.0)


class TestWorldModel:
    def test_obstacles_ahead_sorted_and_filtered(self):
        model = world(
            10.0,
            obstacles=[
                obstacle(50, 0.0, obstacle_id="far", actor_id=1),
                obstacle(20, 0.0, obstacle_id="near", actor_id=2),
                obstacle(-5, 0.0, obstacle_id="behind", actor_id=3),
            ],
        )
        ahead = model.obstacles_ahead()
        assert [o.obstacle_id for o in ahead] == ["near", "far"]
        assert model.nearest_obstacle().obstacle_id == "near"
        assert model.obstacle_count() == 3

    def test_obstacle_for_actor(self):
        model = world(10.0, obstacles=[obstacle(20, 0.0, actor_id=7)])
        assert model.obstacle_for_actor(7) is not None
        assert model.obstacle_for_actor(8) is None

    def test_max_distance_filter(self):
        model = world(10.0, obstacles=[obstacle(20, 0.0), obstacle(90, 0.0, obstacle_id="x", actor_id=2)])
        assert len(model.obstacles_ahead(max_distance_m=50.0)) == 1


class TestAdsAgentIntegration:
    def test_agent_decision_has_consistent_fields(self, nominal_ds1, ads_factory):
        from repro.sensors.camera import CameraSensor
        from repro.sensors.gps_imu import GpsImuSensor
        from repro.sensors.lidar import LidarSensor

        agent = ads_factory(nominal_ds1)
        camera, lidar = CameraSensor(), LidarSensor(rng=np.random.default_rng(0))
        gps = GpsImuSensor(rng=np.random.default_rng(1))
        decision = None
        for _ in range(10):
            snapshot = nominal_ds1.world.snapshot()
            decision = agent.step(
                camera.capture(snapshot), lidar.scan(snapshot), gps.measure(snapshot), 1.0 / 15.0
            )
            nominal_ds1.world.step(1.0 / 15.0, decision.acceleration_mps2)
        assert decision.perception is not None
        assert decision.world_model.obstacle_count() >= 1
        assert -6.0 <= decision.acceleration_mps2 <= 2.0

    def test_agent_reset(self, nominal_ds1, ads_factory):
        agent = ads_factory(nominal_ds1)
        agent.reset()
        assert agent.perception.tracker.tracks == {}

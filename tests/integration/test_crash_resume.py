"""Crash/resume integration tests for store-checkpointed campaigns.

The contract of the resumable runner: a campaign killed after k of n runs
and later resumed produces a :class:`CampaignResult` whose statistics are
*bit-identical* to a clean, uninterrupted serial run — because every run is
independently seeded from ``(campaign_seed, run_index)`` and the store
skips exactly the (config-hash, run-index) pairs already on disk.

The crash is simulated with :class:`FaultInjectingExecutor`, which completes
a fixed number of work items (checkpointing them) and then dies.
"""

import math

import pytest

from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    clear_caches,
    run_campaign,
)
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.store import ExperimentStore, config_hash
from repro.runtime import FaultInjectingExecutor, InjectedFault, ParallelExecutor
from repro.sim.config import SimulationConfig


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _config(n_runs: int = 5, seed: int = 11) -> CampaignConfig:
    # Short runs keep the test fast; the resume semantics are length-agnostic.
    return CampaignConfig(
        campaign_id="resume-ds1",
        scenario_id="DS-1",
        attacker=AttackerKind.NONE,
        n_runs=n_runs,
        seed=seed,
        simulation=SimulationConfig(max_duration_s=1.5),
    )


def assert_runs_identical(a: RunResult, b: RunResult) -> None:
    for name in RunResult.__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if isinstance(left, float) and math.isnan(left):
            assert isinstance(right, float) and math.isnan(right), name
        else:
            assert left == right, (name, left, right)


def assert_campaigns_identical(a: CampaignResult, b: CampaignResult) -> None:
    assert a.n_runs == b.n_runs
    for left, right in zip(a.runs, b.runs):
        assert_runs_identical(left, right)
    # The aggregate statistics the tables are built from.
    assert a.emergency_braking_rate == b.emergency_braking_rate
    assert a.accident_rate == b.accident_rate
    assert a.min_delta_values() == b.min_delta_values()
    assert a.median_planned_k() == b.median_planned_k()


class TestCrashResume:
    def test_interrupted_then_resumed_is_bit_identical_to_clean_serial(self, tmp_path):
        config = _config()
        clean = run_campaign(config, use_cache=False)

        store = ExperimentStore(tmp_path)
        with pytest.raises(InjectedFault):
            run_campaign(config, store=store, executor=FaultInjectingExecutor(2))

        # The crash checkpointed exactly the completed runs...
        assert store.run_indices(config_hash(config)) == {0, 1}
        # ...and the store knows what is missing.
        (incomplete_config, missing), = store.incomplete_campaigns()
        assert incomplete_config == config
        assert missing == {2, 3, 4}

        resumed = run_campaign(config, store=store)
        assert_campaigns_identical(resumed, clean)
        assert store.incomplete_campaigns() == []

    def test_parallel_crash_serial_resume_is_bit_identical(self, tmp_path):
        # An out-of-order parallel crash leaves an arbitrary subset of run
        # indices behind; order-tagged checkpointing makes the merge exact.
        config = _config(n_runs=6, seed=29)
        clean = run_campaign(config, use_cache=False)

        store = ExperimentStore(tmp_path)
        with ParallelExecutor(max_workers=2) as inner:
            with pytest.raises(InjectedFault):
                run_campaign(
                    config, store=store, executor=FaultInjectingExecutor(3, inner)
                )
        done = store.run_indices(config_hash(config))
        assert len(done) == 3
        assert done < set(range(6))

        resumed = run_campaign(config, store=store)
        assert_campaigns_identical(resumed, clean)

    def test_resume_of_complete_campaign_runs_nothing(self, tmp_path):
        config = _config(n_runs=3, seed=7)
        store = ExperimentStore(tmp_path)
        first = run_campaign(config, store=store)

        def exploding_worker(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("a complete campaign must not re-execute runs")

        # A fault executor that dies on the *first* item proves nothing runs.
        second = run_campaign(config, store=store, executor=FaultInjectingExecutor(0))
        assert_campaigns_identical(first, second)

    def test_store_path_matches_plain_campaign_statistics(self, tmp_path):
        config = _config(n_runs=4, seed=3)
        plain = run_campaign(config, use_cache=False)
        stored = run_campaign(config, store=ExperimentStore(tmp_path))
        assert_campaigns_identical(plain, stored)

"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` (the legacy editable-install path,
which does not require building a wheel) works in offline environments.
"""

from setuptools import setup

setup()

"""Unit tests for the adaptive samplers — no simulator involved.

The convergence tests drive the propose/observe loop against cheap synthetic
objectives (a quadratic bowl in unit space, fixed per-arm reward rates), so
they pin the *search* behavior: CE must concentrate its proposal
distribution on the optimum, the bandits must concentrate the pull budget on
the best arm, and every sampler's state must round-trip bit-identically
through JSON (the resume contract).
"""

import json

import numpy as np
import pytest

from repro.search.samplers import (
    BanditSampler,
    CrossEntropySampler,
    RandomSearchSampler,
    build_search_sampler,
    list_search_samplers,
)
from repro.sim.sweeps import Choice, ParameterSpace, Uniform

TWO_UNIFORM = ParameterSpace(
    {
        "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
        "variation.lead_speed_offset_mps": Uniform(-0.8, 0.8),
    }
)
MIXED = ParameterSpace(
    {
        "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
        "fusion.policy": Choice(("late", "camera_only", "lidar_only")),
    }
)
CHOICE_ONLY = ParameterSpace(
    {"fusion.policy": Choice(("late", "camera_only", "lidar_only", "consistency_gated"))}
)


def _units_of(space: ParameterSpace, assignments) -> np.ndarray:
    """Invert assignments back to unit coordinates (Uniform axes only)."""
    rows = []
    for assignment in assignments:
        row = []
        for path in space.paths():
            spec = space.spec(path)
            row.append((assignment[path] - spec.low) / (spec.high - spec.low))
        rows.append(row)
    return np.asarray(rows)


def _quadratic(space: ParameterSpace, target: np.ndarray):
    """Score = 1 - squared unit-space distance to ``target`` (max at target)."""

    def score(assignments):
        units = _units_of(space, assignments)
        return (1.0 - ((units - target) ** 2).sum(axis=1)).tolist()

    return score


class TestRandomSearchSampler:
    def test_first_batch_matches_space_random(self):
        sampler = RandomSearchSampler(TWO_UNIFORM, seed=7)
        proposed = sampler.propose(12)
        assert proposed == TWO_UNIFORM.random(12, seed=7)

    def test_later_batches_continue_the_stream(self):
        sampler = RandomSearchSampler(TWO_UNIFORM, seed=7)
        first = sampler.propose(5)
        sampler.observe(first, [0.0] * 5)
        second = sampler.propose(5)
        assert second != first
        # Same stream as one longer draw from the same generator.
        rng = np.random.default_rng(7)
        units = rng.uniform(size=(10, 2))
        assert first + second == TWO_UNIFORM.sample_from(units)


class TestCrossEntropyConvergence:
    def test_converges_on_quadratic_bowl(self):
        target = np.array([0.72, 0.31])
        score = _quadratic(TWO_UNIFORM, target)
        sampler = CrossEntropySampler(TWO_UNIFORM, seed=3)
        for _ in range(25):
            batch = sampler.propose(24)
            sampler.observe(batch, score(batch))
        for column, path in enumerate(TWO_UNIFORM.paths()):
            dist = sampler.distribution(path)
            assert dist["mean"] == pytest.approx(target[column], abs=0.08)
            assert dist["sigma"] < 0.15

    def test_categorical_concentrates_on_best_value(self):
        def score(assignments):
            return [1.0 if a["fusion.policy"] == "camera_only" else 0.1 for a in assignments]

        sampler = CrossEntropySampler(CHOICE_ONLY, seed=5)
        for _ in range(12):
            batch = sampler.propose(16)
            sampler.observe(batch, score(batch))
        probs = sampler.distribution("fusion.policy")["probs"]
        assert probs[1] > 0.9  # camera_only is index 1
        assert sum(probs) == pytest.approx(1.0)

    def test_sigma_floor_keeps_exploring(self):
        sampler = CrossEntropySampler(TWO_UNIFORM, seed=0, min_sigma=0.05)
        score = _quadratic(TWO_UNIFORM, np.array([0.5, 0.5]))
        for _ in range(30):
            batch = sampler.propose(16)
            sampler.observe(batch, score(batch))
        for path in TWO_UNIFORM.paths():
            assert sampler.distribution(path)["sigma"] >= 0.05

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            CrossEntropySampler(TWO_UNIFORM, elite_frac=0.0)
        with pytest.raises(ValueError):
            CrossEntropySampler(TWO_UNIFORM, smoothing=1.5)


class TestBanditAllocation:
    RATES = {"late": 0.15, "camera_only": 0.8, "lidar_only": 0.3, "consistency_gated": 0.1}

    def _drive(self, sampler, rounds: int, batch: int) -> None:
        rng = np.random.default_rng(42)
        for _ in range(rounds):
            proposed = sampler.propose(batch)
            scores = [
                float(rng.uniform() < self.RATES[a["fusion.policy"]]) for a in proposed
            ]
            sampler.observe(proposed, scores)

    @pytest.mark.parametrize("mode", ["ucb", "thompson"])
    def test_concentrates_budget_on_best_arm(self, mode):
        sampler = BanditSampler(CHOICE_ONLY, seed=9, mode=mode)
        self._drive(sampler, rounds=30, batch=8)
        stats = sampler.arm_statistics()
        pulls = {tuple(s["arm"].items())[0][1]: s["pulls"] for s in stats}
        assert sum(pulls.values()) == 240
        # The 0.8-rate arm must dominate the allocation.
        assert pulls["camera_only"] == max(pulls.values())
        assert pulls["camera_only"] > 240 / 2

    def test_every_arm_gets_explored_first(self):
        sampler = BanditSampler(CHOICE_ONLY, seed=1, mode="ucb")
        proposed = sampler.propose(4)
        policies = {a["fusion.policy"] for a in proposed}
        assert policies == set(self.RATES)  # all four arms before any repeat

    def test_continuous_space_is_binned(self):
        sampler = BanditSampler(TWO_UNIFORM, seed=2, mode="ucb", bins=4)
        assert sampler.n_arms == 4
        proposed = sampler.propose(4)
        units = _units_of(TWO_UNIFORM, proposed)
        # One proposal per stratum of the first axis.
        assert sorted((units[:, 0] * 4).astype(int).tolist()) == [0, 1, 2, 3]

    def test_mixed_space_arms_are_choice_product(self):
        sampler = BanditSampler(MIXED, seed=0)
        assert sampler.n_arms == 3
        assert sampler.arm_label(0) == {"fusion.policy": "late"}

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            BanditSampler(CHOICE_ONLY, mode="greedy")


class TestProtocolAndState:
    @pytest.mark.parametrize("name", ["random", "ce", "ucb", "thompson"])
    def test_state_round_trip_is_bit_identical(self, name):
        sampler = build_search_sampler(name, MIXED, seed=13)
        batch = sampler.propose(6)
        sampler.observe(batch, [0.1, 0.9, 0.4, 0.4, 0.0, 1.0])
        mid_propose = sampler.propose(6)  # leave a pending batch in the state
        state = sampler.state_dict()
        encoded = json.dumps(state, sort_keys=True)

        clone = build_search_sampler(name, MIXED, seed=999)
        clone.load_state_dict(json.loads(encoded))
        assert json.dumps(clone.state_dict(), sort_keys=True) == encoded
        # Observing the pending batch then proposing must match exactly.
        scores = [0.5, 0.2, 0.8, 0.3, 0.6, 0.1]
        sampler.observe(mid_propose, scores)
        clone.observe(mid_propose, scores)
        assert sampler.propose(4) == clone.propose(4)

    @pytest.mark.parametrize("name", ["random", "ce", "ucb", "thompson"])
    def test_observe_before_propose_raises(self, name):
        sampler = build_search_sampler(name, MIXED, seed=0)
        with pytest.raises(RuntimeError):
            sampler.observe([], [])

    @pytest.mark.parametrize("name", ["random", "ce", "ucb", "thompson"])
    def test_batch_length_mismatch_raises(self, name):
        sampler = build_search_sampler(name, MIXED, seed=0)
        batch = sampler.propose(4)
        with pytest.raises(ValueError):
            sampler.observe(batch, [0.5])

    def test_bandit_checkpoint_mode_mismatch_raises(self):
        ucb = build_search_sampler("ucb", CHOICE_ONLY, seed=0)
        thompson = build_search_sampler("thompson", CHOICE_ONLY, seed=0)
        with pytest.raises(ValueError):
            thompson.load_state_dict(ucb.state_dict())

    def test_registry_lists_all_samplers(self):
        assert list_search_samplers() == ["ce", "random", "thompson", "ucb"]

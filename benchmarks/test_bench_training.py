"""Micro-benchmark: serial vs. parallel safety-dataset collection.

Times the same scripted-attack collection grid through the
:class:`~repro.runtime.executor.SerialExecutor` and a 4-worker
:class:`~repro.runtime.executor.ParallelExecutor`, asserts the assembled
datasets are bit-identical (the training pipeline's core invariant), and
records the wall-clock speedup.  The >= 2x speedup assertion only applies
where the hardware can deliver it (>= 4 usable CPUs); on smaller machines the
speedup is still measured and printed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.training import collect_safety_dataset
from repro.runtime import ParallelExecutor, SerialExecutor, available_cpus

_N_WORKERS = 4
#: The DS-2 disappear grid at 3 repeats: 36 seeded scripted-attack simulations.
_DELTAS = (55.0, 48.0, 42.0, 38.0)
_KS = (10, 16, 22)
_REPEATS = 3


def _collect(executor) -> "np.ndarray":
    return collect_safety_dataset(
        scenario_id="DS-2",
        vector=AttackVector.DISAPPEAR,
        delta_inject_values=_DELTAS,
        k_values=_KS,
        seed=1234,
        repeats=_REPEATS,
        executor=executor,
    )


def test_bench_parallel_collection_speedup():
    # Best-of-two timings for both arms damp transient noisy-neighbor stalls
    # on shared runners; the datasets of the last execution of each arm are
    # compared for identity.
    serial_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serial = _collect(SerialExecutor())
        serial_s = min(serial_s, time.perf_counter() - start)

    with ParallelExecutor(max_workers=_N_WORKERS) as executor:
        # Warm the pool outside the timed region so the measurement reflects
        # steady-state throughput, not process start-up.
        executor.map(abs, range(_N_WORKERS))
        parallel_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            parallel = _collect(executor)
            parallel_s = min(parallel_s, time.perf_counter() - start)

    np.testing.assert_array_equal(serial.inputs, parallel.inputs)
    np.testing.assert_array_equal(serial.targets, parallel.targets)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\n{serial.n_samples}-sample collection: serial {serial_s:.2f}s vs "
        f"parallel({_N_WORKERS}) {parallel_s:.2f}s -> speedup {speedup:.2f}x "
        f"on {available_cpus()} usable CPUs"
    )
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if available_cpus() < _N_WORKERS:
        pytest.skip(
            f"only {available_cpus()} usable CPUs; speedup measured at {speedup:.2f}x"
        )
    elif strict:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {_N_WORKERS} workers, measured {speedup:.2f}x"
        )

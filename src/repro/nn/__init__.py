"""A small, pure-NumPy feed-forward neural network substrate.

The paper's safety hijacker is a fully-connected network with three hidden
layers (100, 100, 50 neurons), ReLU activations, dropout 0.1, trained with the
Adam optimizer on an L2 loss (paper §IV-B).  This package implements exactly
that stack from scratch: dense layers, activations, dropout, losses, Adam/SGD
optimizers, and a mini-batch training loop with train/validation splitting.
"""

from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.losses import MeanSquaredError
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import SGD, Adam
from repro.nn.serialization import (
    load_network,
    network_from_spec,
    network_to_spec,
    save_network,
)
from repro.nn.training import TrainingHistory, TrainingResult, train_network, train_validation_split

__all__ = [
    "Dense",
    "Dropout",
    "ReLU",
    "MeanSquaredError",
    "FeedForwardNetwork",
    "load_network",
    "network_from_spec",
    "network_to_spec",
    "save_network",
    "Adam",
    "SGD",
    "TrainingHistory",
    "TrainingResult",
    "train_network",
    "train_validation_split",
]

"""Tests for the ``repro-campaign`` console entry point."""

import pytest

from repro.experiments.campaign import clear_caches
from repro.runtime.cli import build_parser, main


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCli:
    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario_id in ("DS-1", "DS-5", "DS-6", "DS-7"):
            assert scenario_id in out

    def test_single_campaign_without_attacker(self, capsys):
        code = main(
            ["--scenario", "DS-1", "--attacker", "none", "--runs", "2", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DS-1" in out

    def test_unknown_scenario_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-99", "--runs", "1"])

    def test_unknown_attacker_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-1", "--attacker", "quantum", "--runs", "1"])

    def test_unknown_vector_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-1", "--vector", "teleport", "--runs", "1"])

    def test_cache_dir_flag_routes_artifacts_to_disk(self, tmp_path, capsys):
        code = main(
            [
                "--scenario", "DS-1", "--attacker", "none",
                "--runs", "1", "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert list(tmp_path.glob("campaigns/*.pkl"))
        # Restore the caches' default (env-based) directory for other tests.
        from repro.experiments.campaign import set_cache_dir

        set_cache_dir(None)

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.runs == 10
        assert args.jobs == 0
        assert args.scenario is None

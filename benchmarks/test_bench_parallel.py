"""Micro-benchmark: serial vs. parallel campaign execution.

Times the same 30-run, attack-free DS-1 campaign through the
:class:`~repro.runtime.executor.SerialExecutor` and a 4-worker
:class:`~repro.runtime.executor.ParallelExecutor`, asserts the results are
element-wise identical (the runtime's core invariant), and records the
wall-clock speedup.  The >= 2x speedup assertion only applies where the
hardware can deliver it (>= 4 usable CPUs); on smaller machines the speedup
is still measured and printed.
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaign
from repro.experiments.results import RunResult
from repro.runtime import ParallelExecutor, SerialExecutor, available_cpus

_N_RUNS = 30
_N_WORKERS = 4


def _campaign_config() -> CampaignConfig:
    return CampaignConfig(
        campaign_id="bench-parallel-ds1",
        scenario_id="DS-1",
        attacker=AttackerKind.NONE,
        n_runs=_N_RUNS,
        seed=424242,
    )


def _assert_runs_identical(a: RunResult, b: RunResult) -> None:
    for field in RunResult.__dataclass_fields__:
        left, right = getattr(a, field), getattr(b, field)
        if isinstance(left, float) and math.isnan(left):
            assert isinstance(right, float) and math.isnan(right), field
        else:
            assert left == right, (field, left, right)


def test_bench_parallel_campaign_speedup():
    config = _campaign_config()

    # Best-of-two timings for both arms damp transient noisy-neighbor stalls
    # on shared runners; the results of the last execution of each arm are
    # compared for identity.
    serial_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serial = run_campaign(config, use_cache=False, executor=SerialExecutor())
        serial_s = min(serial_s, time.perf_counter() - start)

    with ParallelExecutor(max_workers=_N_WORKERS) as executor:
        # Warm the pool outside the timed region so the measurement reflects
        # steady-state throughput, not process start-up.
        executor.map(abs, range(_N_WORKERS))
        parallel_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            parallel = run_campaign(config, use_cache=False, executor=executor)
            parallel_s = min(parallel_s, time.perf_counter() - start)

    assert serial.n_runs == parallel.n_runs == _N_RUNS
    for left, right in zip(serial.runs, parallel.runs):
        _assert_runs_identical(left, right)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nserial {serial_s:.2f}s vs parallel({_N_WORKERS}) {parallel_s:.2f}s "
        f"-> speedup {speedup:.2f}x on {available_cpus()} usable CPUs"
    )
    # REPRO_BENCH_STRICT=0 demotes the speedup bound to a recorded metric —
    # shared CI runners have noisy neighbors that can stall the parallel arm
    # through no fault of the code.  Result identity is always asserted.
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if available_cpus() < _N_WORKERS:
        pytest.skip(
            f"only {available_cpus()} usable CPUs; speedup measured at {speedup:.2f}x"
        )
    elif strict:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {_N_WORKERS} workers, measured {speedup:.2f}x"
        )

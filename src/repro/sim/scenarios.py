"""The five driving scenarios of paper §V-C (Fig. 4).

* **DS-1** - the EV follows a target vehicle (TV) in its lane; the TV cruises
  at 25 kph and starts 60 m ahead.  Used for `Disappear` / `Move_Out` attacks
  on a vehicle.
* **DS-2** - a pedestrian illegally crosses the street ahead of the EV.  Used
  for `Disappear` / `Move_Out` attacks on a pedestrian.
* **DS-3** - a target vehicle is parked in the parking lane.  Used for the
  `Move_In` attack on a vehicle.
* **DS-4** - a pedestrian walks longitudinally towards the EV in the parking
  lane for 5 m and then stands still.  Used for the `Move_In` attack on a
  pedestrian.
* **DS-5** - the EV follows a target vehicle among several other vehicles with
  random trajectories; the baseline random attack is evaluated here.

Each scenario builder accepts a :class:`ScenarioVariation` that randomizes the
initial conditions (speeds, gaps, pedestrian timing) so that campaigns of
independent runs can be generated from seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.geometry import Vec2
from repro.sim.actors import ActorDimensions, ActorKind, EgoVehicle, ScriptedActor
from repro.sim.road import Road
from repro.sim.waypoints import Waypoint, WaypointRoute
from repro.sim.world import World
from repro.utils.units import kph_to_mps

__all__ = [
    "ScenarioVariation",
    "DrivingScenario",
    "build_scenario",
    "list_scenario_ids",
]

#: Longitudinal coordinate (m) at which the ego vehicle starts in every scenario.
_EGO_START_X = 0.0
#: Default cruise speed of the EV (paper: 45 kph unless otherwise specified).
_DEFAULT_CRUISE_KPH = 45.0


@dataclass(frozen=True)
class ScenarioVariation:
    """Per-run randomization of a scenario's initial conditions."""

    ego_speed_scale: float = 1.0
    lead_gap_offset_m: float = 0.0
    lead_speed_offset_mps: float = 0.0
    pedestrian_delay_s: float = 0.0
    pedestrian_speed_scale: float = 1.0
    npc_seed: int = 0

    @staticmethod
    def sample(rng: np.random.Generator) -> "ScenarioVariation":
        """Draw a random variation (used by experiment campaigns)."""
        return ScenarioVariation(
            ego_speed_scale=float(rng.uniform(0.95, 1.05)),
            lead_gap_offset_m=float(rng.uniform(-8.0, 8.0)),
            lead_speed_offset_mps=float(rng.uniform(-0.8, 0.8)),
            pedestrian_delay_s=float(rng.uniform(0.0, 1.5)),
            pedestrian_speed_scale=float(rng.uniform(0.9, 1.15)),
            npc_seed=int(rng.integers(0, 2**31 - 1)),
        )

    @staticmethod
    def nominal() -> "ScenarioVariation":
        """The unperturbed scenario (useful for golden-run tests)."""
        return ScenarioVariation()


@dataclass
class DrivingScenario:
    """A fully-instantiated scenario ready to be simulated."""

    scenario_id: str
    description: str
    world: World
    road: Road
    cruise_speed_mps: float
    #: Actor id of the intended attack target (the TV or the pedestrian).
    target_actor_id: Optional[int]
    #: Kind of the intended attack target.
    target_kind: Optional[ActorKind]
    duration_s: float
    #: Additional scenario metadata (initial gaps etc.), for logging.
    metadata: Dict[str, float] = field(default_factory=dict)


def _make_ego(speed_mps: float) -> EgoVehicle:
    return EgoVehicle(position=Vec2(_EGO_START_X, 0.0), speed_mps=speed_mps)


def _build_ds1(variation: ScenarioVariation) -> DrivingScenario:
    """DS-1: EV follows a constant-speed target vehicle in the ego lane."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    tv_speed = max(1.0, kph_to_mps(25.0) + variation.lead_speed_offset_mps)
    start_gap = 60.0 + variation.lead_gap_offset_m
    ego = _make_ego(speed_mps=cruise)
    tv_start = Vec2(_EGO_START_X + start_gap, 0.0)
    tv_route = WaypointRoute.straight_line(
        start=tv_start, end=Vec2(tv_start.x + 1500.0, 0.0), speed_mps=tv_speed
    )
    target = ScriptedActor(ActorKind.VEHICLE, tv_route, ActorDimensions.suv(), name="target-vehicle")
    world = World(ego=ego, actors=[target], road=road)
    return DrivingScenario(
        scenario_id="DS-1",
        description="EV follows a target vehicle cruising at 25 kph, starting 60 m ahead",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=target.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=35.0,
        metadata={"initial_gap_m": start_gap, "tv_speed_mps": tv_speed},
    )


def _build_ds2(variation: ScenarioVariation) -> DrivingScenario:
    """DS-2: a pedestrian illegally crosses the street ahead of the EV."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    crossing_x = 85.0 + variation.lead_gap_offset_m
    walk_speed = 1.4 * variation.pedestrian_speed_scale
    start_y, end_y = -6.0, 6.0
    route = WaypointRoute(
        [
            Waypoint(position=Vec2(crossing_x, start_y), speed_mps=0.0,
                     hold_s=variation.pedestrian_delay_s),
            Waypoint(position=Vec2(crossing_x, end_y), speed_mps=walk_speed),
        ]
    )
    pedestrian = ScriptedActor(ActorKind.PEDESTRIAN, route, name="crossing-pedestrian")
    world = World(ego=ego, actors=[pedestrian], road=road)
    return DrivingScenario(
        scenario_id="DS-2",
        description="A pedestrian illegally crosses the street in front of the EV",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=pedestrian.actor_id,
        target_kind=ActorKind.PEDESTRIAN,
        duration_s=25.0,
        metadata={"crossing_x_m": crossing_x, "walk_speed_mps": walk_speed},
    )


def _build_ds3(variation: ScenarioVariation) -> DrivingScenario:
    """DS-3: a target vehicle is parked in the parking lane."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    parked_x = 110.0 + variation.lead_gap_offset_m
    parked_y = road.lane("parking").center_y
    parked = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.stationary(Vec2(parked_x, parked_y)),
        ActorDimensions.sedan(),
        name="parked-vehicle",
    )
    world = World(ego=ego, actors=[parked], road=road)
    return DrivingScenario(
        scenario_id="DS-3",
        description="A target vehicle is parked on the side of the street in the parking lane",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=parked.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=20.0,
        metadata={"parked_x_m": parked_x},
    )


def _build_ds4(variation: ScenarioVariation) -> DrivingScenario:
    """DS-4: a pedestrian walks towards the EV in the parking lane, then stops."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    walk_speed = 1.4 * variation.pedestrian_speed_scale
    ped_start_x = 120.0 + variation.lead_gap_offset_m
    ped_y = road.lane("parking").center_y + 0.8
    route = WaypointRoute(
        [
            Waypoint(position=Vec2(ped_start_x, ped_y), speed_mps=0.0,
                     hold_s=variation.pedestrian_delay_s),
            Waypoint(position=Vec2(ped_start_x - 5.0, ped_y), speed_mps=walk_speed,
                     hold_s=1e6),
        ]
    )
    pedestrian = ScriptedActor(ActorKind.PEDESTRIAN, route, name="walking-pedestrian")
    world = World(ego=ego, actors=[pedestrian], road=road)
    return DrivingScenario(
        scenario_id="DS-4",
        description=(
            "A pedestrian walks longitudinally towards the EV in the parking lane "
            "for 5 m and then stands still"
        ),
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=pedestrian.actor_id,
        target_kind=ActorKind.PEDESTRIAN,
        duration_s=20.0,
        metadata={"ped_start_x_m": ped_start_x},
    )


def _build_ds5(variation: ScenarioVariation) -> DrivingScenario:
    """DS-5: the EV follows a target vehicle among other random-traffic vehicles."""
    road = Road()
    rng = np.random.default_rng(variation.npc_seed)
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    tv_speed = max(1.0, kph_to_mps(25.0) + variation.lead_speed_offset_mps)
    start_gap = 60.0 + variation.lead_gap_offset_m
    tv_start = Vec2(_EGO_START_X + start_gap, 0.0)
    target = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.straight_line(tv_start, Vec2(tv_start.x + 1500.0, 0.0), tv_speed),
        ActorDimensions.suv(),
        name="target-vehicle",
    )
    actors: List[ScriptedActor] = [target]
    opposite_y = road.lane("opposite").center_y
    n_npcs = int(rng.integers(2, 5))
    for npc_index in range(n_npcs):
        npc_speed = float(rng.uniform(kph_to_mps(20.0), kph_to_mps(50.0)))
        npc_start_x = float(rng.uniform(80.0, 400.0))
        # Oncoming traffic in the opposite lane drives towards the EV.
        npc_route = WaypointRoute.straight_line(
            start=Vec2(npc_start_x, opposite_y),
            end=Vec2(npc_start_x - 1500.0, opposite_y),
            speed_mps=npc_speed,
        )
        actors.append(
            ScriptedActor(ActorKind.VEHICLE, npc_route, name=f"npc-vehicle-{npc_index}")
        )
    # Background traffic in the ego lane far ahead of the target vehicle and
    # behind the EV (paper: "as well as in front or behind").  These actors
    # rarely interact with the EV but are legitimate targets for the random
    # baseline attack.
    far_ahead_speed = kph_to_mps(40.0)
    actors.append(
        ScriptedActor(
            ActorKind.VEHICLE,
            WaypointRoute.straight_line(
                Vec2(tv_start.x + 220.0, 0.0), Vec2(tv_start.x + 1700.0, 0.0), far_ahead_speed
            ),
            name="npc-vehicle-far-ahead",
        )
    )
    actors.append(
        ScriptedActor(
            ActorKind.VEHICLE,
            WaypointRoute.straight_line(
                Vec2(_EGO_START_X - 40.0, 0.0), Vec2(_EGO_START_X + 1400.0, 0.0), kph_to_mps(20.0)
            ),
            name="npc-vehicle-behind",
        )
    )
    world = World(ego=ego, actors=actors, road=road)
    return DrivingScenario(
        scenario_id="DS-5",
        description="EV follows a target vehicle among other vehicles with random trajectories",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=target.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=35.0,
        metadata={"n_npcs": float(n_npcs), "initial_gap_m": start_gap},
    )


_BUILDERS: Dict[str, Callable[[ScenarioVariation], DrivingScenario]] = {
    "DS-1": _build_ds1,
    "DS-2": _build_ds2,
    "DS-3": _build_ds3,
    "DS-4": _build_ds4,
    "DS-5": _build_ds5,
}


def list_scenario_ids() -> List[str]:
    """The identifiers of all available driving scenarios."""
    return sorted(_BUILDERS)


def build_scenario(
    scenario_id: str, variation: ScenarioVariation | None = None
) -> DrivingScenario:
    """Instantiate a driving scenario by id with the given variation."""
    if scenario_id not in _BUILDERS:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {list_scenario_ids()}"
        )
    variation = variation or ScenarioVariation.nominal()
    return _BUILDERS[scenario_id](variation)

"""Paper Table II: attack-campaign summary (RoboTack vs the random baseline).

For every <driving scenario, attack vector> campaign the benchmark reports the
median attack window K, the emergency-braking rate, and the crash rate, next
to the paper's values, plus the §I headline comparisons (RoboTack vs random,
pedestrians vs vehicles).
"""

from repro.experiments.metrics import summarize_campaign
from repro.experiments.tables import headline_findings, table2_rows

from .conftest import paper_reference_table2


def test_table2_attack_summary(benchmark, robotack_campaigns, random_baseline_campaign):
    campaigns = list(robotack_campaigns) + [random_baseline_campaign]
    rows = benchmark.pedantic(table2_rows, args=(campaigns,), rounds=1, iterations=1)
    findings = headline_findings(robotack_campaigns, random_baseline_campaign)

    paper = {row[0]: row[1:] for row in paper_reference_table2()}
    print("\n=== Table II: smart malware attack summary (reproduced vs paper) ===")
    header = (
        f"{'campaign':<26s} {'K':>5s} {'EB rate':>9s} {'crash rate':>11s}"
        f"   {'paper K':>8s} {'paper EB':>9s} {'paper crash':>12s}"
    )
    print(header)
    for row in rows:
        crash = f"{row.crash_rate:.1%}" if row.crash_rate is not None else "    —"
        paper_k, paper_eb, paper_crash = paper.get(row.campaign_id, (float("nan"),) * 3)
        paper_crash_text = f"{paper_crash:.1%}" if paper_crash == paper_crash else "    —"
        print(
            f"{row.campaign_id:<26s} {row.median_k:5.1f} {row.emergency_braking_rate:9.1%} "
            f"{crash:>11s}   {paper_k:8.1f} {paper_eb:9.1%} {paper_crash_text:>12s}"
        )

    print("\n--- headline findings (§I) ---")
    print(
        f"RoboTack EB rate          : {findings['robotack_eb_rate']:.1%} "
        f"(paper 75.2%)   random baseline: {findings['random_eb_rate']:.1%} (paper 2.3%)"
    )
    print(
        f"RoboTack crash rate       : {findings['robotack_crash_rate']:.1%} "
        f"(paper 52.6%)   random baseline: {findings['random_crash_rate']:.1%} (paper 0%)"
    )
    ratio = findings["eb_improvement_ratio"]
    ratio_text = f"{ratio:.1f}x" if ratio != float("inf") else "inf"
    print(f"EB improvement over random: {ratio_text} (paper 33x)")
    print(
        f"Pedestrian vs vehicle success: {findings['pedestrian_success_rate']:.1%} vs "
        f"{findings['vehicle_success_rate']:.1%} (paper 84.1% vs 31.7%)"
    )

    # --- shape assertions (who wins, roughly by how much) ---
    by_id = {row.campaign_id: row for row in rows}
    random_row = by_id["DS-5-Baseline-Random"]
    # RoboTack dominates the random baseline on emergency braking and crashes.
    assert findings["robotack_eb_rate"] > findings["random_eb_rate"]
    assert findings["robotack_crash_rate"] > findings["random_crash_rate"]
    assert random_row.crash_rate <= 0.2
    # Pedestrian campaigns are more successful than vehicle campaigns.
    assert findings["pedestrian_success_rate"] > findings["vehicle_success_rate"]
    # Pedestrian attack windows are shorter than vehicle attack windows.
    assert by_id["DS-2-Disappear-R"].median_k < by_id["DS-1-Disappear-R"].median_k
    assert by_id["DS-4-Move_In-R"].median_k <= by_id["DS-3-Move_In-R"].median_k
    # Move_In campaigns force emergency braking but have no crash column.
    assert by_id["DS-3-Move_In-R"].crash_rate is None
    assert by_id["DS-3-Move_In-R"].emergency_braking_rate > 0.5
    # The pedestrian-crossing campaigns achieve high hazard rates.
    assert by_id["DS-2-Disappear-R"].emergency_braking_rate > 0.5

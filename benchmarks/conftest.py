"""Shared campaign fixtures for the benchmark harness.

Every table and figure of the paper's evaluation is regenerated from the same
set of seeded campaigns; these are executed once per pytest session (and cached
by the campaign runner), so the individual benchmarks only time the analysis /
aggregation step and print the reproduced numbers.

The number of runs per campaign is controlled by the ``REPRO_BENCH_RUNS``
environment variable (default 10).  The paper uses 130-200 runs per campaign;
increase the variable for tighter estimates at the cost of runtime.
``REPRO_BENCH_JOBS`` fans the campaign runs out over worker processes
(0/1 = serial, -1 = all CPUs); results are identical either way.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core.attack_vectors import AttackVector
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    PredictorKind,
    baseline_random_campaign,
    run_campaign,
    run_campaigns,
    standard_campaigns,
)
from repro.experiments.results import CampaignResult

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "10"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2020"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))


def _run_all(configs) -> List[CampaignResult]:
    return run_campaigns(configs, executor=BENCH_JOBS)


@pytest.fixture(scope="session")
def robotack_campaigns() -> List[CampaignResult]:
    """The six RoboTack campaigns of paper Table II (Fig. 6 'R')."""
    return _run_all(standard_campaigns(n_runs=BENCH_RUNS, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def no_sh_campaigns() -> List[CampaignResult]:
    """The same six campaigns without the safety hijacker (Fig. 6 'R w/o SH')."""
    return _run_all(
        standard_campaigns(
            n_runs=BENCH_RUNS, seed=BENCH_SEED, attacker=AttackerKind.ROBOTACK_NO_SH
        )
    )


@pytest.fixture(scope="session")
def random_baseline_campaign() -> CampaignResult:
    """The DS-5 Baseline-Random campaign of paper Table II."""
    return run_campaign(
        baseline_random_campaign(n_runs=BENCH_RUNS, seed=BENCH_SEED), executor=BENCH_JOBS
    )


@pytest.fixture(scope="session")
def kinematic_campaign() -> CampaignResult:
    """DS-2 Disappear with the closed-form kinematic oracle (NN ablation)."""
    config = CampaignConfig(
        campaign_id="DS-2-Disappear-R-kinematic",
        scenario_id="DS-2",
        attacker=AttackerKind.ROBOTACK,
        vector=AttackVector.DISAPPEAR,
        n_runs=BENCH_RUNS,
        seed=BENCH_SEED,
        predictor=PredictorKind.KINEMATIC,
    )
    return run_campaign(config, executor=BENCH_JOBS)


@pytest.fixture(scope="session")
def campaigns_by_id(
    robotack_campaigns, no_sh_campaigns, random_baseline_campaign
) -> Dict[str, CampaignResult]:
    """Lookup table over every campaign used by the benchmarks."""
    table: Dict[str, CampaignResult] = {c.campaign_id: c for c in robotack_campaigns}
    table.update({c.campaign_id: c for c in no_sh_campaigns})
    table[random_baseline_campaign.campaign_id] = random_baseline_campaign
    return table


def paper_reference_table2() -> List[Tuple[str, float, float, float]]:
    """Paper Table II reference values: (campaign, K, EB rate, crash rate)."""
    return [
        ("DS-1-Disappear-R", 48, 0.535, 0.317),
        ("DS-2-Disappear-R", 14, 0.944, 0.826),
        ("DS-1-Move_Out-R", 65, 0.373, 0.173),
        ("DS-2-Move_Out-R", 32, 0.978, 0.841),
        ("DS-3-Move_In-R", 48, 0.946, float("nan")),
        ("DS-4-Move_In-R", 24, 0.785, float("nan")),
        ("DS-5-Baseline-Random", float("nan"), 0.023, 0.0),
    ]

"""Tests for the runtime registry and artifact cache."""

import enum
from dataclasses import dataclass

import pytest

from repro.runtime.cache import ArtifactCache, default_cache_dir, encode_key
from repro.runtime.registry import Registry, RegistryError


class TestRegistry:
    def test_decorator_registration_and_lookup(self):
        registry: Registry = Registry("widget")

        @registry.register("w-1", description="the first widget")
        def build():
            return 41

        assert "w-1" in registry
        assert registry.get("w-1") is build
        assert registry.get("w-1")() == 41
        assert registry.description("w-1") == "the first widget"

    def test_direct_registration(self):
        registry: Registry = Registry("widget")
        registry.register("w-2", lambda: 2)
        assert registry.get("w-2")() == 2

    def test_description_falls_back_to_docstring(self):
        registry: Registry = Registry("widget")

        @registry.register("w-3")
        def build():
            """Builds the third widget.

            More detail that should not appear in the one-liner.
            """

        assert registry.description("w-3") == "Builds the third widget."

    def test_duplicate_key_rejected(self):
        registry: Registry = Registry("widget")
        registry.register("w-1", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("w-1", lambda: 2)

    def test_overwrite_allows_replacement(self):
        registry: Registry = Registry("widget")
        registry.register("w-1", lambda: 1)
        registry.register("w-1", lambda: 2, overwrite=True)
        assert registry.get("w-1")() == 2

    def test_unknown_key_error_lists_available(self):
        registry: Registry = Registry("widget")
        registry.register("w-1", lambda: 1)
        with pytest.raises(RegistryError, match="w-1"):
            registry.get("nope")

    def test_unknown_key_is_a_keyerror(self):
        # RegistryError subclasses KeyError so existing except-clauses keep working.
        registry: Registry = Registry("widget")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_invalid_keys_rejected(self):
        registry: Registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", lambda: 1)
        with pytest.raises(RegistryError):
            registry.register(3, lambda: 1)  # type: ignore[arg-type]

    def test_keys_sorted_and_iteration(self):
        registry: Registry = Registry("widget")
        registry.register("b", lambda: 1)
        registry.register("a", lambda: 2)
        assert registry.keys() == ["a", "b"]
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2

    def test_unregister(self):
        registry: Registry = Registry("widget")
        registry.register("w-1", lambda: 1)
        registry.unregister("w-1")
        assert "w-1" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("w-1")


class _Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclass(frozen=True)
class _Spec:
    name: str
    count: int


class TestEncodeKey:
    def test_primitives_and_containers(self):
        assert encode_key(("a", 1, None, True)) == encode_key(("a", 1, None, True))
        assert encode_key((1,)) != encode_key((2,))
        assert encode_key([1, 2]) != encode_key((1, 2))

    def test_enums_encode_by_name_not_identity(self):
        assert encode_key(_Color.RED) == "_Color.RED"
        assert encode_key(_Color.RED) != encode_key(_Color.BLUE)

    def test_dataclasses_encode_by_field_values(self):
        assert encode_key(_Spec("x", 1)) == encode_key(_Spec("x", 1))
        assert encode_key(_Spec("x", 1)) != encode_key(_Spec("x", 2))

    def test_unhashable_key_types_rejected(self):
        with pytest.raises(TypeError):
            encode_key(object())


class TestArtifactCache:
    def test_memory_roundtrip_and_identity(self):
        cache = ArtifactCache("test")
        value = {"weights": [1.0, 2.0]}
        cache.put(("a", 1), value)
        assert cache.get(("a", 1)) is value
        assert ("a", 1) in cache
        assert cache.get(("missing",)) is None
        assert cache.get(("missing",), default=7) == 7

    def test_get_or_create_builds_once(self):
        cache = ArtifactCache("test")
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        assert cache.get_or_create("k", factory) == "artifact"
        assert cache.get_or_create("k", factory) == "artifact"
        assert len(calls) == 1

    def test_clear(self):
        cache = ArtifactCache("test")
        cache.put("k", 1)
        cache.clear()
        assert "k" not in cache

    def test_disk_backing_survives_memory_clear(self, tmp_path):
        cache = ArtifactCache("predictors", cache_dir=tmp_path)
        cache.put(("DS-1", _Color.RED), [1, 2, 3])
        cache.clear()  # drop the memory layer only
        assert cache.get(("DS-1", _Color.RED)) == [1, 2, 3]

    def test_disk_backing_shared_between_instances(self, tmp_path):
        # Simulates two processes pointing at the same cache directory.
        writer = ArtifactCache("campaigns", cache_dir=tmp_path)
        writer.put("key", {"runs": 30})
        reader = ArtifactCache("campaigns", cache_dir=tmp_path)
        assert reader.get("key") == {"runs": 30}

    def test_disk_clear_removes_files(self, tmp_path):
        cache = ArtifactCache("test", cache_dir=tmp_path)
        cache.put("k", 1)
        cache.clear(disk=True)
        assert cache.get("k") is None
        assert not list((tmp_path / "test").glob("*.pkl"))

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache("test", cache_dir=tmp_path)
        cache.put("k", 1)
        cache.clear()
        for path in (tmp_path / "test").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        assert cache.get("k") is None

    def test_corrupt_disk_entry_is_quarantined_and_rebuilt(self, tmp_path, caplog):
        cache = ArtifactCache("test", cache_dir=tmp_path)
        cache.put("k", 1)
        cache.clear()
        (corrupted,) = (tmp_path / "test").glob("*.pkl")
        corrupted.write_bytes(b"not a pickle")
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            assert cache.get("k") is None
        # The doomed entry is moved aside (kept for triage), not retried.
        assert not corrupted.exists()
        assert corrupted.with_name(corrupted.name + ".corrupt").exists()
        assert any(
            "quarantined corrupt entry" in record.getMessage()
            for record in caplog.records
        )
        # A later get_or_create misses cleanly and rebuilds through the factory.
        assert cache.get_or_create("k", lambda: 2) == 2
        cache.clear()
        assert cache.get("k") == 2

    def test_env_var_enables_disk_layer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path
        cache = ArtifactCache("envtest")
        cache.put("k", "v")
        cache.clear()
        assert cache.get("k") == "v"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() is None

"""Simulation event bookkeeping.

The evaluation in the paper counts two kinds of safety hazards per run:

* **forced emergency braking** (EB) -- read directly from the ADS planner;
* **accidents** -- a ground-truth safety potential below 4 m between the start
  of the attack and the end of the run (paper §VI-D), or a physical collision.

The :class:`EventLog` records those events together with the per-step safety
potential traces needed to regenerate Fig. 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EventKind", "SimulationEvent", "EventLog"]


class EventKind(enum.Enum):
    """Types of events recorded during a run."""

    EMERGENCY_BRAKE = "emergency_brake"
    COLLISION = "collision"
    ATTACK_STARTED = "attack_started"
    ATTACK_ENDED = "attack_ended"
    SIMULATION_HALTED = "simulation_halted"


@dataclass(frozen=True)
class SimulationEvent:
    """A single timestamped event."""

    kind: EventKind
    time_s: float
    step_index: int
    details: Dict[str, float] = field(default_factory=dict)


class EventLog:
    """Collects events and per-step safety traces for one simulation run."""

    def __init__(self) -> None:
        self.events: List[SimulationEvent] = []
        #: Ground-truth safety potential (to the attack target when known,
        #: otherwise to the nearest in-path actor) per step.
        self.true_delta_trace: List[float] = []
        #: Safety potential as perceived by the ADS per step.
        self.perceived_delta_trace: List[float] = []
        #: Ego speed per step.
        self.ego_speed_trace: List[float] = []

    def record(self, event: SimulationEvent) -> None:
        """Append an event."""
        self.events.append(event)

    def record_step(
        self, true_delta: float, perceived_delta: float, ego_speed: float
    ) -> None:
        """Append one step of the safety traces."""
        self.true_delta_trace.append(float(true_delta))
        self.perceived_delta_trace.append(float(perceived_delta))
        self.ego_speed_trace.append(float(ego_speed))

    def events_of_kind(self, kind: EventKind) -> List[SimulationEvent]:
        """All events of the given kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def has_event(self, kind: EventKind) -> bool:
        """Whether at least one event of the given kind was recorded."""
        return any(e.kind is kind for e in self.events)

    def first_event(self, kind: EventKind) -> Optional[SimulationEvent]:
        """The earliest event of the given kind, if any."""
        matches = self.events_of_kind(kind)
        return matches[0] if matches else None

    @property
    def emergency_braking_occurred(self) -> bool:
        return self.has_event(EventKind.EMERGENCY_BRAKE)

    @property
    def collision_occurred(self) -> bool:
        return self.has_event(EventKind.COLLISION)

    @property
    def attack_start_step(self) -> Optional[int]:
        event = self.first_event(EventKind.ATTACK_STARTED)
        return event.step_index if event else None

    def min_true_delta_after(self, step_index: int) -> float:
        """Minimum ground-truth safety potential from ``step_index`` onwards.

        This is the quantity plotted in Fig. 6 ("minimum safety potential of
        the EV measured from the start time of the attack to the end of the
        driving scenario").  Returns ``inf`` when the trace is empty.
        """
        tail = self.true_delta_trace[max(0, step_index):]
        return min(tail) if tail else float("inf")

#!/usr/bin/env python3
"""Sweep a scenario's perturbation space and mine the durable run store.

Expands a declarative :class:`~repro.sim.sweeps.ParameterSpace` — the initial
gap to the lead vehicle, the EV speed scale, and a fog-style detector
degradation — into one campaign per Latin-hypercube sample, executes the
batch with every run durably recorded in an experiment store, and then
answers a question the paper's random campaigns cannot: *how does the benign
safety margin move across the perturbation space?*

Because every run is checkpointed as it completes, interrupting this script
(Ctrl-C) loses at most the runs in flight; re-running it (or
``repro-campaign resume --store <dir>``) finishes only the missing runs and
produces statistics bit-identical to an uninterrupted execution.

Run with:  python examples/scenario_sweep.py --store /tmp/sweep-store --n 12
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaigns
from repro.experiments.store import ExperimentStore, config_hash
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import ParameterSpace, Uniform, sweep_campaigns


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", required=True, help="experiment-store root directory")
    parser.add_argument("--scenario", default="DS-1", help="scenario id to sweep")
    parser.add_argument("--n", type=int, default=12, help="Latin-hypercube sweep points")
    parser.add_argument("--runs", type=int, default=2, help="runs per sweep point")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0/1 = serial, -1 = all CPUs)",
    )
    args = parser.parse_args()

    space = ParameterSpace(
        {
            "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
            "variation.ego_speed_scale": Uniform(0.95, 1.05),
            # Fog axis: widen the detector's centre noise up to 2x.
            "detector.sigma_scale": Uniform(1.0, 2.0),
        }
    )
    base = CampaignConfig(
        campaign_id=f"{args.scenario}-sweep",
        scenario_id=args.scenario,
        attacker=AttackerKind.NONE,
        n_runs=args.runs,
        seed=2020,
        # Short benign runs keep the example quick; drop the override for
        # full-length campaigns.
        simulation=SimulationConfig(max_duration_s=8.0),
    )
    configs = sweep_campaigns(base, space, sampler="lhs", n=args.n, seed=0)

    store = ExperimentStore(args.store)
    print(f"Sweeping {len(configs)} points x {args.runs} runs into {args.store} ...")
    run_campaigns(configs, store=store, executor=args.jobs)

    print("\ngap offset |  speed scale | fog sigma | mean min-delta (m)")
    print("-" * 62)
    for config in configs:
        records = store.load_records(config_hash(config), with_traces=False)
        min_deltas = [
            r.result.min_true_delta_m
            for r in records
            if np.isfinite(r.result.min_true_delta_m)
        ]
        mean_delta = float(np.mean(min_deltas)) if min_deltas else float("nan")
        variation = config.variation
        degradation = config.detector_degradation
        print(
            f"{variation.lead_gap_offset_m:+10.2f} | {variation.ego_speed_scale:12.3f} "
            f"| {degradation.sigma_scale:9.2f} | {mean_delta:10.2f}"
        )

    print(
        f"\n{sum(1 for _ in store.iter_records())} runs durably recorded; "
        "interrupt and re-run this script (or `repro-campaign resume`) to see "
        "resume-from-checkpoint in action."
    )


if __name__ == "__main__":
    main()

"""Paper Fig. 7: K' — frames needed to shift the perceived object by Omega.

K' is the number of frames during which the trajectory hijacker actively moves
the perceived position; afterwards the faked trajectory is merely maintained.
The paper reports K' per attack vector separately for vehicles (DS-1/DS-3) and
pedestrians (DS-2/DS-4); the key shape is that pedestrians need fewer shift
frames than vehicles.
"""

from repro.experiments.figures import fig7_panels
from repro.sim.actors import ActorKind

#: Paper Fig. 7 medians per (class, vector).
PAPER_MEDIANS = {
    (ActorKind.VEHICLE, "Disappear"): 13,
    (ActorKind.VEHICLE, "Move_Out"): 6,
    (ActorKind.VEHICLE, "Move_In"): 10,
    (ActorKind.PEDESTRIAN, "Disappear"): 4,
    (ActorKind.PEDESTRIAN, "Move_Out"): 5,
    (ActorKind.PEDESTRIAN, "Move_In"): 3,
}


def test_fig7_shift_frames_k_prime(benchmark, robotack_campaigns):
    panels = benchmark.pedantic(fig7_panels, args=(robotack_campaigns,), rounds=1, iterations=1)

    print("\n=== Fig. 7: K' (shift frames) per target class and attack vector ===")
    medians = {}
    for panel in panels:
        for vector, stats in sorted(panel.k_prime_by_vector.items()):
            paper = PAPER_MEDIANS.get((panel.target_kind, vector), float("nan"))
            medians[(panel.target_kind, vector)] = stats.median
            print(
                f"{panel.target_kind.value:<11s} {vector:<10s} median K'={stats.median:5.1f} "
                f"(IQR {stats.q1:4.1f}-{stats.q3:4.1f}, n={stats.n_samples})  paper median={paper}"
            )

    kinds = {panel.target_kind for panel in panels}
    assert kinds == {ActorKind.VEHICLE, ActorKind.PEDESTRIAN}
    # Shape: the lateral-shift vectors need fewer frames on pedestrians than on
    # vehicles (vehicles are LiDAR-confirmed, so the camera trajectory must be
    # pushed further out).
    vehicle_move = [m for (kind, vec), m in medians.items() if kind is ActorKind.VEHICLE and vec != "Disappear"]
    pedestrian_move = [m for (kind, vec), m in medians.items() if kind is ActorKind.PEDESTRIAN and vec != "Disappear"]
    if vehicle_move and pedestrian_move:
        assert min(vehicle_move) >= max(pedestrian_move) - 1
    # K' never exceeds the total attack window.
    for campaign in robotack_campaigns:
        for run in campaign.launched_runs:
            assert run.k_prime_frames <= max(run.frames_perturbed, run.planned_k_frames)

"""Package metadata and console entry points.

There is no ``pyproject.toml``: metadata lives here so that the legacy
editable-install path (``pip install -e . --no-use-pep517``, which does not
need to build a wheel) works in offline environments without the ``wheel``
package.
"""

from setuptools import find_packages, setup

setup(
    name="robotack-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'ML-Driven Malware that Targets AV Safety' (DSN 2020): "
        "simulated AV stack, RoboTack attacker, and a parallel experiment runtime"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.runtime.cli:main",
        ]
    },
)

"""Training the safety hijacker (paper §IV-B).

The oracle ``f_alpha`` is trained on a dataset collected from driving
simulations: each simulation run has a predefined trigger safety potential
``delta_inject`` and an attack duration ``k`` — the attack starts as soon as
the malware's own estimate of the safety potential drops to ``delta_inject``
and is maintained for ``k`` frames.  The recorded response of the ADS provides
the label:

* for ``Move_Out`` / ``Disappear`` the label is the *ground-truth* safety
  potential ``delta_{t+k}`` at the end of the attack window (the quantity that
  determines whether an accident results);
* for ``Move_In`` the label is the minimum *perceived* safety potential over
  the attack window (the quantity that determines whether the ADS is forced
  into emergency braking), because a Move_In attack does not reduce the true
  safety potential (paper §VI-D).

The collected dataset is used to train the 100-100-50 ReLU network with Adam
on an L2 loss with a 60/40 train/validation split, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.core.attack_vectors import AttackVector
from repro.core.robotack import CameraMitmAttackerBase, RoboTackConfig
from repro.core.safety_hijacker import AttackFeatures, NeuralSafetyPredictor
from repro.core.scenario_matcher import ScenarioMatcher
from repro.nn import Adam, FeedForwardNetwork, TrainingResult, train_network
from repro.perception.pipeline import PerceptionConfig
from repro.perception.transforms import WorldObjectEstimate
from repro.sim.config import SimulationConfig
from repro.sim.road import Road
from repro.sim.scenarios import ScenarioVariation, build_scenario
from repro.sim.simulator import SimulationResult, Simulator

__all__ = [
    "ScriptedAttacker",
    "SafetyDataset",
    "collect_safety_dataset",
    "train_neural_safety_predictor",
]

#: Clamp applied to infinite perceived safety potentials ("road looks clear").
_CLEAR_ROAD_DELTA_M = 60.0


class ScriptedAttacker(CameraMitmAttackerBase):
    """Launches a fixed attack vector at a predefined trigger safety potential.

    Used only for data collection: the attack starts when the malware's own
    estimate of the safety potential first drops to ``delta_inject`` and lasts
    exactly ``k`` frames.
    """

    def __init__(
        self,
        road: Road,
        vector: AttackVector,
        delta_inject_m: float,
        k_frames: int,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        config = config or RoboTackConfig(allowed_vectors=(vector,))
        super().__init__(road, config, rng)
        self.vector = vector
        self.delta_inject_m = delta_inject_m
        self.k_frames = int(k_frames)
        self.scenario_matcher = ScenarioMatcher(
            road, self.config.matcher, allowed_vectors=(vector,)
        )

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        target = self._closest_target(estimates)
        if target is None:
            return None
        if self.scenario_matcher.match(target) is not self.vector:
            return None
        features = self._features_for(target, ego_speed_mps)
        if features.delta_m > self.delta_inject_m:
            return None
        return self.vector, self.k_frames, target, features, float("nan")


@dataclass
class SafetyDataset:
    """Attack-response dataset for one attack vector."""

    vector: AttackVector
    scenario_id: str
    #: Rows of ``[delta_t, v_rel, a_rel, k]``.
    inputs: np.ndarray
    #: Rows of ``[delta_{t+k}]`` (ground-truth or perceived, depending on vector).
    targets: np.ndarray

    def __post_init__(self) -> None:
        self.inputs = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        self.targets = np.atleast_2d(np.asarray(self.targets, dtype=float).reshape(-1, 1))
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError("inputs and targets must have the same number of rows")

    @property
    def n_samples(self) -> int:
        return int(self.inputs.shape[0])

    def merged_with(self, other: "SafetyDataset") -> "SafetyDataset":
        """Concatenate two datasets for the same attack vector."""
        if other.vector is not self.vector:
            raise ValueError("cannot merge datasets for different attack vectors")
        return SafetyDataset(
            vector=self.vector,
            scenario_id=f"{self.scenario_id}+{other.scenario_id}",
            inputs=np.vstack([self.inputs, other.inputs]),
            targets=np.vstack([self.targets, other.targets]),
        )


def _label_for_run(
    vector: AttackVector,
    result: SimulationResult,
    attacker: ScriptedAttacker,
    k_frames: int,
) -> Optional[float]:
    """Extract the training label from one simulation run, if the attack fired."""
    if not attacker.record.launched or attacker.record.start_frame is None:
        return None
    start_step = attacker.record.start_frame - 1
    if vector is AttackVector.MOVE_IN:
        # The Move_In hazard is forced emergency braking: the label is the
        # perceived safety potential at the moment the faked in-path obstacle
        # first appears to the planner (the first finite perceived delta in the
        # window).  If it never appears (the window was too short to complete
        # the shift), the attack had no effect and the label saturates at the
        # clear-road value.
        trace = result.events.perceived_delta_trace
        window = trace[start_step : start_step + k_frames + 15]
        if not window:
            return None
        for value in window:
            if value < _CLEAR_ROAD_DELTA_M:
                return float(value)
        return float(_CLEAR_ROAD_DELTA_M)
    # Move_Out / Disappear: the hazard is a collision with the real target, so
    # the label is the minimum ground-truth safety potential over the attack
    # window (plus a short settling margin, since the closest approach can fall
    # a few frames after the final perturbed frame).
    trace = result.events.true_delta_trace
    if not trace:
        return None
    window = trace[start_step : start_step + k_frames + 15]
    if not window:
        return None
    return float(min(min(window), _CLEAR_ROAD_DELTA_M))


def collect_safety_dataset(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    seed: int = 0,
    repeats: int = 1,
    simulation_config: SimulationConfig | None = None,
) -> SafetyDataset:
    """Run the scripted-attack simulations and assemble the training dataset.

    Each ``(delta_inject, k)`` grid point is simulated ``repeats`` times with
    independently randomized scenario variations.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    rng = np.random.default_rng(seed)
    simulation_config = simulation_config or SimulationConfig()
    inputs: List[List[float]] = []
    targets: List[float] = []
    grid = [
        (float(delta_inject), int(k_frames))
        for delta_inject in delta_inject_values
        for k_frames in k_values
        for _ in range(repeats)
    ]
    for delta_inject, k_frames in grid:
        variation = ScenarioVariation.sample(rng)
        scenario = build_scenario(scenario_id, variation)
        # Degraded-sensing scenarios (e.g. DS-7's fog) must train under the
        # same detector the campaign evaluates with, or the oracle is
        # calibrated for clean sensing it will never see.
        perception_config = (
            PerceptionConfig(detector=scenario.detector_config)
            if scenario.detector_config is not None
            else None
        )
        ads = AdsAgent(
            road=scenario.road,
            planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
            perception_config=perception_config,
            rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
        )
        # The attacker's own reconstruction and stealth bounds must track the
        # scenario's (possibly degraded) detector, exactly as at evaluation time.
        attacker_config = RoboTackConfig.for_detector((vector,), scenario.detector_config)
        attacker = ScriptedAttacker(
            road=scenario.road,
            vector=vector,
            delta_inject_m=delta_inject,
            k_frames=k_frames,
            config=attacker_config,
            rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
        )
        simulator = Simulator(
            scenario,
            ads,
            config=simulation_config,
            attacker=attacker,
            rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))),
        )
        result = simulator.run()
        label = _label_for_run(vector, result, attacker, k_frames)
        features = attacker.record.features_at_launch
        if label is None or features is None:
            continue
        inputs.append(list(features.as_array(k_frames)))
        targets.append(label)
    if not inputs:
        raise RuntimeError(
            f"no training samples collected for {scenario_id}/{vector.value}; "
            "check the delta_inject grid against the scenario geometry"
        )
    return SafetyDataset(
        vector=vector,
        scenario_id=scenario_id,
        inputs=np.asarray(inputs, dtype=float),
        targets=np.asarray(targets, dtype=float).reshape(-1, 1),
    )


def train_neural_safety_predictor(
    dataset: SafetyDataset,
    epochs: int = 200,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> tuple[NeuralSafetyPredictor, TrainingResult]:
    """Train the paper's NN oracle on a collected dataset.

    Returns the ready-to-use predictor (with input standardization baked in)
    and the training history.
    """
    rng = np.random.default_rng(seed)
    means = dataset.inputs.mean(axis=0)
    stds = dataset.inputs.std(axis=0)
    stds = np.where(stds <= 1e-9, 1.0, stds)
    normalized_inputs = (dataset.inputs - means) / stds
    target_mean = float(dataset.targets.mean())
    target_std = float(dataset.targets.std())
    if target_std <= 1e-9:
        target_std = 1.0
    normalized_targets = (dataset.targets - target_mean) / target_std

    network = FeedForwardNetwork.safety_hijacker_architecture(
        NeuralSafetyPredictor.INPUT_DIM, rng=rng
    )
    result = train_network(
        network,
        normalized_inputs,
        normalized_targets,
        epochs=epochs,
        batch_size=32,
        optimizer=Adam(learning_rate=learning_rate),
        train_fraction=0.6,
        rng=rng,
    )
    predictor = NeuralSafetyPredictor(
        network, means, stds, target_mean=target_mean, target_std=target_std
    )
    return predictor, result

"""Execution runtime: parallel executors, artifact caches, and registries.

This package is the infrastructure layer underneath the experiment harness:

* :mod:`repro.runtime.executor` — the :class:`Executor` abstraction with a
  :class:`SerialExecutor` (in-process ``map``) and a
  :class:`ParallelExecutor` (a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out) that produce *identical* results for seeded workloads;
* :mod:`repro.runtime.cache` — :class:`ArtifactCache`, a process-safe,
  optionally disk-backed store for expensive artifacts (trained
  safety-predictor weights, campaign results);
* :mod:`repro.runtime.registry` — :class:`Registry`, the decorator-friendly
  plugin registry backing the open scenario catalog of
  :mod:`repro.sim.scenarios`;
* :mod:`repro.runtime.cli` — the ``repro-campaign`` console entry point.

The runtime deliberately depends on nothing above it (no ``repro.sim`` /
``repro.experiments`` imports outside the CLI), so every layer of the
reproduction can build on it without cycles.
"""

from repro.runtime.cache import ArtifactCache, default_cache_dir
from repro.runtime.executor import (
    Executor,
    ExecutorLike,
    FaultInjectingExecutor,
    InjectedFault,
    ParallelExecutor,
    SerialExecutor,
    available_cpus,
    resolve_executor,
)
from repro.runtime.registry import Registry, RegistryError

__all__ = [
    "ArtifactCache",
    "default_cache_dir",
    "Executor",
    "ExecutorLike",
    "FaultInjectingExecutor",
    "InjectedFault",
    "ParallelExecutor",
    "SerialExecutor",
    "available_cpus",
    "resolve_executor",
    "Registry",
    "RegistryError",
]

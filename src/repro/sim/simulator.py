"""The simulation loop.

Each step (one camera frame at 15 Hz) the simulator:

1. captures the ground truth and renders the sensor measurements,
2. lets the (optional) man-in-the-middle attacker observe and perturb the
   camera frame — the attack surface of paper §III-B,
3. runs the victim ADS on the (possibly perturbed) sensors,
4. applies the ADS actuation to the ego vehicle and advances all actors,
5. records safety events: emergency braking, collisions, attack start/end,
   and the ground-truth / perceived safety-potential traces used by the
   evaluation harness.

The loop halts early on a physical collision, mirroring how the LGSVL
simulator stops when actors come too close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from repro.ads.safety import SafetyModel, ground_truth_delta
from repro.sensors.camera import CameraFrame, CameraSensor
from repro.sensors.gps_imu import GpsImuSensor
from repro.sensors.lidar import LidarScan, LidarSensor
from repro.sim.config import SimulationConfig
from repro.sim.events import EventKind, EventLog, SimulationEvent
from repro.sim.scenarios import DrivingScenario
from repro.sim.world import GroundTruthSnapshot

if TYPE_CHECKING:  # pragma: no cover - imported for type hints only
    from repro.ads.agent import AdsAgent, AdsDecision

__all__ = ["CameraAttacker", "SimulationResult", "Simulator"]


class CameraAttacker(Protocol):
    """Interface of a man-in-the-middle attacker on the camera link.

    ``process_frame`` receives the clean camera frame and returns the frame the
    ADS will see (possibly perturbed).  The attacker reports its state through
    the three properties so the simulator can log attack start/end events.
    """

    def process_frame(
        self, frame: CameraFrame, ego_speed_mps: float, dt: float
    ) -> CameraFrame:
        """Observe the clean frame and return the (possibly perturbed) frame."""
        ...

    @property
    def attack_active(self) -> bool:
        """Whether a perturbation is being applied this frame."""
        ...

    @property
    def target_actor_id(self) -> Optional[int]:
        """The actor whose trajectory is being hijacked, if any."""
        ...


@dataclass
class SimulationResult:
    """Everything recorded during one simulation run."""

    scenario_id: str
    events: EventLog
    steps_executed: int
    duration_s: float
    halted_on_collision: bool
    final_snapshot: GroundTruthSnapshot
    target_actor_id: Optional[int]

    @property
    def emergency_braking_occurred(self) -> bool:
        return self.events.emergency_braking_occurred

    @property
    def collision_occurred(self) -> bool:
        return self.events.collision_occurred

    def min_true_delta_from_attack(self) -> float:
        """Minimum ground-truth δ from the attack start to the end of the run.

        Falls back to the whole-run minimum when no attack was launched.
        """
        start = self.events.attack_start_step
        return self.events.min_true_delta_after(start if start is not None else 0)

    def accident_occurred(self, accident_delta_m: float = 4.0) -> bool:
        """Paper §VI-D accident criterion: min ground-truth δ below 4 m."""
        if self.collision_occurred:
            return True
        return self.min_true_delta_from_attack() < accident_delta_m


class Simulator:
    """Runs one driving scenario against the ADS, optionally under attack."""

    def __init__(
        self,
        scenario: DrivingScenario,
        ads: "AdsAgent",
        config: SimulationConfig | None = None,
        attacker: Optional[CameraAttacker] = None,
        rng: np.random.Generator | None = None,
    ):
        self.scenario = scenario
        self.ads = ads
        self.config = config or SimulationConfig()
        self.attacker = attacker
        rng = rng if rng is not None else np.random.default_rng()
        sensor_seeds = rng.integers(0, 2**31 - 1, size=2)
        self.camera = CameraSensor()
        self.lidar = LidarSensor(rng=np.random.default_rng(int(sensor_seeds[0])))
        self.gps_imu = GpsImuSensor(rng=np.random.default_rng(int(sensor_seeds[1])))
        self.safety_model = SafetyModel(
            comfortable_decel_mps2=self.config.comfortable_decel_mps2
        )

    def run(self) -> SimulationResult:
        """Execute the scenario until its duration elapses or a collision halts it."""
        world = self.scenario.world
        events = EventLog()
        dt = self.config.dt
        max_steps = min(
            self.config.max_steps, int(round(self.scenario.duration_s / dt))
        )
        attack_was_active = False
        emergency_was_active = False
        halted = False
        last_lidar_scan: Optional[LidarScan] = None
        # One snapshot per step: built here for step 0, then refreshed once
        # after each world.step and reused for collision checking, the next
        # iteration's sensing, and the final result.  (Snapshotting is the
        # single most expensive bookkeeping call in the loop.)
        snapshot = world.snapshot()
        collision_actor = self._check_collision(snapshot)
        if collision_actor is not None:
            # Actors spawned already overlapping: halt at step 0 instead of
            # driving the ego through them for the full duration.
            self._record_collision_halt(
                events, snapshot, collision_actor, perceived_delta=float("inf")
            )
            halted = True
            max_steps = 0

        for step in range(max_steps):
            camera_frame = self.camera.capture(snapshot)
            if self.config.lidar_due(step):
                last_lidar_scan = self.lidar.scan(snapshot)
            ego_pose = self.gps_imu.measure(snapshot)

            delivered_frame = camera_frame
            if self.attacker is not None:
                delivered_frame = self.attacker.process_frame(
                    camera_frame, ego_speed_mps=ego_pose.speed_mps, dt=dt
                )
                attack_was_active = self._log_attack_transitions(
                    events, snapshot, attack_was_active
                )

            decision = self.ads.step(delivered_frame, last_lidar_scan, ego_pose, dt)
            emergency_was_active = self._log_emergency_transitions(
                events, snapshot, decision, emergency_was_active
            )

            target_id = self._current_target_id()
            true_delta = ground_truth_delta(
                snapshot, self.scenario.road, self.safety_model, target_actor_id=target_id
            )
            events.record_step(
                true_delta=true_delta,
                perceived_delta=decision.perceived_delta_m,
                ego_speed=snapshot.ego.speed,
            )

            world.step(dt, ego_acceleration_mps2=decision.acceleration_mps2)

            snapshot = world.snapshot()
            collision_actor = self._check_collision(snapshot)
            if collision_actor is not None:
                # The impact snapshot still gets a trace entry (so the Fig-6
                # traces and min_true_delta_from_attack include the value at
                # impact); on a collision halt the traces are therefore one
                # entry longer than steps_executed.
                self._record_collision_halt(
                    events, snapshot, collision_actor,
                    perceived_delta=decision.perceived_delta_m,
                )
                halted = True
                break

        if attack_was_active:
            # The run ended (duration elapsed or collision halt) while the
            # attack was still active: close the interval so attack-duration
            # consumers never see an open one.
            events.record(
                SimulationEvent(
                    kind=EventKind.ATTACK_ENDED,
                    time_s=snapshot.time_s,
                    step_index=snapshot.step_index,
                )
            )

        return SimulationResult(
            scenario_id=self.scenario.scenario_id,
            events=events,
            steps_executed=world.step_index,
            duration_s=world.time_s,
            halted_on_collision=halted,
            final_snapshot=snapshot,
            target_actor_id=self._current_target_id(),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _current_target_id(self) -> Optional[int]:
        if self.attacker is not None and self.attacker.target_actor_id is not None:
            return self.attacker.target_actor_id
        return self.scenario.target_actor_id

    def _log_attack_transitions(
        self, events: EventLog, snapshot: GroundTruthSnapshot, attack_was_active: bool
    ) -> bool:
        active = bool(self.attacker is not None and self.attacker.attack_active)
        if active and not attack_was_active:
            events.record(
                SimulationEvent(
                    kind=EventKind.ATTACK_STARTED,
                    time_s=snapshot.time_s,
                    step_index=snapshot.step_index,
                )
            )
        elif not active and attack_was_active:
            events.record(
                SimulationEvent(
                    kind=EventKind.ATTACK_ENDED,
                    time_s=snapshot.time_s,
                    step_index=snapshot.step_index,
                )
            )
        return active

    @staticmethod
    def _log_emergency_transitions(
        events: EventLog,
        snapshot: GroundTruthSnapshot,
        decision: "AdsDecision",
        emergency_was_active: bool,
    ) -> bool:
        if decision.emergency_brake and not emergency_was_active:
            events.record(
                SimulationEvent(
                    kind=EventKind.EMERGENCY_BRAKE,
                    time_s=snapshot.time_s,
                    step_index=snapshot.step_index,
                    details={"perceived_delta_m": decision.perceived_delta_m},
                )
            )
        return decision.emergency_brake

    def _record_collision_halt(
        self,
        events: EventLog,
        snapshot: GroundTruthSnapshot,
        collision_actor: int,
        perceived_delta: float,
    ) -> None:
        """Record the impact snapshot's trace entry and the halt events."""
        true_delta = ground_truth_delta(
            snapshot,
            self.scenario.road,
            self.safety_model,
            target_actor_id=self._current_target_id(),
        )
        events.record_step(
            true_delta=true_delta,
            perceived_delta=perceived_delta,
            ego_speed=snapshot.ego.speed,
        )
        events.record(
            SimulationEvent(
                kind=EventKind.COLLISION,
                time_s=snapshot.time_s,
                step_index=snapshot.step_index,
                details={"actor_id": float(collision_actor)},
            )
        )
        events.record(
            SimulationEvent(
                kind=EventKind.SIMULATION_HALTED,
                time_s=snapshot.time_s,
                step_index=snapshot.step_index,
            )
        )

    def _check_collision(self, snapshot: GroundTruthSnapshot) -> Optional[int]:
        ego = snapshot.ego
        for actor in snapshot.actors:
            if ego.overlaps(actor):
                return actor.actor_id
        return None

"""Ground-truth world state container.

The :class:`World` owns the ego vehicle and all scripted actors, advances them
each simulation step, and produces immutable ground-truth snapshots consumed by
the sensor models and by the safety/metrics monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.actors import ActorKind, ActorSnapshot, EgoVehicle, ScriptedActor
from repro.sim.road import Road

__all__ = ["GroundTruthSnapshot", "World"]


@dataclass(frozen=True)
class GroundTruthSnapshot:
    """Immutable ground-truth view of the world at one simulation step."""

    time_s: float
    step_index: int
    ego: ActorSnapshot
    actors: tuple[ActorSnapshot, ...]

    def actor_by_id(self, actor_id: int) -> Optional[ActorSnapshot]:
        """Find a non-ego actor by id, or ``None`` if it is not present."""
        for actor in self.actors:
            if actor.actor_id == actor_id:
                return actor
        return None

    def actors_ahead_of_ego(self) -> List[ActorSnapshot]:
        """Non-ego actors that are longitudinally ahead of the ego front bumper."""
        ego_front = self.ego.position.x + self.ego.dimensions.length_m / 2.0
        return [a for a in self.actors if a.position.x > ego_front]

    def nearest_in_path_actor(self, road: Road, lateral_margin: float = 0.2) -> Optional[ActorSnapshot]:
        """The closest actor ahead whose footprint overlaps the ego lane."""
        candidates = [
            a
            for a in self.actors_ahead_of_ego()
            if road.in_ego_lane(a.position.y, margin=lateral_margin + a.dimensions.width_m / 2.0)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda a: a.position.x)


class World:
    """The mutable simulation world: one ego vehicle plus scripted actors."""

    def __init__(self, ego: EgoVehicle, actors: Sequence[ScriptedActor], road: Road | None = None):
        self.ego = ego
        self.actors: List[ScriptedActor] = list(actors)
        self.road = road or Road()
        self.time_s = 0.0
        self.step_index = 0

    def step(self, dt: float, ego_acceleration_mps2: float) -> None:
        """Advance the world by one time step."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.ego.apply_control(ego_acceleration_mps2, dt)
        for actor in self.actors:
            actor.step(dt)
        self.time_s += dt
        self.step_index += 1

    def snapshot(self) -> GroundTruthSnapshot:
        """Capture the current ground-truth state."""
        return GroundTruthSnapshot(
            time_s=self.time_s,
            step_index=self.step_index,
            ego=self.ego.snapshot(),
            actors=tuple(actor.snapshot() for actor in self.actors),
        )

    def actor_by_id(self, actor_id: int) -> Optional[ScriptedActor]:
        """Look up a scripted actor by id."""
        for actor in self.actors:
            if actor.actor_id == actor_id:
                return actor
        return None

    def pedestrians(self) -> List[ScriptedActor]:
        """All scripted pedestrians."""
        return [a for a in self.actors if a.kind is ActorKind.PEDESTRIAN]

    def vehicles(self) -> List[ScriptedActor]:
        """All scripted (non-ego) vehicles."""
        return [a for a in self.actors if a.kind is ActorKind.VEHICLE]

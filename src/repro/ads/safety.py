"""The AV safety model of paper §II-C (after Jha et al., DSN 2019).

* ``dstop`` — the stopping distance: the maximum distance the vehicle travels
  before coming to a complete stop under the maximum *comfortable*
  deceleration (Definition 3).
* ``dsafe`` — the safety envelope: the distance the AV can travel without
  colliding with the obstacle ahead (Definition 4); here the bumper-to-bumper
  longitudinal gap to the nearest in-path object.
* ``δ = dsafe − dstop`` — the safety potential (Definition 5).  The paper uses
  δ ≥ 4 m as the safe-state criterion because the LGSVL/Apollo simulation
  halts below a 4 m separation; the same 4 m threshold defines an *accident*
  in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.actors import ActorSnapshot
from repro.sim.road import Road
from repro.sim.world import GroundTruthSnapshot

__all__ = ["SafetyModel", "ground_truth_delta"]


@dataclass(frozen=True)
class SafetyModel:
    """Computes stopping distance and safety potential."""

    #: Maximum comfortable deceleration (m/s^2) used in Definition 3.
    comfortable_decel_mps2: float = 3.0
    #: Planner/actuation reaction time budget (s) added to the stopping
    #: distance.  The paper's Definition 3 has no reaction term, so it defaults
    #: to zero; it is kept configurable for ablations.
    reaction_time_s: float = 0.0
    #: Safety potential below which the AV is considered in an unsafe (accident)
    #: state; 4 m per the paper's adaptation of Definition 5.
    accident_delta_m: float = 4.0

    def __post_init__(self) -> None:
        if self.comfortable_decel_mps2 <= 0:
            raise ValueError("comfortable deceleration must be positive")
        if self.reaction_time_s < 0:
            raise ValueError("reaction time must be non-negative")

    def stopping_distance(self, speed_mps: float) -> float:
        """``dstop`` for the given ego speed (Definition 3)."""
        speed = max(0.0, speed_mps)
        return speed * self.reaction_time_s + speed * speed / (2.0 * self.comfortable_decel_mps2)

    def safety_potential(self, gap_m: float, speed_mps: float) -> float:
        """``δ = dsafe − dstop`` for a given gap and ego speed (Definition 5)."""
        return gap_m - self.stopping_distance(speed_mps)

    def is_safe(self, gap_m: float, speed_mps: float) -> bool:
        """Whether the AV is in a safe state (δ above the accident threshold)."""
        return self.safety_potential(gap_m, speed_mps) > self.accident_delta_m


def ground_truth_delta(
    snapshot: GroundTruthSnapshot,
    road: Road,
    safety_model: SafetyModel,
    target_actor_id: Optional[int] = None,
    lateral_margin: float = 0.3,
) -> float:
    """Ground-truth safety potential of the ego vehicle at one snapshot.

    When ``target_actor_id`` is given, the safety potential is computed with
    respect to that actor whenever it is ahead of the EV and inside (or
    laterally overlapping) the ego lane; otherwise the nearest in-path actor is
    used.  Returns ``inf`` when there is no relevant in-path object, matching
    the convention that an unobstructed road has unbounded safety envelope.
    """
    ego = snapshot.ego
    candidate: Optional[ActorSnapshot] = None
    if target_actor_id is not None:
        actor = snapshot.actor_by_id(target_actor_id)
        if actor is not None and actor.position.x > ego.position.x:
            in_lane = road.in_ego_lane(
                actor.position.y, margin=lateral_margin + actor.dimensions.width_m / 2.0
            )
            if in_lane:
                candidate = actor
    if candidate is None:
        candidate = snapshot.nearest_in_path_actor(road, lateral_margin=lateral_margin)
    if candidate is None:
        return float("inf")
    gap = ego.longitudinal_gap_to(candidate)
    return safety_model.safety_potential(gap, ego.speed)

"""Gradient-descent optimizers: SGD and Adam.

The paper trains the safety hijacker with Adam; SGD is provided for ablation
and testing.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: updates layer parameters in place from their gradients.

    Per-layer state (momentum, moment estimates, step counts) is keyed by the
    layer *object*, and the optimizer holds a strong reference to every layer
    it has seen.  Keying by ``id()`` alone is unsound: once a layer is garbage
    collected its id can be reused by an unrelated layer, which would then
    silently inherit stale state.  The strong reference pins the id for the
    optimizer's lifetime, and the identity check below hands a brand-new layer
    a brand-new state slot.
    """

    def __init__(self) -> None:
        self._retained: Dict[int, Layer] = {}
        self._slots: Dict[int, Dict[str, Any]] = {}

    def _layer_state(self, layer: Layer) -> Dict[str, Any]:
        """The state slot owned by exactly this layer object."""
        key = id(layer)
        if self._retained.get(key) is not layer:
            self._retained[key] = layer
            self._slots[key] = {}
        return self._slots[key]

    def step(self, layers: List[Layer]) -> None:
        """Apply one update to every trainable parameter in ``layers``."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum

    def step(self, layers: List[Layer]) -> None:
        for layer in layers:
            params = layer.parameters()
            grads = layer.gradients()
            if not params:
                continue
            state = self._layer_state(layer).setdefault("velocity", {})
            for name, param in params.items():
                grad = grads[name]
                if self.momentum > 0.0:
                    vel = state.setdefault(name, np.zeros_like(param))
                    vel *= self.momentum
                    vel -= self.learning_rate * grad
                    param += vel
                else:
                    param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used to train the safety hijacker.

    The bias-correction step count is tracked per layer, not globally: a
    fresh network trained through a shared optimizer starts its correction
    schedule from t=1, exactly as if it had a fresh optimizer.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon

    def step(self, layers: List[Layer]) -> None:
        for layer in layers:
            params = layer.parameters()
            grads = layer.gradients()
            if not params:
                continue
            slots = self._layer_state(layer)
            slots["t"] = t = slots.get("t", 0) + 1
            m_state = slots.setdefault("m", {})
            v_state = slots.setdefault("v", {})
            for name, param in params.items():
                grad = grads[name]
                m = m_state.setdefault(name, np.zeros_like(param))
                v = v_state.setdefault(name, np.zeros_like(param))
                m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
                v[...] = self.beta2 * v + (1.0 - self.beta2) * grad * grad
                m_hat = m / (1.0 - self.beta1**t)
                v_hat = v / (1.0 - self.beta2**t)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

"""A minimal immutable 2-D vector.

The simulator works in a road-aligned frame:

* ``x`` is the longitudinal coordinate (metres along the road, increasing in
  the ego vehicle's direction of travel);
* ``y`` is the lateral coordinate (metres, positive to the left of the ego
  lane centre).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Vec2"]


@dataclass(frozen=True)
class Vec2:
    """Immutable 2-D vector with the usual arithmetic operations."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    def __rmul__(self, scalar: float) -> "Vec2":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: float) -> "Vec2":
        if scalar == 0:
            raise ZeroDivisionError("division of Vec2 by zero")
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).norm()

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction; zero vector stays zero."""
        n = self.norm()
        if n == 0.0:
            return Vec2(0.0, 0.0)
        return Vec2(self.x / n, self.y / n)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    @staticmethod
    def zero() -> "Vec2":
        """The zero vector."""
        return Vec2(0.0, 0.0)

"""Tests for the parallel, store-backed oracle training pipeline.

Covers the pipeline's three contracts:

* serial, parallel, and store-assembled dataset collection are bit-identical
  (per-point seeding + grid-order assembly);
* an interrupted collection resumes from the store's dataset records and
  yields exactly the uninterrupted dataset;
* a trained predictor published into the content-addressed model registry
  reloads to bit-identical predictions, and campaign processes resolve it by
  training-spec hash instead of retraining.

Plus the `_label_for_run` frame-0 clamp regression.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.safety_hijacker import NeuralSafetyPredictor
from repro.core.training import (
    _CLEAR_ROAD_DELTA_M,
    _label_for_run,
    collect_safety_dataset,
    collection_hash_for,
    dataset_content_hash,
    expand_training_grid,
    load_registered_predictor,
    train_and_register_predictor,
    training_spec_hash,
)
from repro.experiments.store import ExperimentStore
from repro.runtime import FaultInjectingExecutor, InjectedFault, ParallelExecutor

_SCENARIO = "DS-2"
_VECTOR = AttackVector.DISAPPEAR
_DELTAS = (42.0, 36.0)
_KS = (12, 24)


def _collect(**kwargs):
    return collect_safety_dataset(
        scenario_id=_SCENARIO,
        vector=_VECTOR,
        delta_inject_values=_DELTAS,
        k_values=_KS,
        seed=17,
        **kwargs,
    )


def assert_datasets_identical(left, right):
    np.testing.assert_array_equal(left.inputs, right.inputs)
    np.testing.assert_array_equal(left.targets, right.targets)


class TestGridExpansion:
    def test_points_are_indexed_in_grid_order(self):
        grid = expand_training_grid((10.0, 8.0), (3, 5), repeats=2)
        assert [point[0] for point in grid] == list(range(8))
        assert grid[0][1:] == (10.0, 3)
        assert grid[1][1:] == (10.0, 3)  # the repeat rides next to its sibling
        assert grid[2][1:] == (10.0, 5)
        assert grid[-1][1:] == (8.0, 5)

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            expand_training_grid((1.0,), (1,), repeats=0)


class TestParallelCollection:
    def test_parallel_collection_bit_identical_to_serial(self):
        serial = _collect()
        with ParallelExecutor(max_workers=2) as executor:
            parallel = _collect(executor=executor)
        assert_datasets_identical(serial, parallel)

    def test_store_assembled_dataset_bit_identical_to_serial(self, tmp_path):
        serial = _collect()
        stored = _collect(store=ExperimentStore(tmp_path))
        assert_datasets_identical(serial, stored)

    def test_store_accepts_root_path(self, tmp_path):
        stored = _collect(store=tmp_path)
        assert stored.n_samples >= 1
        assert list(tmp_path.glob("datasets/*.jsonl"))

    def test_collection_writes_manifest(self, tmp_path):
        store = ExperimentStore(tmp_path)
        _collect(store=store)
        collection_hash_ = collection_hash_for(
            _SCENARIO, _VECTOR, _DELTAS, _KS, seed=17, repeats=1
        )
        manifest = store.load_dataset_manifest(collection_hash_)
        assert manifest["scenario_id"] == _SCENARIO
        assert manifest["vector"] == _VECTOR.name
        assert manifest["n_points"] == len(_DELTAS) * len(_KS)

    def test_interrupted_collection_resumes_bit_identical(self, tmp_path):
        clean = _collect()
        store = ExperimentStore(tmp_path)
        with pytest.raises(InjectedFault):
            _collect(store=store, executor=FaultInjectingExecutor(2))
        collection_hash_ = collection_hash_for(
            _SCENARIO, _VECTOR, _DELTAS, _KS, seed=17, repeats=1
        )
        done = store.dataset_point_indices(collection_hash_)
        assert len(done) == 2  # exactly the checkpointed grid points

        resumed = _collect(store=store)
        assert_datasets_identical(resumed, clean)
        # The resume recomputed only the missing points; all are now stored.
        assert store.dataset_point_indices(collection_hash_) == set(range(4))

    def test_completed_collection_runs_nothing_on_reload(self, tmp_path):
        store = ExperimentStore(tmp_path)
        first = _collect(store=store)
        # A fault executor that dies on the first item proves nothing runs.
        second = _collect(store=store, executor=FaultInjectingExecutor(0))
        assert_datasets_identical(first, second)

    def test_different_seeds_use_disjoint_collections(self, tmp_path):
        store = ExperimentStore(tmp_path)
        _collect(store=store)
        other = collect_safety_dataset(
            scenario_id=_SCENARIO,
            vector=_VECTOR,
            delta_inject_values=_DELTAS,
            k_values=_KS,
            seed=18,
            store=store,
        )
        assert len(list(tmp_path.glob("datasets/*.jsonl"))) == 2
        assert other.n_samples >= 1


class TestLabelForRunClamp:
    """Regression: an attack launched on frame 0 must not read the trace tail."""

    @staticmethod
    def _attacker(start_frame):
        return SimpleNamespace(
            record=SimpleNamespace(launched=True, start_frame=start_frame)
        )

    def test_frame_zero_attack_reads_window_from_trace_start(self):
        # Rising trace: the minimum lives at the start; the old -1 slice start
        # read [last element] instead (trace[-1:] when k+15 >= len).
        trace = [float(value) for value in range(10, 40)]
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=trace, perceived_delta_trace=[])
        )
        label = _label_for_run(AttackVector.DISAPPEAR, result, self._attacker(0), 20)
        assert label == 10.0

    def test_frame_zero_short_window_is_not_empty(self):
        # With a short window the old trace[-1 : k+14] slice was *empty* and
        # the run was silently dropped from the dataset.
        trace = [30.0, 29.0, 28.0, 27.0] + [26.0] * 40
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=trace, perceived_delta_trace=[])
        )
        label = _label_for_run(AttackVector.DISAPPEAR, result, self._attacker(0), 5)
        assert label == 26.0

    def test_move_in_frame_zero_uses_first_finite_perceived_delta(self):
        trace = [float(_CLEAR_ROAD_DELTA_M)] * 3 + [12.5] + [11.0] * 30
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=[], perceived_delta_trace=trace)
        )
        label = _label_for_run(AttackVector.MOVE_IN, result, self._attacker(0), 10)
        assert label == 12.5

    def test_move_in_label_saturates_when_shift_never_completes(self):
        trace = [float(_CLEAR_ROAD_DELTA_M)] * 40
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=[], perceived_delta_trace=trace)
        )
        label = _label_for_run(AttackVector.MOVE_IN, result, self._attacker(5), 4)
        assert label == _CLEAR_ROAD_DELTA_M

    def test_later_frames_unchanged(self):
        trace = [50.0, 40.0, 30.0, 20.0, 10.0] + [45.0] * 40
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=trace, perceived_delta_trace=[])
        )
        label = _label_for_run(AttackVector.DISAPPEAR, result, self._attacker(3), 2)
        assert label == 10.0

    def test_unlaunched_attack_has_no_label(self):
        result = SimpleNamespace(
            events=SimpleNamespace(true_delta_trace=[1.0], perceived_delta_trace=[1.0])
        )
        attacker = SimpleNamespace(record=SimpleNamespace(launched=False, start_frame=None))
        assert _label_for_run(AttackVector.DISAPPEAR, result, attacker, 5) is None


class TestModelRegistry:
    def _train(self, store, executor=None, epochs=8, seed=17):
        return train_and_register_predictor(
            _SCENARIO, _VECTOR, _DELTAS, _KS,
            seed=seed, repeats=1, epochs=epochs, executor=executor, store=store,
        )

    def test_artifact_without_store_is_not_persisted(self):
        artifact = train_and_register_predictor(
            _SCENARIO, _VECTOR, _DELTAS, _KS, seed=17, repeats=1, epochs=4
        )
        assert artifact.model_hash is None
        assert artifact.model_dir is None
        assert isinstance(artifact.predictor, NeuralSafetyPredictor)

    def test_registered_predictor_reloads_bit_identical(self, tmp_path):
        store = ExperimentStore(tmp_path)
        artifact = self._train(store)
        assert store.has_model(artifact.model_hash)

        loaded = load_registered_predictor(store, artifact.spec_hash)
        assert loaded is not None
        raw = np.random.default_rng(5).normal(size=(12, 4)) * 10.0
        np.testing.assert_array_equal(
            loaded.predict_batch(raw), artifact.predictor.predict_batch(raw)
        )

    def test_registry_metadata_records_provenance_and_curves(self, tmp_path):
        store = ExperimentStore(tmp_path)
        artifact = self._train(store, epochs=6)
        metadata = store.load_model_metadata(artifact.model_hash)
        assert metadata["scenario_id"] == _SCENARIO
        assert metadata["vector"] == _VECTOR.name
        assert metadata["dataset_hash"] == artifact.dataset_hash
        assert len(metadata["train_loss"]) == 6
        assert len(metadata["validation_loss"]) == 6

    def test_model_hash_covers_dataset_and_training_config(self, tmp_path):
        store = ExperimentStore(tmp_path)
        base = self._train(store, epochs=4)
        more_epochs = self._train(store, epochs=5)
        other_seed = self._train(store, epochs=4, seed=23)
        hashes = {base.model_hash, more_epochs.model_hash, other_seed.model_hash}
        assert len(hashes) == 3
        assert sorted(store.model_hashes()) == sorted(hashes)

    def test_unknown_spec_resolves_to_none(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec_hash = training_spec_hash(_SCENARIO, _VECTOR, _DELTAS, _KS)
        assert load_registered_predictor(store, spec_hash) is None

    def test_dataset_content_hash_is_content_sensitive(self):
        dataset = _collect()
        other = _collect()
        assert dataset_content_hash(dataset) == dataset_content_hash(other)
        perturbed = _collect()
        perturbed.targets[0, 0] += 1e-9
        assert dataset_content_hash(perturbed) != dataset_content_hash(dataset)

    def test_spec_hash_is_stable_and_spec_sensitive(self):
        base = training_spec_hash(_SCENARIO, _VECTOR, _DELTAS, _KS, epochs=10)
        assert base == training_spec_hash(_SCENARIO, _VECTOR, _DELTAS, _KS, epochs=10)
        assert base != training_spec_hash(_SCENARIO, _VECTOR, _DELTAS, _KS, epochs=11)
        assert base != training_spec_hash(
            _SCENARIO, AttackVector.MOVE_OUT, _DELTAS, _KS, epochs=10
        )

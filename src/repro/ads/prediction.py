"""Obstacle prediction: deciding which obstacles are (or will be) in the ego path.

The planner cares about two questions per obstacle:

* is it inside the ego lane right now?
* is its current lateral motion going to bring it into (or out of) the ego
  lane within the prediction horizon?

Both use a constant-lateral-velocity extrapolation of the fused obstacle
state, which is also what makes the trajectory-hijacking attacks effective:
fooling the fused lateral position/velocity changes the predicted lane
membership and therefore the planner's reaction (paper §III-C attack vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.perception.fusion import FusedObstacle
from repro.sim.actors import ActorKind
from repro.sim.road import Road

__all__ = ["PredictionConfig", "ObstaclePredictor"]

#: Nominal half-widths used to decide lane overlap, per class.
_NOMINAL_HALF_WIDTH_M = {
    ActorKind.VEHICLE: 0.95,
    ActorKind.PEDESTRIAN: 0.25,
}
#: Nominal half-lengths used to convert centre distance to bumper gap.
_NOMINAL_HALF_LENGTH_M = {
    ActorKind.VEHICLE: 2.3,
    ActorKind.PEDESTRIAN: 0.25,
}


@dataclass(frozen=True)
class PredictionConfig:
    """Parameters of the lane-membership prediction."""

    #: How far ahead (s) lateral motion is extrapolated.
    horizon_s: float = 1.5
    #: Extra lateral margin (m) added around the ego lane when testing overlap.
    lateral_margin_m: float = 0.15
    #: Minimum lateral speed (m/s) treated as genuine lateral motion (smaller
    #: values are indistinguishable from detector noise).
    min_lateral_speed_mps: float = 0.6
    #: Obstacles closer than this are judged on their current lane membership
    #: only; velocity-based extrapolation is too noisy at very short range (the
    #: object is about to be passed anyway).
    min_prediction_distance_m: float = 10.0

    def __post_init__(self) -> None:
        if self.horizon_s < 0:
            raise ValueError("horizon must be non-negative")


class ObstaclePredictor:
    """Constant-velocity lane-membership prediction for fused obstacles."""

    def __init__(self, road: Road, config: PredictionConfig | None = None):
        self.road = road
        self.config = config or PredictionConfig()

    def half_width(self, obstacle: FusedObstacle) -> float:
        return _NOMINAL_HALF_WIDTH_M[obstacle.kind]

    def half_length(self, obstacle: FusedObstacle) -> float:
        return _NOMINAL_HALF_LENGTH_M[obstacle.kind]

    def bumper_gap(self, obstacle: FusedObstacle) -> float:
        """Bumper-to-bumper gap from the ego front to the obstacle rear."""
        return obstacle.distance_m - self.half_length(obstacle)

    def currently_in_path(self, obstacle: FusedObstacle) -> bool:
        """Whether the obstacle footprint overlaps the ego lane right now."""
        margin = self.config.lateral_margin_m + self.half_width(obstacle)
        return self.road.in_ego_lane(obstacle.lateral_m, margin=margin)

    def predicted_lateral(self, obstacle: FusedObstacle) -> float:
        """Lateral position extrapolated to the prediction horizon."""
        lateral_speed = obstacle.lateral_velocity_mps
        if abs(lateral_speed) < self.config.min_lateral_speed_mps:
            lateral_speed = 0.0
        return obstacle.lateral_m + lateral_speed * self.config.horizon_s

    def predicted_in_path(self, obstacle: FusedObstacle) -> bool:
        """Whether the obstacle is expected to overlap the ego lane soon."""
        if obstacle.distance_m < self.config.min_prediction_distance_m:
            return False
        margin = self.config.lateral_margin_m + self.half_width(obstacle)
        return self.road.in_ego_lane(self.predicted_lateral(obstacle), margin=margin)

    def is_relevant(self, obstacle: FusedObstacle) -> bool:
        """In path now, or predicted to be in path within the horizon."""
        if obstacle.distance_m <= 0:
            return False
        return self.currently_in_path(obstacle) or self.predicted_in_path(obstacle)

    def nearest_in_path(self, obstacles: List[FusedObstacle]) -> Optional[FusedObstacle]:
        """The closest obstacle that is (or will be) in the ego path."""
        relevant = [o for o in obstacles if self.is_relevant(o)]
        if not relevant:
            return None
        return min(relevant, key=lambda o: o.distance_m)

    def pedestrians_near_path(
        self, obstacles: List[FusedObstacle], max_distance_m: float, caution_margin_m: float
    ) -> List[FusedObstacle]:
        """Pedestrians close to the ego lane boundary (caution-speed rule)."""
        nearby: List[FusedObstacle] = []
        for obstacle in obstacles:
            if obstacle.kind is not ActorKind.PEDESTRIAN:
                continue
            if not 0.0 < obstacle.distance_m <= max_distance_m:
                continue
            margin = caution_margin_m + self.half_width(obstacle)
            if self.road.in_ego_lane(obstacle.lateral_m, margin=margin):
                nearby.append(obstacle)
        return nearby

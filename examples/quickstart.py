#!/usr/bin/env python3
"""Quickstart: run one golden run and one RoboTack-attacked run of DS-2.

DS-2 is the paper's pedestrian-crossing scenario: a pedestrian illegally
crosses the street ahead of the EV.  In the golden run the ADS brakes and
keeps a safe distance; with RoboTack installed on the camera link, the
`Disappear` attack hides the pedestrian at the most dangerous moment and the
safety potential collapses.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AttackVector, RoboTack, RoboTackConfig, SafetyHijacker
from repro.experiments.campaign import PredictorKind, build_ads_agent, get_or_train_predictor
from repro.sim.scenarios import ScenarioVariation, build_scenario
from repro.sim.simulator import Simulator


def run_once(attacked: bool, seed: int = 7):
    """Simulate one DS-2 run, optionally with RoboTack on the camera link."""
    scenario = build_scenario("DS-2", ScenarioVariation.nominal())
    ads = build_ads_agent(scenario, np.random.default_rng(seed))

    attacker = None
    if attacked:
        # The first call trains the paper's neural safety-potential oracle from
        # scripted attack simulations (takes roughly a minute); it is cached
        # for the rest of the process.
        predictor = get_or_train_predictor(
            "DS-2", AttackVector.DISAPPEAR, kind=PredictorKind.NEURAL
        )
        attacker = RoboTack(
            scenario.road,
            SafetyHijacker(predictor),
            RoboTackConfig(allowed_vectors=(AttackVector.DISAPPEAR,)),
            rng=np.random.default_rng(seed + 1),
        )

    simulator = Simulator(scenario, ads, attacker=attacker, rng=np.random.default_rng(seed + 2))
    result = simulator.run()
    return result, attacker


def describe(label: str, result, attacker) -> None:
    print(f"--- {label} ---")
    if attacker is not None and attacker.record.launched:
        record = attacker.record
        print(
            f"attack launched at frame {record.start_frame} "
            f"(vector={record.vector.name}, K={record.planned_k_frames} frames, "
            f"K'={record.shift_frames_k_prime})"
        )
    elif attacker is not None:
        print("attack never launched")
    print(f"emergency braking : {result.emergency_braking_occurred}")
    print(f"collision         : {result.collision_occurred}")
    print(f"accident (δ < 4 m): {result.accident_occurred()}")
    print(f"min safety potential from attack start: {result.min_true_delta_from_attack():.1f} m")
    print()


def main() -> None:
    golden, _ = run_once(attacked=False)
    describe("golden run (no attack)", golden, None)

    attacked, attacker = run_once(attacked=True)
    describe("RoboTack Disappear attack on the crossing pedestrian", attacked, attacker)


if __name__ == "__main__":
    main()

"""Loss functions.

The safety hijacker is trained with the average squared L2 distance between
the predicted and ground-truth safety potential (paper Eq. 3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MeanSquaredError"]


class MeanSquaredError:
    """Mean squared error over a batch, matching paper Eq. (3)."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Return the scalar loss for a batch."""
        predictions = np.atleast_2d(np.asarray(predictions, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
            )
        diff = predictions - targets
        return float(np.mean(np.sum(diff * diff, axis=1)))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the loss w.r.t. the predictions."""
        predictions = np.atleast_2d(np.asarray(predictions, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
            )
        batch_size = predictions.shape[0]
        return 2.0 * (predictions - targets) / batch_size

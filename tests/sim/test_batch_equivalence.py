"""Scalar-vs-batch engine equivalence: the batch engine's golden-trace gate.

The vectorized :class:`~repro.sim.batch.BatchSimulator` is only usable as a
drop-in campaign engine because it reproduces the reference
:class:`~repro.sim.simulator.Simulator` *bit for bit*: same traces, same
events, same halt behaviour, for every scenario and with or without an
attacker in the loop.  These tests pin that contract — no tolerances.

Event comparisons use ``(kind, step_index, time_s)`` signatures rather than
full event details: the two engines run against independently built scenarios
whose actors draw fresh ids from the module-global actor-id counter, so the
``actor_id`` recorded in COLLISION details legitimately differs between the
two arms of one comparison.
"""

import numpy as np
import pytest

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.core.attack_vectors import AttackVector
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    _build_attacker,
    build_ads_agent,
)
from repro.geometry import Vec2
from repro.perception.fusion import FusionConfig, SensorFusion, list_fusion_policies
from repro.perception.pipeline import PerceptionConfig
from repro.sim.batch import BatchRunSpec, BatchSimulator
from repro.sim.events import EventKind
from repro.sim.scenarios import build_scenario, list_scenario_ids
from repro.sim.simulator import Simulator
from repro.sim.waypoints import Waypoint, WaypointRoute

_ADS_SEED = 1
_SIM_SEED = 2
_ATTACK_SEED = 7


def _benign_setup(scenario_id, fusion=None):
    scenario = build_scenario(scenario_id)
    ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED), fusion=fusion)
    return scenario, ads, None, np.random.default_rng(_SIM_SEED)


def _attacked_setup(scenario_id, fusion=None):
    """The campaign layer's exact seeding chain, with the random attacker."""
    config = CampaignConfig(
        campaign_id=f"eq-{scenario_id}",
        scenario_id=scenario_id,
        attacker=AttackerKind.RANDOM,
        vector=AttackVector.MOVE_IN,
        n_runs=1,
        seed=_ATTACK_SEED,
    )
    rng = np.random.default_rng(_ATTACK_SEED)
    scenario = build_scenario(scenario_id)
    ads = build_ads_agent(
        scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1))), fusion=fusion
    )
    attacker = _build_attacker(
        config, scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
    )
    return scenario, ads, attacker, np.random.default_rng(int(rng.integers(0, 2**31 - 1)))


_SETUPS = {"benign": _benign_setup, "attacked": _attacked_setup}


def _event_signature(result):
    return [(e.kind, e.step_index, e.time_s) for e in result.events.events]


def _assert_bit_identical(scalar, batch):
    assert scalar.events.true_delta_trace == batch.events.true_delta_trace
    assert scalar.events.perceived_delta_trace == batch.events.perceived_delta_trace
    assert scalar.events.ego_speed_trace == batch.events.ego_speed_trace
    assert _event_signature(scalar) == _event_signature(batch)
    assert scalar.steps_executed == batch.steps_executed
    assert scalar.duration_s == batch.duration_s
    assert scalar.halted_on_collision == batch.halted_on_collision
    scalar_ego = scalar.final_snapshot.ego
    batch_ego = batch.final_snapshot.ego
    assert scalar_ego.position.x == batch_ego.position.x
    assert scalar_ego.position.y == batch_ego.position.y
    assert scalar_ego.speed == batch_ego.speed


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("scenario_id", list_scenario_ids())
    @pytest.mark.parametrize("mode", sorted(_SETUPS))
    def test_single_lane_matches_scalar(self, scenario_id, mode):
        setup = _SETUPS[mode]
        scenario, ads, attacker, rng = setup(scenario_id)
        scalar = Simulator(scenario, ads, attacker=attacker, rng=rng).run()
        scenario, ads, attacker, rng = setup(scenario_id)
        batch = BatchSimulator(
            [BatchRunSpec(scenario=scenario, ads=ads, attacker=attacker, rng=rng)]
        ).run()[0]
        _assert_bit_identical(scalar, batch)

    def test_multi_lane_lockstep_is_independent(self):
        """All scenarios in one batch: lanes finish at different steps, and no
        lane's presence perturbs any other lane's result."""
        scenario_ids = list_scenario_ids()
        scalars = []
        for scenario_id in scenario_ids:
            scenario, ads, attacker, rng = _benign_setup(scenario_id)
            scalars.append(Simulator(scenario, ads, attacker=attacker, rng=rng).run())
        specs = []
        for scenario_id in scenario_ids:
            scenario, ads, attacker, rng = _benign_setup(scenario_id)
            specs.append(
                BatchRunSpec(scenario=scenario, ads=ads, attacker=attacker, rng=rng)
            )
        batches = BatchSimulator(specs).run()
        assert len(batches) == len(scalars)
        # Mixed durations force lanes to drop out of the lockstep loop early.
        assert len({result.steps_executed for result in batches}) > 1
        for scalar, batch in zip(scalars, batches):
            _assert_bit_identical(scalar, batch)

    def test_empty_batch_is_rejected(self):
        with pytest.raises(ValueError, match="at least one run spec"):
            BatchSimulator([])

    @pytest.mark.parametrize("scenario_id", list_scenario_ids())
    @pytest.mark.parametrize("policy", [p for p in list_fusion_policies() if p != "late"])
    def test_non_default_policies_match_scalar(self, scenario_id, policy):
        """Every non-default fusion policy is bit-identical scalar vs batch
        (the default ``late`` policy is covered by every other test here)."""
        fusion = FusionConfig(policy=policy)
        scenario, ads, attacker, rng = _benign_setup(scenario_id, fusion=fusion)
        scalar = Simulator(scenario, ads, attacker=attacker, rng=rng).run()
        scenario, ads, attacker, rng = _benign_setup(scenario_id, fusion=fusion)
        batch = BatchSimulator(
            [BatchRunSpec(scenario=scenario, ads=ads, attacker=attacker, rng=rng)]
        ).run()[0]
        _assert_bit_identical(scalar, batch)

    @pytest.mark.parametrize("policy", [p for p in list_fusion_policies() if p != "late"])
    def test_non_default_policies_match_scalar_under_attack(self, policy):
        """Same gate with the random attacker in the loop (DS-2 hosts the
        pedestrian variant of the perception stack)."""
        fusion = FusionConfig(policy=policy)
        scenario, ads, attacker, rng = _attacked_setup("DS-2", fusion=fusion)
        scalar = Simulator(scenario, ads, attacker=attacker, rng=rng).run()
        scenario, ads, attacker, rng = _attacked_setup("DS-2", fusion=fusion)
        batch = BatchSimulator(
            [BatchRunSpec(scenario=scenario, ads=ads, attacker=attacker, rng=rng)]
        ).run()[0]
        _assert_bit_identical(scalar, batch)

    def test_camera_only_agent_is_supported(self):
        """A ``use_lidar=False`` agent resolves to the camera_only policy and
        runs bit-identically on the batch engine (it used to be rejected)."""
        def setup():
            scenario = build_scenario("DS-1")
            ads = AdsAgent(
                road=scenario.road,
                planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
                perception_config=PerceptionConfig(use_lidar=False),
                rng=np.random.default_rng(_ADS_SEED),
            )
            return scenario, ads, np.random.default_rng(_SIM_SEED)

        scenario, ads, rng = setup()
        scalar = Simulator(scenario, ads, rng=rng).run()
        scenario, ads, rng = setup()
        batch = BatchSimulator([BatchRunSpec(scenario=scenario, ads=ads, rng=rng)]).run()[0]
        _assert_bit_identical(scalar, batch)

    def test_custom_fusion_policy_is_rejected(self):
        """The batch engine has plain-float ports of the built-in fusion
        policies only; a third-party policy (here: a SensorFusion subclass it
        has no port for) must fail loudly instead of silently running the
        base-class port and diverging from the scalar path."""

        class CustomFusion(SensorFusion):
            pass

        scenario = build_scenario("DS-1")
        ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED))
        ads.perception.fusion = CustomFusion()
        with pytest.raises(ValueError, match="built-in"):
            BatchSimulator([BatchRunSpec(scenario=scenario, ads=ads)])

    def test_spawn_overlap_halts_batch_lane_at_step_zero(self):
        """The step-0 collision check is mirrored in the batch engine."""
        scenario = build_scenario("DS-1")
        target = next(
            actor
            for actor in scenario.world.actors
            if actor.actor_id == scenario.target_actor_id
        )
        ego = scenario.world.ego
        target.route = WaypointRoute([Waypoint(Vec2(ego.position.x, ego.position.y), 0.0)])
        ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED))
        result = BatchSimulator(
            [BatchRunSpec(scenario=scenario, ads=ads, rng=np.random.default_rng(_SIM_SEED))]
        ).run()[0]
        assert result.halted_on_collision
        assert result.steps_executed == 0
        assert len(result.events.true_delta_trace) == 1
        kinds = [(e.kind, e.step_index) for e in result.events.events]
        assert (EventKind.COLLISION, 0) in kinds
        assert (EventKind.SIMULATION_HALTED, 0) in kinds

"""The simulated LiDAR.

The LiDAR provides the spatial redundancy that defends the perception system
against single-sensor attacks (paper §III-B): it measures object positions in
the road frame independently of the camera.  Two properties matter for the
reproduction:

* vehicles return strong echoes and are detected out to a long range;
* pedestrians return weak echoes and are only detected at a much shorter
  range.  The paper attributes RoboTack's higher success rate on pedestrians
  to exactly this: "LiDAR-based object detection fails to register pedestrians
  at a higher longitudinal distance, while recognizing vehicles at the same
  distance" (§VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry import Vec2
from repro.sim.actors import ActorKind
from repro.sim.world import GroundTruthSnapshot

__all__ = ["LidarDetection", "LidarScan", "LidarSensor"]


@dataclass(frozen=True)
class LidarDetection:
    """One LiDAR-detected object, in the ego (road-aligned) frame."""

    actor_id: int
    kind: ActorKind
    #: Position of the object centre relative to the ego front bumper.
    relative_position: Vec2
    #: Velocity of the object relative to the ground (road frame).
    velocity: Vec2

    @property
    def distance_m(self) -> float:
        return self.relative_position.x

    @property
    def lateral_m(self) -> float:
        return self.relative_position.y


@dataclass(frozen=True)
class LidarScan:
    """All objects detected in one LiDAR rotation."""

    time_s: float
    frame_index: int
    detections: tuple[LidarDetection, ...] = field(default_factory=tuple)

    def detection_for_actor(self, actor_id: int) -> Optional[LidarDetection]:
        """The detection of a specific actor, if present in this scan."""
        for det in self.detections:
            if det.actor_id == actor_id:
                return det
        return None


class LidarSensor:
    """Range-limited LiDAR with class-dependent effective range and small noise."""

    def __init__(
        self,
        vehicle_range_m: float = 80.0,
        pedestrian_range_m: float = 30.0,
        position_noise_m: float = 0.08,
        rng: np.random.Generator | None = None,
    ):
        if vehicle_range_m <= 0 or pedestrian_range_m <= 0:
            raise ValueError("LiDAR ranges must be positive")
        if position_noise_m < 0:
            raise ValueError("position noise must be non-negative")
        self.vehicle_range_m = vehicle_range_m
        self.pedestrian_range_m = pedestrian_range_m
        self.position_noise_m = position_noise_m
        self._rng = rng if rng is not None else np.random.default_rng()

    def effective_range(self, kind: ActorKind) -> float:
        """Detection range for a given object class."""
        return self.vehicle_range_m if kind is ActorKind.VEHICLE else self.pedestrian_range_m

    def scan(self, snapshot: GroundTruthSnapshot) -> LidarScan:
        """Produce one LiDAR scan from the ground-truth snapshot."""
        ego = snapshot.ego
        ego_front = ego.position.x + ego.dimensions.length_m / 2.0
        detections: List[LidarDetection] = []
        for actor in snapshot.actors:
            distance = actor.position.x - ego_front
            if distance <= 0.0 or distance > self.effective_range(actor.kind):
                continue
            noise_x = self._rng.normal(0.0, self.position_noise_m)
            noise_y = self._rng.normal(0.0, self.position_noise_m)
            detections.append(
                LidarDetection(
                    actor_id=actor.actor_id,
                    kind=actor.kind,
                    relative_position=Vec2(distance + noise_x, actor.position.y - ego.position.y + noise_y),
                    velocity=actor.velocity,
                )
            )
        detections.sort(key=lambda d: d.distance_m)
        return LidarScan(
            time_s=snapshot.time_s,
            frame_index=snapshot.step_index,
            detections=tuple(detections),
        )

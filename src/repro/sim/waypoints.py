"""Waypoint routes for scripted actors.

LGSVL scenarios are defined by actor waypoints (position + speed); the same
abstraction drives the scripted (non-ego) actors here.  A route is a polyline
of waypoints; the actor travels along it at the per-segment speed, optionally
pausing at waypoints with a ``hold_s`` duration (used by DS-4's pedestrian who
walks and then stands still).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry import Vec2

__all__ = ["Waypoint", "WaypointRoute"]


@dataclass(frozen=True)
class Waypoint:
    """A single waypoint: a position, the speed towards it, and an optional hold."""

    position: Vec2
    speed_mps: float
    hold_s: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ValueError("waypoint speed must be non-negative")
        if self.hold_s < 0:
            raise ValueError("waypoint hold time must be non-negative")


class WaypointRoute:
    """Moves an actor along a polyline of waypoints.

    The actor starts at the first waypoint.  For each subsequent waypoint the
    actor moves in a straight line at that waypoint's speed, then waits for the
    waypoint's hold time before continuing.  After the last waypoint the actor
    remains stationary at its final position.
    """

    def __init__(self, waypoints: Sequence[Waypoint]):
        if len(waypoints) < 1:
            raise ValueError("a route needs at least one waypoint")
        self.waypoints: List[Waypoint] = list(waypoints)
        self._segment_index = 0
        self._position = self.waypoints[0].position
        self._velocity = Vec2.zero()
        self._hold_remaining_s = self.waypoints[0].hold_s
        # An actor that starts moving immediately (no initial hold) already has
        # its cruising velocity at t=0, matching how LGSVL scenarios spawn
        # actors at speed.
        if self._hold_remaining_s <= 0.0 and len(self.waypoints) > 1:
            first_target = self.waypoints[1]
            direction = (first_target.position - self._position).normalized()
            self._velocity = direction * first_target.speed_mps

    @property
    def position(self) -> Vec2:
        """Current position of the actor on the route."""
        return self._position

    @property
    def velocity(self) -> Vec2:
        """Current velocity of the actor on the route."""
        return self._velocity

    @property
    def finished(self) -> bool:
        """Whether the actor has reached the final waypoint."""
        return self._segment_index >= len(self.waypoints) - 1 and self._hold_remaining_s <= 0.0

    def advance(self, dt: float) -> None:
        """Advance the actor along the route by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        remaining = dt
        while remaining > 1e-12:
            if self._hold_remaining_s > 0.0:
                waited = min(self._hold_remaining_s, remaining)
                self._hold_remaining_s -= waited
                remaining -= waited
                self._velocity = Vec2.zero()
                continue
            if self._segment_index >= len(self.waypoints) - 1:
                self._velocity = Vec2.zero()
                return
            target = self.waypoints[self._segment_index + 1]
            to_target = target.position - self._position
            distance = to_target.norm()
            speed = target.speed_mps
            if speed <= 0.0 or distance <= 1e-9:
                # Zero-speed segment: snap to the target and continue.
                self._position = target.position
                self._segment_index += 1
                self._hold_remaining_s = target.hold_s
                self._velocity = Vec2.zero()
                continue
            time_to_target = distance / speed
            direction = to_target.normalized()
            self._velocity = direction * speed
            if time_to_target <= remaining:
                self._position = target.position
                remaining -= time_to_target
                self._segment_index += 1
                self._hold_remaining_s = target.hold_s
            else:
                self._position = self._position + direction * (speed * remaining)
                remaining = 0.0
        if self.finished:
            self._velocity = Vec2.zero()

    @staticmethod
    def stationary(position: Vec2) -> "WaypointRoute":
        """A route that stays at ``position`` forever (e.g. a parked vehicle)."""
        return WaypointRoute([Waypoint(position=position, speed_mps=0.0)])

    @staticmethod
    def straight_line(
        start: Vec2, end: Vec2, speed_mps: float, hold_at_end_s: float = 0.0
    ) -> "WaypointRoute":
        """A two-waypoint straight route from ``start`` to ``end``."""
        return WaypointRoute(
            [
                Waypoint(position=start, speed_mps=0.0),
                Waypoint(position=end, speed_mps=speed_mps, hold_s=hold_at_end_s),
            ]
        )

"""Tests for the 2-D vector primitive."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Vec2

finite = st.floats(-1e6, 1e6, allow_nan=False)


class TestArithmetic:
    def test_addition(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_subtraction(self):
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_division(self):
        assert Vec2(2, 4) / 2 == Vec2(1, 2)

    def test_division_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(1, 1) / 0

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)


class TestGeometry:
    def test_norm_pythagorean(self):
        assert Vec2(3, 4).norm() == 5.0

    def test_distance_is_symmetric(self):
        a, b = Vec2(0, 0), Vec2(6, 8)
        assert a.distance_to(b) == b.distance_to(a) == 10.0

    def test_dot_product(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11.0

    def test_dot_of_perpendicular_vectors_is_zero(self):
        assert Vec2(1, 0).dot(Vec2(0, 5)) == 0.0

    def test_normalized_has_unit_length(self):
        assert Vec2(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_stays_zero(self):
        assert Vec2.zero().normalized() == Vec2.zero()

    def test_as_tuple(self):
        assert Vec2(1.5, -2.5).as_tuple() == (1.5, -2.5)


class TestProperties:
    @given(finite, finite, finite, finite)
    def test_addition_commutes(self, x1, y1, x2, y2):
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        assert (a + b) == (b + a)

    @given(finite, finite)
    def test_norm_non_negative(self, x, y):
        assert Vec2(x, y).norm() >= 0.0

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(finite, finite)
    def test_subtracting_self_gives_zero(self, x, y):
        v = Vec2(x, y)
        assert (v - v) == Vec2(0.0, 0.0)

    @given(finite, finite)
    def test_norm_matches_hypot(self, x, y):
        assert Vec2(x, y).norm() == pytest.approx(math.hypot(x, y))

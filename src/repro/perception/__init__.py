"""The AV perception system (the attack's target).

This package reproduces the tracking-by-detection pipeline of paper §II-B and
Fig. 1:

* a simulated YOLOv3-class object detector with calibrated Gaussian
  bounding-box noise and exponential misdetection bursts
  (:mod:`repro.perception.detection`);
* per-object Kalman-filter trackers ("F" in Fig. 1)
  (:mod:`repro.perception.kalman`, :mod:`repro.perception.tracker`);
* Hungarian matching of detections to trackers ("M" in Fig. 1)
  (:mod:`repro.perception.hungarian`);
* the multi-object tracker that ties them together
  (:mod:`repro.perception.mot`);
* the image-to-world transformation ("T" in Fig. 1)
  (:mod:`repro.perception.transforms`);
* camera/LiDAR sensor fusion (:mod:`repro.perception.fusion`);
* and the full perception system facade (:mod:`repro.perception.pipeline`).
"""

from repro.perception.detection import Detection, DetectorNoiseModel, SimulatedDetector
from repro.perception.fusion import FusedObstacle, FusionConfig, SensorFusion
from repro.perception.hungarian import hungarian_assignment
from repro.perception.kalman import BoundingBoxKalmanFilter, KalmanFilter
from repro.perception.mot import MultiObjectTracker, TrackerConfig
from repro.perception.pipeline import PerceptionConfig, PerceptionOutput, PerceptionSystem
from repro.perception.tracker import ObjectTrack
from repro.perception.transforms import ImageToWorldTransform, WorldObjectEstimate

__all__ = [
    "Detection",
    "DetectorNoiseModel",
    "SimulatedDetector",
    "FusedObstacle",
    "FusionConfig",
    "SensorFusion",
    "hungarian_assignment",
    "BoundingBoxKalmanFilter",
    "KalmanFilter",
    "MultiObjectTracker",
    "TrackerConfig",
    "PerceptionConfig",
    "PerceptionOutput",
    "PerceptionSystem",
    "ObjectTrack",
    "ImageToWorldTransform",
    "WorldObjectEstimate",
]

"""Road and lane model.

The experiments take place on a straight two-lane road with an adjacent
parking lane (Borregas Avenue in the paper).  The road frame is aligned with
the ego vehicle's direction of travel: ``x`` is longitudinal and ``y`` lateral.

Lane indices used by the scenario builders:

* ``ego``      - the ego vehicle's lane, centred at ``y = 0``;
* ``opposite`` - the adjacent traffic lane to the left (``y = +lane_width``);
* ``parking``  - the parking lane to the right (``y = -lane_width``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Lane", "Road"]


@dataclass(frozen=True)
class Lane:
    """A longitudinal lane described by its centre line and width."""

    name: str
    center_y: float
    width: float = 3.5

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("lane width must be positive")

    @property
    def y_min(self) -> float:
        return self.center_y - self.width / 2.0

    @property
    def y_max(self) -> float:
        return self.center_y + self.width / 2.0

    def contains_lateral(self, y: float, margin: float = 0.0) -> bool:
        """Whether lateral coordinate ``y`` lies within the lane (plus margin)."""
        return (self.y_min - margin) <= y <= (self.y_max + margin)


@dataclass
class Road:
    """A straight road composed of named lanes."""

    lane_width: float = 3.5
    speed_limit_mps: float = 50.0 / 3.6
    lanes: Dict[str, Lane] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lanes:
            self.lanes = {
                "ego": Lane("ego", center_y=0.0, width=self.lane_width),
                "opposite": Lane("opposite", center_y=self.lane_width, width=self.lane_width),
                "parking": Lane("parking", center_y=-self.lane_width, width=self.lane_width),
            }

    @property
    def ego_lane(self) -> Lane:
        return self.lanes["ego"]

    def lane(self, name: str) -> Lane:
        """Look up a lane by name."""
        if name not in self.lanes:
            raise KeyError(f"unknown lane {name!r}; available: {sorted(self.lanes)}")
        return self.lanes[name]

    def lane_of(self, y: float) -> Lane | None:
        """Return the lane containing lateral coordinate ``y``, if any."""
        for lane in self.lanes.values():
            if lane.contains_lateral(y):
                return lane
        return None

    def in_ego_lane(self, y: float, margin: float = 0.0) -> bool:
        """Whether lateral coordinate ``y`` is inside the ego lane."""
        return self.ego_lane.contains_lateral(y, margin=margin)

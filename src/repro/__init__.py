"""repro — a reproduction of "ML-Driven Malware that Targets AV Safety" (DSN 2020).

The package is organized as:

* :mod:`repro.core` — RoboTack, the paper's smart malware (scenario matcher,
  safety hijacker, trajectory hijacker) plus the random-attack baselines;
* :mod:`repro.sim` — the driving-scenario simulation substrate (stand-in for
  LGSVL) with the five scenarios DS-1 … DS-5;
* :mod:`repro.sensors` — camera, LiDAR, and GPS/IMU models;
* :mod:`repro.perception` — the victim perception system: simulated YOLOv3
  detector, Kalman-filter trackers, Hungarian matching, sensor fusion;
* :mod:`repro.ads` — the Apollo-like driving agent: planning, PID control,
  and the safety model (dstop, dsafe, δ);
* :mod:`repro.nn` — the pure-NumPy feed-forward network used by the safety
  hijacker;
* :mod:`repro.experiments` — campaigns, metrics, and the generators for every
  table and figure of the paper's evaluation;
* :mod:`repro.utils`, :mod:`repro.geometry` — shared utilities and geometric
  primitives.

Quickstart::

    from repro.core import AttackVector, RoboTack, SafetyHijacker, KinematicSafetyPredictor
    from repro.experiments import (
        AttackerKind, CampaignConfig, PredictorKind, run_campaign,
    )

    config = CampaignConfig(
        campaign_id="DS-2-Disappear-R",
        scenario_id="DS-2",
        attacker=AttackerKind.ROBOTACK,
        vector=AttackVector.DISAPPEAR,
        n_runs=10,
        predictor=PredictorKind.KINEMATIC,
    )
    result = run_campaign(config)
    print(result.emergency_braking_rate, result.accident_rate)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

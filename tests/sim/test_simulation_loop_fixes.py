"""Regression tests for the simulation-loop bookkeeping fixes.

Pins the three loop-level guarantees (in both engines where applicable):

* a scenario whose actors spawn already overlapping halts at step 0 instead
  of driving the ego through them for the full duration;
* on a collision halt the impact snapshot still gets a trace entry, so the
  traces are exactly one entry longer than ``steps_executed`` and
  ``min_true_delta_from_attack`` sees the value at impact;
* a run that ends (duration elapsed or collision halt) while an attack is
  still active closes the interval with a final ``ATTACK_ENDED`` event.
"""

import numpy as np
import pytest

from repro.experiments.campaign import build_ads_agent
from repro.geometry import Vec2
from repro.sim.batch import BatchRunSpec, BatchSimulator
from repro.sim.events import EventKind
from repro.sim.scenarios import build_scenario
from repro.sim.simulator import Simulator
from repro.sim.waypoints import Waypoint, WaypointRoute

_ADS_SEED = 1
_SIM_SEED = 2


def _move_target(scenario, x, y):
    """Park the scenario's target actor at (x, y), stationary."""
    target = next(
        actor
        for actor in scenario.world.actors
        if actor.actor_id == scenario.target_actor_id
    )
    target.route = WaypointRoute([Waypoint(Vec2(x, y), 0.0)])
    return target


def _overlap_scenario():
    scenario = build_scenario("DS-1")
    ego = scenario.world.ego
    _move_target(scenario, ego.position.x, ego.position.y)
    return scenario


def _imminent_collision_scenario():
    """A stationary vehicle parked inside the ego's stopping distance."""
    scenario = build_scenario("DS-1")
    ego = scenario.world.ego
    _move_target(scenario, ego.position.x + 10.0, ego.position.y)
    return scenario


class _AlwaysOnAttacker:
    """Minimal CameraAttacker whose attack never ends on its own."""

    target_actor_id = None

    def __init__(self):
        self.attack_active = False

    def process_frame(self, frame, ego_speed_mps, dt):
        self.attack_active = True
        return frame


def _kinds(result):
    return [(event.kind, event.step_index) for event in result.events.events]


class TestSpawnOverlapHalt:
    def test_scalar_halts_at_step_zero(self):
        scenario = _overlap_scenario()
        ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED))
        result = Simulator(scenario, ads, rng=np.random.default_rng(_SIM_SEED)).run()
        assert result.halted_on_collision
        assert result.steps_executed == 0
        assert len(result.events.true_delta_trace) == 1
        assert (EventKind.COLLISION, 0) in _kinds(result)
        assert (EventKind.SIMULATION_HALTED, 0) in _kinds(result)


class TestCollisionStepTraceEntry:
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_impact_snapshot_is_traced(self, engine):
        scenario = _imminent_collision_scenario()
        ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED))
        rng = np.random.default_rng(_SIM_SEED)
        if engine == "scalar":
            result = Simulator(scenario, ads, rng=rng).run()
        else:
            result = BatchSimulator(
                [BatchRunSpec(scenario=scenario, ads=ads, rng=rng)]
            ).run()[0]
        assert result.halted_on_collision
        assert result.steps_executed > 0
        # One trace entry per pre-step snapshot plus one for the impact
        # snapshot the loop previously dropped on the floor.
        assert len(result.events.true_delta_trace) == result.steps_executed + 1
        assert len(result.events.perceived_delta_trace) == result.steps_executed + 1
        assert len(result.events.ego_speed_trace) == result.steps_executed + 1
        assert (EventKind.COLLISION, result.steps_executed) in _kinds(result)
        # The impact entry reflects the braking ego at the moment of contact.
        assert result.events.ego_speed_trace[-1] < result.events.ego_speed_trace[0]


class TestOpenAttackIntervalClosed:
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_run_end_closes_active_attack(self, engine):
        scenario = build_scenario("DS-1")
        ads = build_ads_agent(scenario, np.random.default_rng(_ADS_SEED))
        attacker = _AlwaysOnAttacker()
        rng = np.random.default_rng(_SIM_SEED)
        if engine == "scalar":
            result = Simulator(scenario, ads, attacker=attacker, rng=rng).run()
        else:
            result = BatchSimulator(
                [BatchRunSpec(scenario=scenario, ads=ads, attacker=attacker, rng=rng)]
            ).run()[0]
        kinds = [event.kind for event in result.events.events]
        assert kinds.count(EventKind.ATTACK_STARTED) == 1
        assert kinds.count(EventKind.ATTACK_ENDED) == 1
        # Started and ended are properly ordered and the interval is closed at
        # the final snapshot, not left dangling.
        started = next(
            e for e in result.events.events if e.kind is EventKind.ATTACK_STARTED
        )
        ended = next(
            e for e in result.events.events if e.kind is EventKind.ATTACK_ENDED
        )
        assert started.step_index < ended.step_index
        assert ended.step_index == result.steps_executed

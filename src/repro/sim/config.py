"""Simulation configuration.

The defaults mirror the experimental setup of paper §V: the camera runs at
15 Hz (one simulation step per camera frame), LiDAR at 10 Hz, the road is
Borregas-Avenue-like with a 50 kph limit, and the LGSVL limitation that halts
simulations when two actors come within 4 m of each other is emulated by the
``halt_gap_m`` parameter (which is also the paper's accident threshold for the
safety potential).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Global parameters of a simulation run."""

    #: Camera frame rate; one simulation step per camera frame (paper §V-B).
    camera_rate_hz: float = 15.0
    #: LiDAR rotation rate (paper §V-B).
    lidar_rate_hz: float = 10.0
    #: Maximum simulated duration of a run, in seconds.
    max_duration_s: float = 40.0
    #: Bumper-to-bumper gap below which the simulation halts (LGSVL limitation
    #: discussed under paper Definition 5); also the accident threshold on the
    #: safety potential (delta < 4 m counts as an accident).
    halt_gap_m: float = 4.0
    #: Comfortable deceleration used for the stopping-distance definition.
    comfortable_decel_mps2: float = 3.0
    #: Maximum (emergency) deceleration of the ego vehicle.
    max_decel_mps2: float = 6.0
    #: Maximum acceleration of the ego vehicle.
    max_accel_mps2: float = 2.0

    def __post_init__(self) -> None:
        if self.camera_rate_hz <= 0 or self.lidar_rate_hz <= 0:
            raise ValueError("sensor rates must be positive")
        if self.max_duration_s <= 0:
            raise ValueError("max_duration_s must be positive")
        if self.halt_gap_m < 0:
            raise ValueError("halt_gap_m must be non-negative")
        if self.comfortable_decel_mps2 <= 0 or self.max_decel_mps2 <= 0:
            raise ValueError("decelerations must be positive")
        if self.max_decel_mps2 < self.comfortable_decel_mps2:
            raise ValueError("max deceleration must be at least the comfortable deceleration")

    @property
    def dt(self) -> float:
        """Simulation time step (one camera frame)."""
        return 1.0 / self.camera_rate_hz

    @property
    def max_steps(self) -> int:
        """Number of simulation steps in a full-length run."""
        return int(round(self.max_duration_s * self.camera_rate_hz))

    def lidar_due(self, step_index: int) -> bool:
        """Whether a LiDAR scan completes on this simulation step.

        The LiDAR runs slower than the camera, so scans are produced on the
        steps where the integer count of completed rotations increases.
        """
        if step_index < 0:
            raise ValueError("step_index must be non-negative")
        t_now = step_index * self.dt
        t_prev = (step_index - 1) * self.dt
        return int(t_now * self.lidar_rate_hz) > int(t_prev * self.lidar_rate_hz)

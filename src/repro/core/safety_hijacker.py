"""The safety hijacker: deciding *when* to attack (paper §IV-B).

The safety hijacker approximates an oracle ``f_alpha`` that predicts the
safety potential ``delta_{t+k}`` after attacking for ``k`` consecutive frames,
given the current safety potential and the target's relative velocity and
acceleration.  The paper approximates the oracle with a per-attack-vector
feed-forward neural network (100, 100, 50 neurons, ReLU, dropout 0.1) trained
on simulated attack responses; this module provides:

* :class:`NeuralSafetyPredictor` — the paper's NN predictor (built on
  :mod:`repro.nn`), with input normalization;
* :class:`KinematicSafetyPredictor` — a closed-form constant-acceleration
  predictor, used as a fast fallback and as an ablation of the NN;
* :class:`SafetyHijacker` — the decision logic: attack only when the predicted
  safety potential falls below the launch threshold within the stealth bound
  ``K <= Kmax``, finding the minimal ``k`` by binary search (valid because the
  predicted delta is non-increasing in ``k`` for the scenarios considered,
  paper Eq. 2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Protocol, Union

import numpy as np

from repro.core.attack_vectors import AttackVector
from repro.nn import FeedForwardNetwork
from repro.sim.actors import ActorKind

__all__ = [
    "AttackFeatures",
    "AttackDecision",
    "SafetyPredictor",
    "KinematicSafetyPredictor",
    "NeuralSafetyPredictor",
    "SafetyHijackerConfig",
    "SafetyHijacker",
]


@dataclass(frozen=True)
class AttackFeatures:
    """Kinematic inputs to the safety-potential oracle at decision time ``t``."""

    #: Safety potential (m) as estimated by the malware's own perception.
    delta_m: float
    #: Relative longitudinal velocity of the target (m/s, negative when closing).
    relative_velocity_mps: float
    #: Relative longitudinal acceleration of the target (m/s^2).
    relative_acceleration_mps2: float

    def as_array(self, k: int) -> np.ndarray:
        """The NN input vector ``[delta, v_rel, a_rel, k]``."""
        return np.array(
            [self.delta_m, self.relative_velocity_mps, self.relative_acceleration_mps2, float(k)]
        )


@dataclass(frozen=True)
class AttackDecision:
    """Outcome of the safety hijacker for one candidate attack."""

    attack: bool
    #: Number of consecutive frames the attack must be maintained (0 when not attacking).
    k_frames: int
    #: Predicted safety potential after ``k_frames`` of attack.
    predicted_delta_m: float


class SafetyPredictor(Protocol):
    """Interface of the oracle ``f_alpha``: predict ``delta_{t+k}``."""

    def predict_delta(self, features: AttackFeatures, k: int) -> float:
        """Predicted safety potential after ``k`` frames of attack."""
        ...


class KinematicSafetyPredictor:
    """Closed-form constant-acceleration approximation of the oracle.

    During a `Move_Out`/`Disappear` attack the EV stops reacting to the target
    and accelerates back towards its cruise speed, so the gap closes at the
    current relative velocity plus an extra closing acceleration.  During a
    `Move_In` attack the EV brakes, but the quantity of interest is the
    *perceived* safety potential towards the faked in-path obstacle, which
    shrinks with the current closing speed.
    """

    def __init__(
        self,
        vector: AttackVector,
        frame_dt_s: float = 1.0 / 15.0,
        ego_free_acceleration_mps2: float = 1.0,
    ):
        self.vector = vector
        self.frame_dt_s = frame_dt_s
        self.ego_free_acceleration_mps2 = ego_free_acceleration_mps2

    def predict_delta(self, features: AttackFeatures, k: int) -> float:
        horizon_s = max(0, k) * self.frame_dt_s
        closing_velocity = features.relative_velocity_mps
        closing_acceleration = features.relative_acceleration_mps2
        if self.vector is not AttackVector.MOVE_IN:
            # The EV speeds back up towards cruise while the target is hidden
            # or believed to be leaving the lane.
            closing_acceleration -= self.ego_free_acceleration_mps2
        predicted = (
            features.delta_m
            + closing_velocity * horizon_s
            + 0.5 * closing_acceleration * horizon_s * horizon_s
        )
        return float(predicted)


class NeuralSafetyPredictor:
    """The paper's neural oracle with input and target standardization."""

    INPUT_DIM = 4

    def __init__(
        self,
        network: FeedForwardNetwork,
        feature_means: np.ndarray,
        feature_stds: np.ndarray,
        target_mean: float = 0.0,
        target_std: float = 1.0,
    ):
        feature_means = np.asarray(feature_means, dtype=float).reshape(-1)
        feature_stds = np.asarray(feature_stds, dtype=float).reshape(-1)
        if feature_means.shape[0] != self.INPUT_DIM or feature_stds.shape[0] != self.INPUT_DIM:
            raise ValueError(f"normalization vectors must have length {self.INPUT_DIM}")
        self.network = network
        self.feature_means = feature_means
        self.feature_stds = np.where(feature_stds <= 0, 1.0, feature_stds)
        self.target_mean = float(target_mean)
        self.target_std = float(target_std) if target_std > 0 else 1.0

    @classmethod
    def untrained(cls, rng: np.random.Generator | None = None) -> "NeuralSafetyPredictor":
        """A predictor with the paper's architecture and identity normalization."""
        network = FeedForwardNetwork.safety_hijacker_architecture(cls.INPUT_DIM, rng=rng)
        return cls(network, np.zeros(cls.INPUT_DIM), np.ones(cls.INPUT_DIM))

    def normalize(self, raw_inputs: np.ndarray) -> np.ndarray:
        """Standardize raw inputs with the training-set statistics."""
        return (np.atleast_2d(raw_inputs) - self.feature_means) / self.feature_stds

    def predict_delta(self, features: AttackFeatures, k: int) -> float:
        inputs = self.normalize(features.as_array(k))
        normalized = float(self.network.predict(inputs)[0, 0])
        return normalized * self.target_std + self.target_mean

    def predict_batch(self, raw_inputs: np.ndarray) -> np.ndarray:
        """Vectorized prediction over raw (unnormalized) input rows."""
        normalized = self.network.predict(self.normalize(raw_inputs)).reshape(-1)
        return normalized * self.target_std + self.target_mean

    # ------------------------------------------------------------------ #
    # Serialization — the trained oracle as a durable artifact
    # ------------------------------------------------------------------ #

    #: Format tag of the predictor document; readers reject other formats.
    FORMAT = "repro-neural-safety-predictor"
    #: Bump when the predictor schema changes incompatibly.
    VERSION = 1

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the predictor (network + baked-in standardization) under ``path``.

        Layout: ``<path>/predictor.json`` holds the normalization statistics
        (JSON floats round-trip exactly in Python) and ``<path>/network/``
        holds the network saved by :meth:`FeedForwardNetwork.save`.  A loaded
        copy (:meth:`load`) predicts bit-identically.
        """
        from repro.runtime.cache import atomic_publish

        directory = Path(path).expanduser()
        directory.mkdir(parents=True, exist_ok=True)
        self.network.save(directory / "network")
        payload = {
            "format": self.FORMAT,
            "version": self.VERSION,
            "feature_means": [float(value) for value in self.feature_means],
            "feature_stds": [float(value) for value in self.feature_stds],
            "target_mean": self.target_mean,
            "target_std": self.target_std,
        }
        atomic_publish(
            directory / "predictor.json",
            lambda handle: handle.write(json.dumps(payload, indent=2).encode("utf-8")),
        )
        return directory

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NeuralSafetyPredictor":
        """Rebuild a predictor previously persisted with :meth:`save`."""
        directory = Path(path).expanduser()
        with (directory / "predictor.json").open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != cls.FORMAT:
            raise ValueError(
                f"not a serialized predictor: format={payload.get('format')!r}"
            )
        version = int(payload.get("version", 0))
        if version > cls.VERSION:
            raise ValueError(
                f"predictor saved by a newer serialization version "
                f"({version} > {cls.VERSION})"
            )
        return cls(
            FeedForwardNetwork.load(directory / "network"),
            np.asarray(payload["feature_means"], dtype=float),
            np.asarray(payload["feature_stds"], dtype=float),
            target_mean=float(payload["target_mean"]),
            target_std=float(payload["target_std"]),
        )


def _default_launch_thresholds() -> Dict[AttackVector, float]:
    # Move_Out / Disappear: launch only when the post-attack safety potential
    # is predicted to fall to the accident level (paper §IV-B: "ideally, the
    # malware should attack when gamma = 4").  Move_In aims at forcing
    # emergency braking rather than reducing the true safety potential, so its
    # threshold applies to the perceived safety potential of the faked in-path
    # obstacle at the moment it appears to the planner.
    return {
        AttackVector.MOVE_OUT: 4.0,
        AttackVector.DISAPPEAR: 4.0,
        AttackVector.MOVE_IN: 3.0,
    }


def _default_k_max() -> Dict[ActorKind, int]:
    # The stealth bound Kmax is the 99th percentile of the characterized
    # continuous-misdetection distribution (paper Fig. 5a-b): about 31 frames
    # for pedestrians and 59 frames for vehicles.
    return {ActorKind.PEDESTRIAN: 31, ActorKind.VEHICLE: 59}


@dataclass(frozen=True)
class SafetyHijackerConfig:
    """Decision thresholds of the safety hijacker."""

    launch_threshold_m: Dict[AttackVector, float] = field(
        default_factory=_default_launch_thresholds
    )
    k_max_frames: Dict[ActorKind, int] = field(default_factory=_default_k_max)
    #: Smallest attack window worth launching.
    k_min_frames: int = 12
    #: How the minimal attack window is located: ``"scan"`` evaluates a coarse
    #: grid of candidate windows and requires two neighbouring windows to both
    #: clear the threshold (robust to oracle error); ``"binary"`` is the
    #: paper's O(log Kmax) binary search, valid when the predicted safety
    #: potential is monotone non-increasing in k.
    search_method: str = "scan"
    #: Step between candidate windows evaluated by the scan search.
    scan_step_frames: int = 3

    def __post_init__(self) -> None:
        if self.search_method not in ("scan", "binary"):
            raise ValueError("search_method must be 'scan' or 'binary'")
        if self.k_min_frames < 1 or self.scan_step_frames < 1:
            raise ValueError("k_min_frames and scan_step_frames must be positive")

    def threshold_for(self, vector: AttackVector) -> float:
        return self.launch_threshold_m[vector]

    def k_max_for(self, kind: ActorKind) -> int:
        return self.k_max_frames[kind]


class SafetyHijacker:
    """Decides when to attack and for how many frames."""

    def __init__(self, predictor: SafetyPredictor, config: SafetyHijackerConfig | None = None):
        self.predictor = predictor
        self.config = config or SafetyHijackerConfig()

    def decide(
        self, features: AttackFeatures, vector: AttackVector, target_kind: ActorKind
    ) -> AttackDecision:
        """Return the attack/no-attack decision and the attack window ``K``.

        The decision follows paper Eq. (2): attack only if some ``k <= Kmax``
        yields a predicted safety potential below the launch threshold, and use
        the smallest such ``k``.
        """
        k_max = self.config.k_max_for(target_kind)
        threshold = self.config.threshold_for(vector)
        predicted_at_kmax = self.predictor.predict_delta(features, k_max)
        if predicted_at_kmax > threshold:
            return AttackDecision(attack=False, k_frames=0, predicted_delta_m=predicted_at_kmax)
        if self.config.search_method == "binary":
            k, predicted = self._binary_search(features, threshold, k_max)
        else:
            k, predicted = self._scan_search(features, threshold, k_max, predicted_at_kmax)
        return AttackDecision(attack=True, k_frames=k, predicted_delta_m=predicted)

    def _binary_search(
        self, features: AttackFeatures, threshold: float, k_max: int
    ) -> tuple[int, float]:
        """Paper Eq. (2): minimal k via binary search under monotonicity."""
        low, high = self.config.k_min_frames, k_max
        best_k = k_max
        best_prediction = self.predictor.predict_delta(features, k_max)
        while low <= high:
            mid = (low + high) // 2
            predicted = self.predictor.predict_delta(features, mid)
            if predicted <= threshold:
                best_k = mid
                best_prediction = predicted
                high = mid - 1
            else:
                low = mid + 1
        return best_k, best_prediction

    def _scan_search(
        self, features: AttackFeatures, threshold: float, k_max: int, predicted_at_kmax: float
    ) -> tuple[int, float]:
        """Minimal k via a coarse scan, requiring a consistent neighbourhood.

        A candidate window ``k`` is accepted only when both ``k`` and
        ``k + scan_step`` clear the threshold, which filters out spurious dips
        of the learned oracle.
        """
        step = self.config.scan_step_frames
        for k in range(self.config.k_min_frames, k_max, step):
            predicted = self.predictor.predict_delta(features, k)
            if predicted > threshold:
                continue
            neighbour = self.predictor.predict_delta(features, min(k + step, k_max))
            if neighbour <= threshold:
                return k, predicted
        return k_max, predicted_at_kmax

"""RoboTack: the per-frame attack procedure of paper Algorithm 1.

RoboTack sits as a man-in-the-middle on the camera link.  Every camera frame
it:

1. reconstructs its own approximate world state ``S_hat_t`` with a camera-only
   perception pipeline (paper Phase 2, step 1);
2. while no attack is active, identifies the target object (the object closest
   to the EV), estimates the safety potential and the target's relative
   kinematics, and asks the scenario matcher for an applicable attack vector
   (Phase 2, steps 2-3);
3. asks the safety hijacker whether *now* is the opportune moment, and for how
   many frames ``K`` the attack must be maintained (Phase 2, step 4);
4. once attacking, lets the trajectory hijacker perturb the camera frame for
   ``K`` consecutive frames (Phase 3).

While an attack is active the malware's own perception consumes the *perturbed*
frames so that its tracker state mirrors the victim's tracker state — the
``s_hat_{t-1}`` used by the association constraint of paper Eq. (4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.ads.safety import SafetyModel
from repro.core.attack_vectors import AttackVector
from repro.core.safety_hijacker import AttackDecision, AttackFeatures, SafetyHijacker
from repro.core.scenario_matcher import ScenarioMatcher, ScenarioMatcherConfig
from repro.core.trajectory_hijacker import TrajectoryHijacker, TrajectoryHijackerConfig
from repro.perception.pipeline import PerceptionConfig, PerceptionSystem
from repro.perception.transforms import WorldObjectEstimate
from repro.sensors.camera import CameraFrame
from repro.sim.actors import ActorKind
from repro.sim.road import Road

__all__ = ["AttackRecord", "RoboTackConfig", "CameraMitmAttackerBase", "RoboTack"]

#: Nominal half-lengths used to convert centre distance into a bumper gap.
_HALF_LENGTH_M = {ActorKind.VEHICLE: 2.3, ActorKind.PEDESTRIAN: 0.25}


@dataclass
class AttackRecord:
    """Bookkeeping of one attack episode (consumed by the evaluation harness)."""

    vector: Optional[AttackVector] = None
    target_actor_id: Optional[int] = None
    target_kind: Optional[ActorKind] = None
    start_frame: Optional[int] = None
    planned_k_frames: int = 0
    frames_perturbed: int = 0
    shift_frames_k_prime: int = 0
    predicted_delta_m: float = float("nan")
    features_at_launch: Optional[AttackFeatures] = None

    @property
    def launched(self) -> bool:
        return self.start_frame is not None


@dataclass(frozen=True)
class RoboTackConfig:
    """Configuration shared by RoboTack and its baselines."""

    #: Attack vectors the scenario matcher may select (campaigns usually pin one).
    allowed_vectors: Sequence[AttackVector] = tuple(AttackVector)
    #: Only one attack episode is mounted per run (as in the paper's campaigns).
    allow_reattack: bool = False
    #: Number of consecutive frames for which the safety hijacker must keep
    #: recommending an attack before the attack is actually launched; guards
    #: against launching on a single noisy kinematic estimate.
    launch_confirmation_frames: int = 2
    matcher: ScenarioMatcherConfig = field(default_factory=ScenarioMatcherConfig)
    hijacker: TrajectoryHijackerConfig = field(default_factory=TrajectoryHijackerConfig)
    perception: PerceptionConfig = field(
        default_factory=lambda: PerceptionConfig(use_lidar=False)
    )

    @classmethod
    def for_detector(
        cls,
        allowed_vectors: Sequence[AttackVector],
        detector_config=None,
    ) -> "RoboTackConfig":
        """An attacker configuration consistent with a victim detector model.

        The attack's stealth bounds and the malware's own camera-only
        reconstruction are by construction derived from the victim detector's
        noise model; scenarios that override it (degraded sensing) must
        recalibrate the attacker through this single factory so training-time
        and evaluation-time attackers can never drift apart.
        """
        if detector_config is None:
            return cls(allowed_vectors=tuple(allowed_vectors))
        return cls(
            allowed_vectors=tuple(allowed_vectors),
            hijacker=TrajectoryHijackerConfig(detector=detector_config),
            perception=PerceptionConfig(detector=detector_config, use_lidar=False),
        )


class CameraMitmAttackerBase:
    """Shared machinery of RoboTack and its baselines.

    Owns the camera-only reconstruction pipeline and the trajectory hijacker,
    and implements the per-frame bookkeeping; subclasses only decide *whether*
    and *how long* to attack via :meth:`_maybe_launch`.
    """

    def __init__(
        self,
        road: Road,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.road = road
        self.config = config or RoboTackConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.perception = PerceptionSystem(self.config.perception, rng=self._rng)
        self.trajectory_hijacker = TrajectoryHijacker(road, self.config.hijacker)
        self.safety_model = SafetyModel()
        self.record = AttackRecord()
        self._attack_active = False
        self._remaining_frames = 0
        self._attack_completed = False
        self._frame_count = 0

    # ------------------------------------------------------------------ #
    # CameraAttacker protocol
    # ------------------------------------------------------------------ #

    @property
    def attack_active(self) -> bool:
        return self._attack_active

    @property
    def target_actor_id(self) -> Optional[int]:
        return self.record.target_actor_id

    def process_frame(
        self, frame: CameraFrame, ego_speed_mps: float, dt: float
    ) -> CameraFrame:
        """Observe the clean frame, maybe perturb it, and return what the ADS sees."""
        self._frame_count += 1
        if self._attack_active:
            delivered = self._continue_attack(frame)
            # Mirror the victim's tracker by feeding the perturbed frame to the
            # malware's own reconstruction.
            self.perception.process(delivered, ego_speed_mps=ego_speed_mps)
            return delivered

        own_view = self.perception.process(frame, ego_speed_mps=ego_speed_mps)
        if self._attack_completed and not self.config.allow_reattack:
            return frame

        launch = self._maybe_launch(own_view.world_estimates, ego_speed_mps)
        if launch is None:
            return frame
        vector, k_frames, target, features, predicted = launch
        self._begin_attack(vector, k_frames, target, features, predicted)
        delivered = self._continue_attack(frame)
        return delivered

    # ------------------------------------------------------------------ #
    # Episode management
    # ------------------------------------------------------------------ #

    def _begin_attack(
        self,
        vector: AttackVector,
        k_frames: int,
        target: WorldObjectEstimate,
        features: Optional[AttackFeatures],
        predicted_delta: float,
    ) -> None:
        self.record = AttackRecord(
            vector=vector,
            target_actor_id=target.actor_id,
            target_kind=target.kind,
            start_frame=self._frame_count,
            planned_k_frames=k_frames,
            predicted_delta_m=predicted_delta,
            features_at_launch=features,
        )
        self.trajectory_hijacker.begin(
            vector=vector,
            target_actor_id=target.actor_id,
            target_lateral_m=target.lateral_m,
            target_kind=target.kind,
        )
        self._attack_active = True
        self._remaining_frames = max(1, k_frames)

    def _continue_attack(self, frame: CameraFrame) -> CameraFrame:
        target_track = None
        if self.record.target_actor_id is not None:
            target_track = self.perception.tracker.track_for_actor(self.record.target_actor_id)
        delivered = self.trajectory_hijacker.perturb_frame(frame, target_track)
        self._remaining_frames -= 1
        self.record.frames_perturbed = self.trajectory_hijacker.frames_perturbed
        self.record.shift_frames_k_prime = self.trajectory_hijacker.shift_frames_k_prime
        if self._remaining_frames <= 0:
            self._attack_active = False
            self._attack_completed = True
            self.trajectory_hijacker.end()
        return delivered

    # ------------------------------------------------------------------ #
    # Target/feature extraction shared by subclasses
    # ------------------------------------------------------------------ #

    def _closest_target(
        self, estimates: Sequence[WorldObjectEstimate]
    ) -> Optional[WorldObjectEstimate]:
        ahead = [e for e in estimates if e.distance_m > 0]
        if not ahead:
            return None
        return min(ahead, key=lambda e: e.distance_m)

    def _features_for(
        self, estimate: WorldObjectEstimate, ego_speed_mps: float
    ) -> AttackFeatures:
        gap = estimate.distance_m - _HALF_LENGTH_M[estimate.kind]
        delta = self.safety_model.safety_potential(gap, ego_speed_mps)
        return AttackFeatures(
            delta_m=delta,
            relative_velocity_mps=estimate.relative_longitudinal_velocity_mps,
            relative_acceleration_mps2=estimate.relative_longitudinal_acceleration_mps2,
        )

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        """Subclasses decide whether to start an attack this frame."""
        raise NotImplementedError


class RoboTack(CameraMitmAttackerBase):
    """The full smart malware: scenario matcher + safety hijacker + trajectory hijacker."""

    def __init__(
        self,
        road: Road,
        safety_hijacker: SafetyHijacker,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(road, config, rng)
        self.safety_hijacker = safety_hijacker
        self.scenario_matcher = ScenarioMatcher(
            road, self.config.matcher, allowed_vectors=self.config.allowed_vectors
        )
        self._consecutive_attack_recommendations = 0

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        target = self._closest_target(estimates)
        if target is None:
            self._consecutive_attack_recommendations = 0
            return None
        vector = self.scenario_matcher.match(target)
        if vector is None:
            self._consecutive_attack_recommendations = 0
            return None
        features = self._features_for(target, ego_speed_mps)
        decision: AttackDecision = self.safety_hijacker.decide(features, vector, target.kind)
        if not decision.attack:
            self._consecutive_attack_recommendations = 0
            return None
        self._consecutive_attack_recommendations += 1
        if self._consecutive_attack_recommendations < self.config.launch_confirmation_frames:
            return None
        return vector, decision.k_frames, target, features, decision.predicted_delta_m

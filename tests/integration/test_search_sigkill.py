"""SIGKILL crash/resume integration test for the falsification search.

The strongest form of the resume contract: a search process killed with
``SIGKILL`` (no exception handling, no atexit, no flushing — the process
just stops) is resumed by simply re-running the same command, finishes the
remaining budget, and ends with a durable sampler checkpoint *bit-identical*
to a search that was never interrupted.

The child process monkeypatches ``ExperimentStore.append`` to kill itself
after a fixed number of run appends, which lands the kill mid-iteration:
after the proposed-phase checkpoint, with some of the batch's runs on disk
and some missing.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.experiments.store import ExperimentStore

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# One literal spec shared by the child script and the in-process resume;
# keep in sync with _spec() below.
SPEC_SNIPPET = """
from repro.experiments.campaign import AttackerKind, CampaignConfig
from repro.search import SearchSpec
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import ParameterSpace, Uniform

spec = SearchSpec(
    base=CampaignConfig(
        campaign_id="sigkill-ds1",
        scenario_id="DS-1",
        attacker=AttackerKind.NONE,
        n_runs=2,
        seed=17,
        simulation=SimulationConfig(max_duration_s=1.5),
    ),
    space=ParameterSpace({
        "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
        "variation.lead_speed_offset_mps": Uniform(-0.8, 0.8),
    }),
    sampler="ce",
    objective="min_delta_margin",
    budget_runs=12,
    batch_points=3,
    seed=23,
)
"""

CHILD_SCRIPT = SPEC_SNIPPET + """
import os, signal, sys

import repro.experiments.store as store_module
from repro.experiments.store import ExperimentStore
from repro.search import FalsificationLoop

kill_after = int(sys.argv[2])
if kill_after > 0:
    original_append = ExperimentStore.append
    state = {"appends": 0}

    def killing_append(self, record):
        original_append(self, record)
        state["appends"] += 1
        if state["appends"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    ExperimentStore.append = killing_append

FalsificationLoop(spec, ExperimentStore(sys.argv[1])).run()
"""


def _spec():
    namespace: dict = {}
    exec(SPEC_SNIPPET, namespace)
    return namespace["spec"]


def _run_child(store_root: Path, kill_after: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(store_root), str(kill_after)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_sigkilled_search_resumes_bit_identically(tmp_path):
    from repro.search import FalsificationLoop, search_spec_hash

    spec = _spec()
    search_hash = search_spec_hash(spec)

    clean_root = tmp_path / "clean"
    completed = _run_child(clean_root, kill_after=0)
    assert completed.returncode == 0, completed.stderr

    # Kill mid-first-iteration: 4 of the iteration's 6 runs are on disk.
    crash_root = tmp_path / "crash"
    killed = _run_child(crash_root, kill_after=4)
    assert killed.returncode == -signal.SIGKILL

    crash_store = ExperimentStore(crash_root)
    state = crash_store.load_search_state(search_hash)
    assert state is not None and state["phase"] == "proposed"

    # Resume in-process (same code path as re-running the CLI command).
    result = FalsificationLoop(spec, crash_store).run()
    assert result.search_hash == search_hash
    assert result.runs_spent == spec.budget_runs

    clean_state = ExperimentStore(clean_root).load_search_state(search_hash)
    crash_state = crash_store.load_search_state(search_hash)
    assert json.dumps(crash_state, sort_keys=True) == json.dumps(
        clean_state, sort_keys=True
    )

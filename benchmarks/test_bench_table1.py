"""Paper Table I: the scenario-matching map.

The table is regenerated directly from the implemented rule-based scenario
matcher; the benchmark times the generation and the output is printed so it
can be compared cell-by-cell with the paper.
"""

from repro.experiments.tables import table1_rows

PAPER_TABLE_1 = {
    ("Moving In", True): set(),
    ("Moving In", False): {"MOVE_OUT", "DISAPPEAR"},
    ("Keep", True): {"MOVE_OUT", "DISAPPEAR"},
    ("Keep", False): {"MOVE_IN"},
    ("Moving Out", True): {"MOVE_IN"},
    ("Moving Out", False): set(),
}


def test_table1_scenario_matching_map(benchmark):
    rows = benchmark(table1_rows)

    print("\n=== Table I: scenario matching map (reproduced) ===")
    print(f"{'TO trajectory':<14s} {'TO in EV lane':<14s} vectors")
    for row in rows:
        lane = "in lane" if row.in_ev_lane else "not in lane"
        vectors = "/".join(row.vectors) if row.vectors else "—"
        print(f"{row.trajectory:<14s} {lane:<14s} {vectors}")

    reproduced = {(row.trajectory, row.in_ev_lane): set(row.vectors) for row in rows}
    assert reproduced == PAPER_TABLE_1

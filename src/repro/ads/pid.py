"""PID controller for actuation smoothing.

The ADS planner produces desired accelerations; a PID controller smooths the
commands so "the AV does not make any sudden changes" in its actuation (paper
§II-A).  Emergency braking bypasses the smoothing with a much higher allowed
jerk so that safety-critical decelerations are not delayed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PIDController", "ActuationSmoother"]


class PIDController:
    """Textbook PID controller with output clamping and anti-windup."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        output_min: float = float("-inf"),
        output_max: float = float("inf"),
    ):
        if output_max < output_min:
            raise ValueError("output_max must be at least output_min")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.output_min = output_min
        self.output_max = output_max
        self._integral = 0.0
        self._previous_error: float | None = None

    def reset(self) -> None:
        """Clear the integral and derivative state."""
        self._integral = 0.0
        self._previous_error = None

    def update(self, error: float, dt: float) -> float:
        """Advance the controller by one step and return the control output."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error
        candidate_integral = self._integral + error * dt
        output = self.kp * error + self.ki * candidate_integral + self.kd * derivative
        if self.output_min <= output <= self.output_max:
            # Only accumulate the integral while the output is unsaturated
            # (conditional anti-windup).
            self._integral = candidate_integral
            return output
        return min(max(output, self.output_min), self.output_max)


@dataclass
class ActuationSmoother:
    """Jerk-limited smoothing of the planner's acceleration command.

    Normal driving is limited to a comfortable jerk; an emergency-brake command
    is allowed a much higher jerk so the full braking force is reached within a
    frame or two.
    """

    comfort_jerk_mps3: float = 3.0
    emergency_jerk_mps3: float = 40.0
    _last_accel: float = 0.0

    def reset(self) -> None:
        self._last_accel = 0.0

    def smooth(self, desired_accel: float, dt: float, emergency: bool) -> float:
        """Limit the rate of change of the acceleration command."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        jerk_limit = self.emergency_jerk_mps3 if emergency else self.comfort_jerk_mps3
        max_change = jerk_limit * dt
        change = min(max(desired_accel - self._last_accel, -max_change), max_change)
        self._last_accel += change
        return self._last_accel

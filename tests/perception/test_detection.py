"""Tests for the simulated (YOLOv3 stand-in) object detector."""

import numpy as np
import pytest

from repro.perception.detection import DetectorConfig, DetectorNoiseModel, SimulatedDetector
from repro.sensors.camera import CameraSensor
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation, build_scenario


def capture_ds1_frame():
    scenario = build_scenario("DS-1", ScenarioVariation.nominal())
    return CameraSensor().capture(scenario.world.snapshot())


class TestNoiseModel:
    def test_defaults_follow_paper_ordering(self):
        vehicle = DetectorNoiseModel.vehicle_default()
        pedestrian = DetectorNoiseModel.pedestrian_default()
        # Pedestrian centre noise is wider; vehicle misdetection bursts are longer
        # (paper Fig. 5: 99th percentiles ~31 frames vs ~59 frames).
        assert pedestrian.center_noise_sigma_x > vehicle.center_noise_sigma_x
        assert vehicle.misdetection_burst_p99_frames > pedestrian.misdetection_burst_p99_frames

    def test_burst_rate_consistent_with_p99(self):
        model = DetectorNoiseModel.vehicle_default()
        implied_p99 = 1.0 + np.log(100.0) / model.burst_rate
        assert implied_p99 == pytest.approx(model.misdetection_burst_p99_frames, rel=1e-6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DetectorNoiseModel(0, -1, 0, 0.1, 0.01, 30)
        with pytest.raises(ValueError):
            DetectorNoiseModel(0, 0.1, 0, 0.1, 1.5, 30)

    def test_config_lookup_by_kind(self):
        config = DetectorConfig()
        assert config.noise_for(ActorKind.VEHICLE) is config.vehicle_noise
        assert config.noise_for(ActorKind.PEDESTRIAN) is config.pedestrian_noise


class TestSimulatedDetector:
    def test_detects_visible_vehicle(self):
        detector = SimulatedDetector(rng=np.random.default_rng(0))
        frame = capture_ds1_frame()
        detections = detector.detect(frame)
        assert len(detections) <= 1
        # Over several frames, the vehicle is detected most of the time.
        hits = sum(bool(detector.detect(frame)) for _ in range(50))
        assert hits > 40

    def test_detection_preserves_class_and_actor_id(self):
        detector = SimulatedDetector(rng=np.random.default_rng(1))
        frame = capture_ds1_frame()
        for _ in range(20):
            detections = detector.detect(frame)
            if detections:
                assert detections[0].kind is ActorKind.VEHICLE
                assert detections[0].actor_id == frame.objects[0].actor_id
                break
        else:
            pytest.fail("vehicle never detected in 20 frames")

    def test_center_noise_is_zero_mean_ish(self):
        detector = SimulatedDetector(rng=np.random.default_rng(2))
        frame = capture_ds1_frame()
        truth = frame.objects[0].bbox
        offsets = []
        for _ in range(400):
            for detection in detector.detect(frame):
                offsets.append((detection.bbox.cx - truth.cx) / truth.width)
        assert abs(np.mean(offsets)) < 0.1
        assert np.std(offsets) > 0.01

    def test_misdetections_come_in_continuous_bursts(self):
        config = DetectorConfig(
            vehicle_noise=DetectorNoiseModel(
                center_noise_mu_x=0.0,
                center_noise_sigma_x=0.05,
                center_noise_mu_y=0.0,
                center_noise_sigma_y=0.05,
                misdetection_start_probability=0.05,
                misdetection_burst_p99_frames=40.0,
            )
        )
        detector = SimulatedDetector(config, rng=np.random.default_rng(3))
        frame = capture_ds1_frame()
        detected_sequence = [bool(detector.detect(frame)) for _ in range(800)]
        # Compute lengths of missed runs; with the burst model, mean run length
        # should exceed 1 frame by a clear margin.
        runs, current = [], 0
        for detected in detected_sequence:
            if detected:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        assert runs, "expected at least one misdetection burst"
        assert np.mean(runs) > 1.5

    def test_far_small_objects_not_detected(self):
        detector = SimulatedDetector(DetectorConfig(min_bbox_height_px=10_000), rng=np.random.default_rng(4))
        frame = capture_ds1_frame()
        assert detector.detect(frame) == []

    def test_reset_clears_burst_state(self):
        detector = SimulatedDetector(rng=np.random.default_rng(5))
        frame = capture_ds1_frame()
        for _ in range(50):
            detector.detect(frame)
        detector.reset()
        assert detector._burst_remaining == {}

    def test_burst_state_garbage_collected_when_object_leaves(self):
        detector = SimulatedDetector(rng=np.random.default_rng(6))
        frame = capture_ds1_frame()
        for _ in range(20):
            detector.detect(frame)
        empty = frame.without_actor(frame.objects[0].actor_id)
        detector.detect(empty)
        assert detector._burst_remaining == {}

"""Tests for the ``repro-campaign`` console entry point."""

import pytest

from repro.experiments.campaign import clear_caches
from repro.runtime.cli import build_parser, main


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCli:
    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario_id in ("DS-1", "DS-5", "DS-6", "DS-7"):
            assert scenario_id in out

    def test_single_campaign_without_attacker(self, capsys):
        code = main(
            ["--scenario", "DS-1", "--attacker", "none", "--runs", "2", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DS-1" in out

    def test_unknown_scenario_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-99", "--runs", "1"])

    def test_unknown_attacker_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-1", "--attacker", "quantum", "--runs", "1"])

    def test_unknown_vector_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-1", "--vector", "teleport", "--runs", "1"])

    def test_cache_dir_flag_routes_artifacts_to_disk(self, tmp_path, capsys):
        code = main(
            [
                "--scenario", "DS-1", "--attacker", "none",
                "--runs", "1", "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert list(tmp_path.glob("campaigns/*.pkl"))
        # Restore the caches' default (env-based) directory for other tests.
        from repro.experiments.campaign import set_cache_dir

        set_cache_dir(None)

    def test_single_campaign_with_batch_engine(self, tmp_path, capsys):
        """--engine batch composes with --store and records every run."""
        code = main(
            [
                "--scenario", "DS-3", "--attacker", "none", "--runs", "3",
                "--seed", "3", "--engine", "batch", "--batch-size", "2",
                "--store", str(tmp_path / "runs"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DS-3" in out
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path / "runs")
        assert store.incomplete_campaigns() == []

    def test_invalid_engine_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "DS-1", "--runs", "1", "--engine", "vectorized"])

    def test_non_positive_batch_size_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(
                ["--scenario", "DS-1", "--attacker", "none", "--runs", "1",
                 "--engine", "batch", "--batch-size", "0"]
            )

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.runs == 10
        assert args.engine == "scalar"
        assert args.batch_size == 16
        assert args.jobs == 0
        assert args.scenario is None
        assert args.store is None
        assert args.command is None

    def test_store_flag_records_runs_durably(self, tmp_path, capsys):
        code = main(
            [
                "--scenario", "DS-1", "--attacker", "none",
                "--runs", "2", "--store", str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path)
        assert len(store.manifests()) == 1
        assert sum(1 for _ in store.iter_records(scenario_id="DS-1")) == 2


class TestSweepCli:
    def test_dry_run_expands_fifty_points(self, capsys):
        code = main(
            ["sweep", "--scenario", "DS-1", "--store", "/unused", "--dry-run", "--n", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep of 50 points" in out
        assert out.count("-p00") == 50

    def test_sweep_executes_and_records_every_point(self, tmp_path, capsys):
        code = main(
            [
                "sweep", "--scenario", "DS-1", "--store", str(tmp_path),
                "--sampler", "random", "--n", "3", "--runs", "1",
                "--param", "variation.lead_gap_offset_m=-8:8",
                "--param", "simulation.max_duration_s=1.0",
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path)
        assert len(store.manifests()) == 3
        assert sum(1 for _ in store.iter_records()) == 3
        assert store.incomplete_campaigns() == []

    def test_grid_sampler_uses_axis_grid_points(self, capsys):
        code = main(
            [
                "sweep", "--scenario", "DS-2", "--store", "/unused", "--dry-run",
                "--sampler", "grid",
                "--param", "variation.pedestrian_delay_s=0:1.5:3",
                "--param", "simulation.halt_gap_m=3.0,4.0",
            ]
        )
        assert code == 0
        assert "Sweep of 6 points" in capsys.readouterr().out

    def test_bad_axis_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "--scenario", "DS-1", "--store", "/unused",
                    "--param", "variation.bogus=0:1",
                ]
            )

    def test_non_numeric_axis_value_exits_with_error(self):
        # A string swept into a float field must be a one-line error, not a
        # TypeError traceback from deep inside SimulationConfig.
        with pytest.raises(SystemExit, match="expects a number"):
            main(
                [
                    "sweep", "--scenario", "DS-1", "--store", "/unused", "--dry-run",
                    "--param", "simulation.halt_gap_m=abc",
                ]
            )

    def test_unknown_scenario_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "DS-99", "--store", "/unused", "--dry-run"])

    def test_top_level_flags_before_subcommand_are_rejected(self):
        # argparse would otherwise let the sweep's own --runs default silently
        # clobber the user's value; fail loudly instead.
        with pytest.raises(SystemExit, match="after the 'sweep' subcommand"):
            main(["--runs", "5", "sweep", "--scenario", "DS-1", "--store", "/unused"])
        with pytest.raises(SystemExit, match="after the 'resume' subcommand"):
            main(["--seed", "99", "resume", "--store", "/unused"])

    def test_subcommand_flags_reach_the_sweep(self, capsys):
        code = main(
            [
                "sweep", "--scenario", "DS-1", "--store", "/unused",
                "--dry-run", "--n", "7", "--runs", "4", "--seed", "123",
            ]
        )
        assert code == 0
        assert "Sweep of 7 points" in capsys.readouterr().out


class TestFusionCli:
    def test_run_with_fusion_records_policy_in_manifest(self, tmp_path, capsys):
        code = main(
            [
                "--scenario", "DS-1", "--attacker", "none", "--runs", "1",
                "--seed", "3", "--fusion", "lidar_only", "--store", str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.experiments.store import ExperimentStore

        ((_, config),) = ExperimentStore(tmp_path).manifests().items()
        assert config.fusion_policy == "lidar_only"

    def test_fusion_composes_with_batch_engine(self, capsys):
        code = main(
            [
                "--scenario", "DS-1", "--attacker", "none", "--runs", "2",
                "--seed", "3", "--fusion", "consistency_gated", "--engine", "batch",
            ]
        )
        assert code == 0
        assert "DS-1" in capsys.readouterr().out

    def test_unknown_fusion_policy_exits_with_error(self):
        with pytest.raises(SystemExit, match="unknown fusion policy"):
            main(
                ["--scenario", "DS-1", "--attacker", "none", "--runs", "1",
                 "--fusion", "ekf"]
            )

    def test_sweep_over_fusion_axes_dry_run(self, capsys):
        code = main(
            [
                "sweep", "--scenario", "DS-1", "--store", "/unused", "--dry-run",
                "--sampler", "grid",
                "--param", "fusion.policy=late,lidar_only,consistency_gated",
                "--param", "fusion.camera_weight=0.4:0.8:3",
            ]
        )
        assert code == 0
        assert "Sweep of 9 points" in capsys.readouterr().out

    def test_sweep_fusion_flag_sets_base_policy(self, tmp_path, capsys):
        code = main(
            [
                "sweep", "--scenario", "DS-1", "--store", str(tmp_path),
                "--sampler", "random", "--n", "2", "--runs", "1",
                "--fusion", "camera_only",
                "--param", "simulation.max_duration_s=1.0",
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.experiments.store import ExperimentStore

        manifests = ExperimentStore(tmp_path).manifests()
        assert len(manifests) == 2
        assert all(c.fusion_policy == "camera_only" for c in manifests.values())

    def test_sweep_unknown_fusion_exits_with_error(self):
        with pytest.raises(SystemExit, match="unknown fusion policy"):
            main(
                ["sweep", "--scenario", "DS-1", "--store", "/unused",
                 "--dry-run", "--fusion", "ekf"]
            )

    def test_resume_fusion_filter(self, tmp_path, capsys):
        from repro.experiments.campaign import (
            AttackerKind,
            CampaignConfig,
            run_campaign,
        )
        from repro.experiments.store import ExperimentStore
        from repro.perception.fusion import FusionConfig
        from repro.runtime import FaultInjectingExecutor, InjectedFault
        from repro.sim.config import SimulationConfig

        config = CampaignConfig(
            campaign_id="cli-resume-fusion",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=2,
            seed=21,
            simulation=SimulationConfig(max_duration_s=1.0),
            fusion=FusionConfig(policy="lidar_only"),
        )
        store = ExperimentStore(tmp_path)
        with pytest.raises(InjectedFault):
            run_campaign(config, store=store, executor=FaultInjectingExecutor(1))

        # A filter on a different policy matches nothing and resumes nothing.
        code = main(["resume", "--store", str(tmp_path), "--fusion", "camera_only"])
        assert code == 0
        assert "runs the 'camera_only' fusion policy" in capsys.readouterr().out
        assert store.incomplete_campaigns() != []

        code = main(["resume", "--store", str(tmp_path), "--fusion", "lidar_only"])
        assert code == 0
        assert "Resuming cli-resume-fusion" in capsys.readouterr().out
        assert store.incomplete_campaigns() == []

    def test_resume_unknown_fusion_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown fusion policy"):
            main(["resume", "--store", str(tmp_path), "--fusion", "ekf"])


class TestTrainCli:
    _ARGS = [
        "train", "--scenario", "DS-2", "--vector", "disappear",
        "--epochs", "3", "--repeats", "1",
    ]

    def test_train_collects_trains_and_registers(self, tmp_path, capsys):
        code = main(self._ARGS + ["--store", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Collecting 24 scripted-attack grid points" in out
        assert "train loss" in out
        assert "Registered model" in out
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path)
        assert len(store.model_hashes()) == 1
        assert list(tmp_path.glob("datasets/*.jsonl"))

    def test_second_train_reports_registered_model(self, tmp_path, capsys):
        assert main(self._ARGS + ["--store", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self._ARGS + ["--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Already trained" in out
        # The loss curves are reported from the registry metadata.
        assert "train loss" in out

    def test_force_retrains_over_registered_model(self, tmp_path, capsys):
        assert main(self._ARGS + ["--store", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self._ARGS + ["--store", str(tmp_path), "--force"]) == 0
        out = capsys.readouterr().out
        assert "Registered model" in out

    def test_unknown_scenario_exits_with_error(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["train", "--scenario", "DS-99", "--vector", "disappear",
                  "--store", "/unused"])

    def test_unknown_vector_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["train", "--scenario", "DS-2", "--vector", "teleport",
                  "--store", "/unused"])

    def test_top_level_flags_before_train_are_rejected(self):
        with pytest.raises(SystemExit, match="after the 'train' subcommand"):
            main(["--seed", "5", "train", "--scenario", "DS-2",
                  "--vector", "disappear", "--store", "/unused"])


class TestResumeCli:
    def test_resume_completes_interrupted_campaigns(self, tmp_path, capsys):
        from repro.experiments.campaign import (
            AttackerKind,
            CampaignConfig,
            run_campaign,
        )
        from repro.experiments.store import ExperimentStore, config_hash
        from repro.runtime import FaultInjectingExecutor, InjectedFault
        from repro.sim.config import SimulationConfig

        config = CampaignConfig(
            campaign_id="cli-resume",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=3,
            seed=21,
            simulation=SimulationConfig(max_duration_s=1.0),
        )
        store = ExperimentStore(tmp_path)
        with pytest.raises(InjectedFault):
            run_campaign(config, store=store, executor=FaultInjectingExecutor(1))
        assert store.run_indices(config_hash(config)) == {0}

        code = main(["resume", "--store", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resuming cli-resume: 2 of 3 runs missing" in out
        assert store.incomplete_campaigns() == []

    def test_resume_of_complete_store_is_a_no_op(self, tmp_path, capsys):
        code = main(["resume", "--store", str(tmp_path)])
        assert code == 0
        assert "Nothing to resume" in capsys.readouterr().out

    def test_resume_of_missing_store_path_is_an_error(self, tmp_path):
        # A typo'd path must not report "every campaign is complete".
        with pytest.raises(SystemExit, match="no experiment store"):
            main(["resume", "--store", str(tmp_path / "typo")])

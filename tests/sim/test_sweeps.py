"""Tests for the parametric scenario-sweep engine."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.campaign import AttackerKind, CampaignConfig
from repro.experiments.store import config_hash
from repro.perception.detection import DetectorConfig, DetectorDegradation
from repro.sim.config import SimulationConfig
from repro.sim.scenarios import ScenarioVariation
from repro.sim.sweeps import (
    Choice,
    ParameterSpace,
    Uniform,
    default_variation_space,
    expand_campaigns,
    parse_axis,
    parse_spec,
    sweep_campaigns,
)


def _base(**overrides) -> CampaignConfig:
    defaults = dict(
        campaign_id="sweep-base",
        scenario_id="DS-1",
        attacker=AttackerKind.NONE,
        n_runs=2,
        seed=9,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestSpecs:
    def test_uniform_maps_unit_interval(self):
        spec = Uniform(10.0, 20.0)
        assert spec.value_at(0.0) == 10.0
        assert spec.value_at(0.5) == 15.0
        assert spec.grid_values() == [10.0, 12.5, 15.0, 17.5, 20.0]

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(0.0, 1.0, grid_points=1)

    def test_choice_covers_all_values(self):
        spec = Choice((1, 2, 3))
        picked = {spec.value_at(u) for u in np.linspace(0.0, 0.999, 50)}
        assert picked == {1, 2, 3}
        assert spec.grid_values() == [1, 2, 3]

    def test_parse_spec_forms(self):
        assert parse_spec("0.9:1.1") == Uniform(0.9, 1.1)
        assert parse_spec("-8:8:9") == Uniform(-8.0, 8.0, grid_points=9)
        assert parse_spec("3.0,4.0,5.0") == Choice((3.0, 4.0, 5.0))
        assert parse_spec("1,two,true") == Choice((1, "two", True))
        assert parse_spec("42") == Choice((42,))
        with pytest.raises(ValueError):
            parse_spec("")
        with pytest.raises(ValueError):
            parse_spec("1:2:3:4")

    def test_parse_axis_validates_namespaces(self):
        path, spec = parse_axis("variation.lead_gap_offset_m=-8:8")
        assert path == "variation.lead_gap_offset_m"
        assert spec == Uniform(-8.0, 8.0)
        with pytest.raises(ValueError, match="namespaced"):
            parse_axis("lead_gap_offset_m=-8:8")
        with pytest.raises(ValueError, match="unknown field"):
            parse_axis("variation.bogus=-8:8")
        with pytest.raises(ValueError, match="name=spec"):
            parse_axis("variation.lead_gap_offset_m")


class TestSamplers:
    def _space(self) -> ParameterSpace:
        return ParameterSpace(
            {
                "variation.ego_speed_scale": Uniform(0.9, 1.1, grid_points=3),
                "simulation.halt_gap_m": Choice((3.0, 4.0)),
            }
        )

    def test_grid_is_the_cartesian_product(self):
        points = self._space().grid()
        assert len(points) == 6
        assert {p["simulation.halt_gap_m"] for p in points} == {3.0, 4.0}
        assert {p["variation.ego_speed_scale"] for p in points} == {0.9, 1.0, 1.1}

    def test_random_is_seeded_and_in_bounds(self):
        space = self._space()
        first = space.random(20, seed=3)
        second = space.random(20, seed=3)
        assert first == second
        assert first != space.random(20, seed=4)
        for point in first:
            assert 0.9 <= point["variation.ego_speed_scale"] <= 1.1
            assert point["simulation.halt_gap_m"] in (3.0, 4.0)

    def test_latin_hypercube_stratifies_every_axis(self):
        n = 16
        space = ParameterSpace({"variation.ego_speed_scale": Uniform(0.0, 1.0)})
        points = space.latin_hypercube(n, seed=5)
        strata = sorted(int(p["variation.ego_speed_scale"] * n) for p in points)
        assert strata == list(range(n))

    def test_latin_hypercube_is_seeded(self):
        space = self._space()
        assert space.latin_hypercube(8, seed=1) == space.latin_hypercube(8, seed=1)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace({})
        with pytest.raises(ValueError, match="unknown field"):
            ParameterSpace({"simulation.bogus": Uniform(0, 1)})


class TestExpansion:
    def test_expand_pins_variation_only_when_swept(self):
        configs = expand_campaigns(
            _base(), [{"simulation.halt_gap_m": 5.0}, {"variation.lead_gap_offset_m": 2.0}]
        )
        assert configs[0].variation is None
        assert configs[0].simulation.halt_gap_m == 5.0
        assert configs[1].variation == ScenarioVariation(lead_gap_offset_m=2.0)
        assert configs[1].simulation == SimulationConfig()

    def test_expand_builds_detector_degradation(self):
        (config,) = expand_campaigns(_base(), [{"detector.sigma_scale": 2.0}])
        assert config.detector_degradation == DetectorDegradation(sigma_scale=2.0)
        degraded = config.detector_degradation.apply(DetectorConfig())
        base = DetectorConfig()
        assert degraded.vehicle_noise.center_noise_sigma_x == pytest.approx(
            base.vehicle_noise.center_noise_sigma_x * 2.0
        )
        assert degraded.min_bbox_height_px == base.min_bbox_height_px

    def test_expanded_ids_and_hashes_are_distinct(self):
        configs = sweep_campaigns(_base(), sampler="lhs", n=50, seed=0)
        assert len(configs) == 50
        assert len({c.campaign_id for c in configs}) == 50
        assert len({config_hash(c) for c in configs}) == 50
        assert len({c.variation for c in configs}) == 50

    def test_default_space_covers_the_monte_carlo_ranges(self):
        from repro.sim.scenarios import VARIATION_SAMPLING_RANGES

        space = default_variation_space()
        assert set(space.axes) == {
            f"variation.{name}" for name in VARIATION_SAMPLING_RANGES
        }
        for name, (low, high) in VARIATION_SAMPLING_RANGES.items():
            assert space.axes[f"variation.{name}"] == Uniform(low, high)

    def test_int_fields_are_coerced_when_swept_as_ranges(self):
        # npc_seed is int-typed; a Uniform axis samples floats, which must be
        # rounded before they reach ScenarioVariation (and default_rng).
        space = ParameterSpace({"variation.npc_seed": Uniform(0.0, 1000.0)})
        configs = expand_campaigns(_base(scenario_id="DS-5"), space.random(5, seed=2))
        for config in configs:
            assert isinstance(config.variation.npc_seed, int)
        from repro.sim.scenarios import build_scenario

        build_scenario("DS-5", configs[0].variation)  # must not raise

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            sweep_campaigns(_base(), sampler="sobol")

    def test_grid_sampler_warns_on_mismatching_n(self):
        space = ParameterSpace(
            {"variation.ego_speed_scale": Uniform(0.9, 1.1, grid_points=3)}
        )
        with pytest.warns(UserWarning, match="grid sampler ignores n=100"):
            configs = sweep_campaigns(_base(), space, sampler="grid", n=100)
        # The warning does not change the structural grid size.
        assert len(configs) == 3

    def test_grid_sampler_warns_on_explicit_seed(self):
        space = ParameterSpace(
            {"variation.ego_speed_scale": Uniform(0.9, 1.1, grid_points=3)}
        )
        with pytest.warns(UserWarning, match="ignores the sampler seed"):
            sweep_campaigns(_base(), space, sampler="grid", seed=5)

    def test_grid_sampler_is_silent_when_n_matches_or_is_unset(self):
        import warnings

        space = ParameterSpace(
            {"variation.ego_speed_scale": Uniform(0.9, 1.1, grid_points=3)}
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(sweep_campaigns(_base(), space, sampler="grid")) == 3
            assert len(sweep_campaigns(_base(), space, sampler="grid", n=3)) == 3

    def test_base_fields_survive_expansion(self):
        base = _base(seed=1234, n_runs=7)
        (config,) = expand_campaigns(base, [{"variation.ego_speed_scale": 1.01}])
        assert config.seed == 1234
        assert config.n_runs == 7
        assert config.scenario_id == base.scenario_id
        assert dataclasses.asdict(config.simulation) == dataclasses.asdict(base.simulation)


class TestFusionNamespace:
    def test_parse_axis_accepts_fusion_fields(self):
        path, spec = parse_axis("fusion.policy=late,lidar_only")
        assert path == "fusion.policy"
        assert spec == Choice(("late", "lidar_only"))
        path, spec = parse_axis("fusion.camera_weight=0.4:0.8:3")
        assert spec == Uniform(0.4, 0.8, grid_points=3)
        with pytest.raises(ValueError, match="unknown field"):
            parse_axis("fusion.bogus=0:1")

    def test_expand_builds_fusion_config(self):
        from repro.perception.fusion import FusionConfig

        configs = expand_campaigns(
            _base(),
            [
                {"fusion.policy": "consistency_gated", "fusion.camera_weight": 0.5},
                {"variation.ego_speed_scale": 1.0},
            ],
        )
        assert configs[0].fusion == FusionConfig(policy="consistency_gated", camera_weight=0.5)
        # Un-swept points keep fusion=None — and thus the pre-refactor hash.
        assert configs[1].fusion is None

    def test_expand_starts_from_base_fusion_when_set(self):
        from repro.perception.fusion import FusionConfig

        base = _base(fusion=FusionConfig(policy="consistency_gated", consistency_gate_m=0.9))
        (config,) = expand_campaigns(base, [{"fusion.camera_weight": 0.3}])
        assert config.fusion.policy == "consistency_gated"
        assert config.fusion.consistency_gate_m == 0.9
        assert config.fusion.camera_weight == 0.3

    def test_invalid_fusion_values_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="unknown fusion policy"):
            expand_campaigns(_base(), [{"fusion.policy": "ekf"}])
        with pytest.raises(ValueError, match="must be in"):
            expand_campaigns(_base(), [{"fusion.camera_weight": 1.5}])

    def test_grid_sweep_over_policy_and_numeric_axes(self):
        space = ParameterSpace(
            {
                "fusion.policy": Choice(("late", "lidar_only", "consistency_gated")),
                "fusion.camera_weight": Uniform(0.4, 0.8, grid_points=3),
                "fusion.consistency_camera_penalty": Uniform(0.1, 0.5, grid_points=2),
            }
        )
        configs = sweep_campaigns(_base(), space, sampler="grid")
        assert len(configs) == 18
        assert {c.fusion.policy for c in configs} == {
            "late",
            "lidar_only",
            "consistency_gated",
        }
        assert len({config_hash(c) for c in configs}) == 18


class TestUnitCubeBridge:
    """The public sample_from / paths / spec surface the search engine uses."""

    SPACE = ParameterSpace(
        {
            "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
            "fusion.policy": Choice(("late", "camera_only")),
        }
    )

    def test_sample_from_maps_rows_through_declared_axes(self):
        units = np.array([[0.0, 0.0], [1.0, 0.9], [0.5, 0.4]])
        assignments = self.SPACE.sample_from(units)
        assert assignments == [
            {"variation.lead_gap_offset_m": -8.0, "fusion.policy": "late"},
            {"variation.lead_gap_offset_m": 8.0, "fusion.policy": "camera_only"},
            {"variation.lead_gap_offset_m": 0.0, "fusion.policy": "late"},
        ]

    def test_sample_from_matches_random_sampler(self):
        rng = np.random.default_rng(4)
        units = rng.uniform(size=(7, 2))
        assert self.SPACE.sample_from(units) == self.SPACE.random(
            7, seed=np.random.default_rng(4)
        )

    def test_sample_from_validates_shape_and_range(self):
        with pytest.raises(ValueError, match="shaped"):
            self.SPACE.sample_from(np.zeros((3,)))
        with pytest.raises(ValueError, match="shaped"):
            self.SPACE.sample_from(np.zeros((3, 5)))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            self.SPACE.sample_from(np.array([[0.5, 1.2]]))

    def test_paths_and_spec_accessors(self):
        assert self.SPACE.paths() == list(self.SPACE) == [
            "variation.lead_gap_offset_m",
            "fusion.policy",
        ]
        assert len(self.SPACE) == 2
        assert self.SPACE.spec("fusion.policy") == Choice(("late", "camera_only"))
        with pytest.raises(KeyError, match="declared axes"):
            self.SPACE.spec("variation.pedestrian_delay_s")

    def test_private_alias_is_deprecated_but_equivalent(self):
        units = np.random.default_rng(0).uniform(size=(3, 2))
        with pytest.deprecated_call():
            legacy = self.SPACE._assignments_from_units(units)
        assert legacy == self.SPACE.sample_from(units)


class TestGeneratorSeeds:
    """random / latin_hypercube accept a Generator directly (stream reuse)."""

    SPACE = ParameterSpace({"variation.lead_gap_offset_m": Uniform(-8.0, 8.0)})

    def test_generator_seed_matches_int_seed(self):
        assert self.SPACE.random(5, seed=np.random.default_rng(3)) == self.SPACE.random(
            5, seed=3
        )
        assert self.SPACE.latin_hypercube(
            5, seed=np.random.default_rng(3)
        ) == self.SPACE.latin_hypercube(5, seed=3)

    def test_generator_stream_advances_across_calls(self):
        rng = np.random.default_rng(3)
        first = self.SPACE.random(4, seed=rng)
        second = self.SPACE.random(4, seed=rng)
        assert first != second
        # One shared stream == one longer draw split in two.
        both = self.SPACE.random(8, seed=3)
        assert first + second == both

"""The scenario matcher: deciding *what* to attack (paper §IV-A, Table I).

The matcher is deliberately a rule-based system so that it runs in negligible
time and evades resource-usage-based detection.  Given the malware's own
estimate of the target object (the object closest to the EV), it classifies
the object's trajectory (moving into the ego lane, keeping, or moving out) and
its current lane membership, and looks up the compatible attack vectors:

==============  =====================  ==========================
TO trajectory   TO in EV lane          TO not in EV lane
==============  =====================  ==========================
Moving in       (no attack)            Move_Out / Disappear
Keep            Move_Out / Disappear   Move_In
Moving out      Move_In                (no attack)
==============  =====================  ==========================

When both ``Move_Out`` and ``Disappear`` apply, the matcher prefers
``Disappear`` for pedestrians (small attack windows suffice) and ``Move_Out``
for vehicles, as discussed in paper §IV-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.attack_vectors import AttackVector
from repro.perception.transforms import WorldObjectEstimate
from repro.sim.actors import ActorKind
from repro.sim.road import Road

__all__ = ["TrajectoryClass", "ScenarioMatcherConfig", "ScenarioMatcher"]


class TrajectoryClass(enum.Enum):
    """Coarse classification of the target object's lateral motion."""

    MOVING_IN = "moving_in"
    KEEP = "keep"
    MOVING_OUT = "moving_out"


@dataclass(frozen=True)
class ScenarioMatcherConfig:
    """Thresholds used by the rule-based matcher."""

    #: Lateral speed (m/s) below which the object counts as keeping its lane
    #: (smaller estimates are indistinguishable from detector noise).
    keep_lateral_speed_mps: float = 0.6
    #: Lateral margin (m) added to the ego lane when testing lane membership.
    lane_membership_margin_m: float = 0.2
    #: Maximum distance (m) at which an object is worth attacking at all.
    max_target_distance_m: float = 90.0

    def __post_init__(self) -> None:
        if self.keep_lateral_speed_mps < 0:
            raise ValueError("keep_lateral_speed_mps must be non-negative")


class ScenarioMatcher:
    """Rule-based mapping from the target's state to a candidate attack vector."""

    def __init__(
        self,
        road: Road,
        config: ScenarioMatcherConfig | None = None,
        allowed_vectors: Sequence[AttackVector] | None = None,
    ):
        self.road = road
        self.config = config or ScenarioMatcherConfig()
        self.allowed_vectors = tuple(allowed_vectors) if allowed_vectors else tuple(AttackVector)

    def classify_trajectory(self, estimate: WorldObjectEstimate) -> TrajectoryClass:
        """Classify the target's lateral motion relative to the ego lane."""
        lateral_speed = estimate.lateral_velocity_mps
        if abs(lateral_speed) < self.config.keep_lateral_speed_mps:
            return TrajectoryClass.KEEP
        moving_towards_lane_center = (estimate.lateral_m > 0) == (lateral_speed < 0)
        return TrajectoryClass.MOVING_IN if moving_towards_lane_center else TrajectoryClass.MOVING_OUT

    def in_ego_lane(self, estimate: WorldObjectEstimate) -> bool:
        """Whether the target currently overlaps the ego lane."""
        half_width = 0.95 if estimate.kind is ActorKind.VEHICLE else 0.25
        margin = self.config.lane_membership_margin_m + half_width
        return self.road.in_ego_lane(estimate.lateral_m, margin=margin)

    def candidate_vectors(self, estimate: WorldObjectEstimate) -> tuple[AttackVector, ...]:
        """The attack vectors permitted by Table I for the target's state."""
        trajectory = self.classify_trajectory(estimate)
        in_lane = self.in_ego_lane(estimate)
        if in_lane:
            if trajectory is TrajectoryClass.KEEP:
                return (AttackVector.MOVE_OUT, AttackVector.DISAPPEAR)
            if trajectory is TrajectoryClass.MOVING_OUT:
                return (AttackVector.MOVE_IN,)
            return ()
        if trajectory is TrajectoryClass.MOVING_IN:
            return (AttackVector.MOVE_OUT, AttackVector.DISAPPEAR)
        if trajectory is TrajectoryClass.KEEP:
            return (AttackVector.MOVE_IN,)
        return ()

    def match(self, estimate: WorldObjectEstimate) -> Optional[AttackVector]:
        """Select the attack vector for the target, or ``None`` if no rule applies."""
        if estimate.distance_m <= 0 or estimate.distance_m > self.config.max_target_distance_m:
            return None
        candidates = [v for v in self.candidate_vectors(estimate) if v in self.allowed_vectors]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        # Both Move_Out and Disappear apply: prefer Disappear for pedestrians
        # (short attack windows suffice), Move_Out for vehicles (paper §IV-A).
        preferred = (
            AttackVector.DISAPPEAR
            if estimate.kind is ActorKind.PEDESTRIAN
            else AttackVector.MOVE_OUT
        )
        return preferred if preferred in candidates else candidates[0]

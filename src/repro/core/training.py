"""Training the safety hijacker (paper §IV-B).

The oracle ``f_alpha`` is trained on a dataset collected from driving
simulations: each simulation run has a predefined trigger safety potential
``delta_inject`` and an attack duration ``k`` — the attack starts as soon as
the malware's own estimate of the safety potential drops to ``delta_inject``
and is maintained for ``k`` frames.  The recorded response of the ADS provides
the label:

* for ``Move_Out`` / ``Disappear`` the label is the *ground-truth* safety
  potential ``delta_{t+k}`` at the end of the attack window (the quantity that
  determines whether an accident results);
* for ``Move_In`` the label is the minimum *perceived* safety potential over
  the attack window (the quantity that determines whether the ADS is forced
  into emergency braking), because a Move_In attack does not reduce the true
  safety potential (paper §VI-D).

The collected dataset is used to train the 100-100-50 ReLU network with Adam
on an L2 loss with a 60/40 train/validation split, exactly as in the paper.

Collection is the last expensive serial hot path of the reproduction, and it
is embarrassingly parallel: every ``(delta_inject, k)`` grid point's scenario
variation and RNG seeds are pre-drawn in grid order from the root seed's
single stream (cheap, no simulation) and shipped with the job, so
:func:`collect_safety_dataset` fans the grid out over the
:mod:`repro.runtime` executors (``executor=``) with bit-identical
serial/parallel dataset assembly — and datasets identical to the historical
serial implementation, keeping trained oracle weights stable across the
refactor.  With a ``store=`` the collected sample
batches stream into the :class:`~repro.experiments.store.ExperimentStore` as
dataset records, and an interrupted collection resumes by skipping the grid
points already on disk.  :func:`train_and_register_predictor` chains
collection, training, and persistence into the content-addressed model
registry (dataset hash + training config), which is what the
``repro-campaign train`` subcommand and the campaign runner's pretrained-oracle
loading are built on.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.core.attack_vectors import AttackVector
from repro.core.robotack import CameraMitmAttackerBase, RoboTackConfig
from repro.core.safety_hijacker import AttackFeatures, NeuralSafetyPredictor
from repro.core.scenario_matcher import ScenarioMatcher
from repro.nn import Adam, FeedForwardNetwork, TrainingResult, train_network
from repro.perception.pipeline import PerceptionConfig
from repro.perception.transforms import WorldObjectEstimate
from repro.runtime.cache import encode_key
from repro.runtime.executor import ExecutorLike, resolve_executor
from repro.sim.config import SimulationConfig
from repro.sim.road import Road
from repro.sim.scenarios import ScenarioVariation, build_scenario
from repro.sim.simulator import SimulationResult, Simulator

if TYPE_CHECKING:  # pragma: no cover - type hints only (store imports nothing here)
    from repro.experiments.store import ExperimentStore

__all__ = [
    "ScriptedAttacker",
    "SafetyDataset",
    "OracleArtifact",
    "expand_training_grid",
    "collection_hash_for",
    "dataset_content_hash",
    "training_spec_hash",
    "collect_safety_dataset",
    "train_neural_safety_predictor",
    "train_and_register_predictor",
    "load_registered_predictor",
]

#: Clamp applied to infinite perceived safety potentials ("road looks clear").
_CLEAR_ROAD_DELTA_M = 60.0


class ScriptedAttacker(CameraMitmAttackerBase):
    """Launches a fixed attack vector at a predefined trigger safety potential.

    Used only for data collection: the attack starts when the malware's own
    estimate of the safety potential first drops to ``delta_inject`` and lasts
    exactly ``k`` frames.
    """

    def __init__(
        self,
        road: Road,
        vector: AttackVector,
        delta_inject_m: float,
        k_frames: int,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        config = config or RoboTackConfig(allowed_vectors=(vector,))
        super().__init__(road, config, rng)
        self.vector = vector
        self.delta_inject_m = delta_inject_m
        self.k_frames = int(k_frames)
        self.scenario_matcher = ScenarioMatcher(
            road, self.config.matcher, allowed_vectors=(vector,)
        )

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        target = self._closest_target(estimates)
        if target is None:
            return None
        if self.scenario_matcher.match(target) is not self.vector:
            return None
        features = self._features_for(target, ego_speed_mps)
        if features.delta_m > self.delta_inject_m:
            return None
        return self.vector, self.k_frames, target, features, float("nan")


@dataclass
class SafetyDataset:
    """Attack-response dataset for one attack vector."""

    vector: AttackVector
    scenario_id: str
    #: Rows of ``[delta_t, v_rel, a_rel, k]``.
    inputs: np.ndarray
    #: Rows of ``[delta_{t+k}]`` (ground-truth or perceived, depending on vector).
    targets: np.ndarray

    def __post_init__(self) -> None:
        self.inputs = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        self.targets = np.atleast_2d(np.asarray(self.targets, dtype=float).reshape(-1, 1))
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError("inputs and targets must have the same number of rows")

    @property
    def n_samples(self) -> int:
        return int(self.inputs.shape[0])

    def merged_with(self, other: "SafetyDataset") -> "SafetyDataset":
        """Concatenate two datasets for the same attack vector."""
        if other.vector is not self.vector:
            raise ValueError("cannot merge datasets for different attack vectors")
        return SafetyDataset(
            vector=self.vector,
            scenario_id=f"{self.scenario_id}+{other.scenario_id}",
            inputs=np.vstack([self.inputs, other.inputs]),
            targets=np.vstack([self.targets, other.targets]),
        )


def _label_for_run(
    vector: AttackVector,
    result: SimulationResult,
    attacker: ScriptedAttacker,
    k_frames: int,
) -> Optional[float]:
    """Extract the training label from one simulation run, if the attack fired."""
    if not attacker.record.launched or attacker.record.start_frame is None:
        return None
    # An attack launched on the very first frame yields start_frame - 1 == -1,
    # and a negative slice start would silently read the window from the *end*
    # of the trace — a corrupt label.  Clamp to the trace start instead.
    start_step = max(0, attacker.record.start_frame - 1)
    if vector is AttackVector.MOVE_IN:
        # The Move_In hazard is forced emergency braking: the label is the
        # perceived safety potential at the moment the faked in-path obstacle
        # first appears to the planner (the first finite perceived delta in the
        # window).  If it never appears (the window was too short to complete
        # the shift), the attack had no effect and the label saturates at the
        # clear-road value.
        trace = result.events.perceived_delta_trace
        window = trace[start_step : start_step + k_frames + 15]
        if not window:
            return None
        for value in window:
            if value < _CLEAR_ROAD_DELTA_M:
                return float(value)
        return float(_CLEAR_ROAD_DELTA_M)
    # Move_Out / Disappear: the hazard is a collision with the real target, so
    # the label is the minimum ground-truth safety potential over the attack
    # window (plus a short settling margin, since the closest approach can fall
    # a few frames after the final perturbed frame).
    trace = result.events.true_delta_trace
    if not trace:
        return None
    window = trace[start_step : start_step + k_frames + 15]
    if not window:
        return None
    return float(min(min(window), _CLEAR_ROAD_DELTA_M))


def expand_training_grid(
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    repeats: int = 1,
) -> List[Tuple[int, float, int]]:
    """The indexed ``(point_index, delta_inject, k)`` collection work list.

    The point index is the identity of a grid point everywhere: it derives the
    point's independent seed, orders the assembled dataset, and keys the
    store's dataset records for resume.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    grid = [
        (float(delta_inject), int(k_frames))
        for delta_inject in delta_inject_values
        for k_frames in k_values
        for _ in range(repeats)
    ]
    return [(index, delta, k) for index, (delta, k) in enumerate(grid)]


@dataclass(frozen=True)
class _GridPointJob:
    """One self-contained collection work unit (picklable for the executors).

    The variation and the three per-component seeds are pre-drawn in the
    parent process, in grid order, from the single root RNG stream — exactly
    the draws the historical serial loop made — so the assembled dataset is
    bit-identical whichever backend runs the jobs *and* to datasets collected
    before the fan-out existed (trained oracle weights are stable artifacts).
    """

    point_index: int
    delta_inject_m: float
    k_frames: int
    variation: ScenarioVariation
    ads_seed: int
    attacker_seed: int
    simulator_seed: int


def _expand_jobs(
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    seed: int,
    repeats: int,
) -> List[_GridPointJob]:
    """Pre-draw every grid point's variation and seeds from the root stream."""
    rng = np.random.default_rng(seed)
    jobs: List[_GridPointJob] = []
    for point_index, delta_inject, k_frames in expand_training_grid(
        delta_inject_values, k_values, repeats
    ):
        variation = ScenarioVariation.sample(rng)
        jobs.append(
            _GridPointJob(
                point_index=point_index,
                delta_inject_m=delta_inject,
                k_frames=k_frames,
                variation=variation,
                ads_seed=int(rng.integers(0, 2**31 - 1)),
                attacker_seed=int(rng.integers(0, 2**31 - 1)),
                simulator_seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return jobs


def _collect_grid_point(
    scenario_id: str,
    vector: AttackVector,
    simulation_config: SimulationConfig,
    job: _GridPointJob,
) -> Tuple[int, List[List[float]], List[float]]:
    """Simulate one scripted-attack grid point (the parallel work unit).

    Returns the point's sample rows; both lists are empty when the scripted
    attack never fired.
    """
    point_index = job.point_index
    delta_inject = job.delta_inject_m
    k_frames = job.k_frames
    scenario = build_scenario(scenario_id, job.variation)
    # Degraded-sensing scenarios (e.g. DS-7's fog) must train under the
    # same detector the campaign evaluates with, or the oracle is
    # calibrated for clean sensing it will never see.
    perception_config = (
        PerceptionConfig(detector=scenario.detector_config)
        if scenario.detector_config is not None
        else None
    )
    ads = AdsAgent(
        road=scenario.road,
        planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
        perception_config=perception_config,
        rng=np.random.default_rng(job.ads_seed),
    )
    # The attacker's own reconstruction and stealth bounds must track the
    # scenario's (possibly degraded) detector, exactly as at evaluation time.
    attacker_config = RoboTackConfig.for_detector((vector,), scenario.detector_config)
    attacker = ScriptedAttacker(
        road=scenario.road,
        vector=vector,
        delta_inject_m=delta_inject,
        k_frames=k_frames,
        config=attacker_config,
        rng=np.random.default_rng(job.attacker_seed),
    )
    simulator = Simulator(
        scenario,
        ads,
        config=simulation_config,
        attacker=attacker,
        rng=np.random.default_rng(job.simulator_seed),
    )
    result = simulator.run()
    label = _label_for_run(vector, result, attacker, k_frames)
    features = attacker.record.features_at_launch
    if label is None or features is None:
        return point_index, [], []
    return (
        point_index,
        [[float(value) for value in features.as_array(k_frames)]],
        [float(label)],
    )


def collection_hash_for(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    seed: int,
    repeats: int,
    simulation_config: SimulationConfig | None = None,
) -> str:
    """Content address of a dataset collection: SHA-256 of its full spec.

    Two collections that could produce different samples never share a hash,
    so resuming against a store can only ever skip points collected by an
    identically specified earlier attempt.
    """
    key = (
        "safety-dataset",
        scenario_id,
        vector,
        tuple(float(value) for value in delta_inject_values),
        tuple(int(value) for value in k_values),
        int(seed),
        int(repeats),
        simulation_config or SimulationConfig(),
    )
    return hashlib.sha256(encode_key(key).encode("utf-8")).hexdigest()


def collect_safety_dataset(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    seed: int = 0,
    repeats: int = 1,
    simulation_config: SimulationConfig | None = None,
    executor: ExecutorLike = None,
    store: "ExperimentStore | str | Path | None" = None,
) -> SafetyDataset:
    """Run the scripted-attack simulations and assemble the training dataset.

    Each ``(delta_inject, k)`` grid point is simulated ``repeats`` times with
    independently randomized scenario variations.  Every grid point's
    variation and seeds are pre-drawn in grid order from the root seed's
    single RNG stream, so the assembled dataset is bit-identical whichever
    ``executor`` fans the points out — and identical to the historical serial
    implementation (trained oracle weights are stable artifacts).  With a
    ``store=`` (an :class:`~repro.experiments.store.ExperimentStore` or its
    root path) each point's sample batch is durably recorded as it completes
    and already-stored points are skipped on restart — an interrupted
    collection resumes instead of recomputing.
    """
    grid = _expand_jobs(delta_inject_values, k_values, seed, repeats)
    simulation_config = simulation_config or SimulationConfig()
    resolved_store = _resolve_store(store)
    collected: Dict[int, Tuple[List[List[float]], List[float]]] = {}
    if resolved_store is not None:
        collection_hash_ = collection_hash_for(
            scenario_id, vector, delta_inject_values, k_values, seed, repeats,
            simulation_config,
        )
        resolved_store.write_dataset_manifest(
            collection_hash_,
            {
                "scenario_id": scenario_id,
                "vector": vector.name,
                "delta_inject_values": [float(v) for v in delta_inject_values],
                "k_values": [int(v) for v in k_values],
                "seed": int(seed),
                "repeats": int(repeats),
                "n_points": len(grid),
            },
        )
        done = resolved_store.dataset_point_indices(collection_hash_)
        pending = [job for job in grid if job.point_index not in done]
    else:
        collection_hash_ = None
        pending = grid
    worker = functools.partial(
        _collect_grid_point, scenario_id, vector, simulation_config
    )
    resolved = resolve_executor(executor)
    try:
        # Streaming fan-out: each completed point is checkpointed (store path)
        # or staged (in-memory path) as it lands, so a killed collection loses
        # at most the points in flight.
        for _, (point_index, input_rows, target_rows) in resolved.imap(worker, pending):
            if resolved_store is not None:
                resolved_store.append_dataset_point(
                    collection_hash_, point_index, input_rows, target_rows
                )
            else:
                collected[point_index] = (input_rows, target_rows)
    finally:
        if resolved is not executor:
            resolved.close()
    if resolved_store is not None:
        collected = resolved_store.load_dataset_points(collection_hash_)
        missing = [job.point_index for job in grid if job.point_index not in collected]
        if missing:  # pragma: no cover - store invariant
            raise RuntimeError(
                f"collection {collection_hash_[:12]} is missing grid points "
                f"{missing} after the fan-out completed"
            )
    inputs: List[List[float]] = []
    targets: List[float] = []
    # Assembly order is the grid order, never the completion order — the
    # invariant behind bit-identical serial/parallel/resumed datasets.
    for job in grid:
        point_inputs, point_targets = collected.get(job.point_index, ([], []))
        inputs.extend(point_inputs)
        targets.extend(point_targets)
    if not inputs:
        raise RuntimeError(
            f"no training samples collected for {scenario_id}/{vector.value}; "
            "check the delta_inject grid against the scenario geometry"
        )
    return SafetyDataset(
        vector=vector,
        scenario_id=scenario_id,
        inputs=np.asarray(inputs, dtype=float),
        targets=np.asarray(targets, dtype=float).reshape(-1, 1),
    )


def _resolve_store(store: "ExperimentStore | str | Path | None"):
    """Coerce a store spec to a store (lazy import: experiments imports us)."""
    if store is None:
        return None
    from repro.experiments.store import ExperimentStore

    if isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)


def train_neural_safety_predictor(
    dataset: SafetyDataset,
    epochs: int = 200,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> tuple[NeuralSafetyPredictor, TrainingResult]:
    """Train the paper's NN oracle on a collected dataset.

    Returns the ready-to-use predictor (with input standardization baked in)
    and the training history.
    """
    rng = np.random.default_rng(seed)
    means = dataset.inputs.mean(axis=0)
    stds = dataset.inputs.std(axis=0)
    stds = np.where(stds <= 1e-9, 1.0, stds)
    normalized_inputs = (dataset.inputs - means) / stds
    target_mean = float(dataset.targets.mean())
    target_std = float(dataset.targets.std())
    if target_std <= 1e-9:
        target_std = 1.0
    normalized_targets = (dataset.targets - target_mean) / target_std

    network = FeedForwardNetwork.safety_hijacker_architecture(
        NeuralSafetyPredictor.INPUT_DIM, rng=rng
    )
    result = train_network(
        network,
        normalized_inputs,
        normalized_targets,
        epochs=epochs,
        batch_size=32,
        optimizer=Adam(learning_rate=learning_rate),
        train_fraction=0.6,
        rng=rng,
    )
    predictor = NeuralSafetyPredictor(
        network, means, stds, target_mean=target_mean, target_std=target_std
    )
    return predictor, result


# --------------------------------------------------------------------- #
# Model registry — content-addressed trained oracles in the store
# --------------------------------------------------------------------- #


def dataset_content_hash(dataset: SafetyDataset) -> str:
    """SHA-256 over the dataset's exact contents (vector, inputs, targets)."""
    digest = hashlib.sha256()
    digest.update(dataset.vector.name.encode("utf-8"))
    digest.update(dataset.scenario_id.encode("utf-8"))
    for array in (dataset.inputs, dataset.targets):
        contiguous = np.ascontiguousarray(array, dtype=np.float64)
        digest.update(str(contiguous.shape).encode("utf-8"))
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


def _training_spec_key(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    collect_seed: int,
    repeats: int,
    epochs: int,
    learning_rate: float,
    train_seed: int,
    simulation_config: SimulationConfig | None,
) -> Tuple:
    return (
        "oracle-spec",
        scenario_id,
        vector,
        tuple(float(value) for value in delta_inject_values),
        tuple(int(value) for value in k_values),
        int(collect_seed),
        int(repeats),
        int(epochs),
        float(learning_rate),
        int(train_seed),
        simulation_config or SimulationConfig(),
    )


def training_spec_hash(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    collect_seed: int = 7,
    repeats: int = 2,
    epochs: int = 200,
    learning_rate: float = 1e-3,
    train_seed: Optional[int] = None,
    simulation_config: SimulationConfig | None = None,
) -> str:
    """Hash of the full *specification* of a trained oracle.

    This is the registry's lookup key: a campaign process that knows only the
    spec (not the dataset contents) resolves it to a published model hash via
    the store's ``models/index/``.
    """
    key = _training_spec_key(
        scenario_id, vector, delta_inject_values, k_values, collect_seed, repeats,
        epochs, learning_rate, train_seed if train_seed is not None else collect_seed,
        simulation_config,
    )
    return hashlib.sha256(encode_key(key).encode("utf-8")).hexdigest()


@dataclass
class OracleArtifact:
    """Everything :func:`train_and_register_predictor` produced."""

    predictor: NeuralSafetyPredictor
    training: TrainingResult
    dataset: SafetyDataset
    dataset_hash: str
    spec_hash: str
    #: ``None`` when no store was supplied (nothing was persisted).
    model_hash: Optional[str] = None
    model_dir: Optional[Path] = None


def train_and_register_predictor(
    scenario_id: str,
    vector: AttackVector,
    delta_inject_values: Sequence[float],
    k_values: Sequence[int],
    seed: int = 7,
    repeats: int = 2,
    epochs: int = 200,
    learning_rate: float = 1e-3,
    train_seed: Optional[int] = None,
    simulation_config: SimulationConfig | None = None,
    executor: ExecutorLike = None,
    store: "ExperimentStore | str | Path | None" = None,
) -> OracleArtifact:
    """Collect (parallel, resumable), train, and persist the neural oracle.

    The end-to-end training pipeline: the dataset is collected through
    :func:`collect_safety_dataset` (fanned out over ``executor``, streamed
    into ``store`` when given), the paper's network is trained on it, and —
    when a store is supplied — the predictor is published into the
    content-addressed model registry under
    ``sha256(dataset_hash + training config)`` and indexed by its spec hash
    for lookup by campaign processes.
    """
    train_seed = train_seed if train_seed is not None else seed
    resolved_store = _resolve_store(store)
    dataset = collect_safety_dataset(
        scenario_id=scenario_id,
        vector=vector,
        delta_inject_values=delta_inject_values,
        k_values=k_values,
        seed=seed,
        repeats=repeats,
        simulation_config=simulation_config,
        executor=executor,
        store=resolved_store,
    )
    predictor, result = train_neural_safety_predictor(
        dataset, epochs=epochs, learning_rate=learning_rate, seed=train_seed
    )
    dataset_hash = dataset_content_hash(dataset)
    spec_hash = training_spec_hash(
        scenario_id, vector, delta_inject_values, k_values, collect_seed=seed,
        repeats=repeats, epochs=epochs, learning_rate=learning_rate,
        train_seed=train_seed, simulation_config=simulation_config,
    )
    artifact = OracleArtifact(
        predictor=predictor,
        training=result,
        dataset=dataset,
        dataset_hash=dataset_hash,
        spec_hash=spec_hash,
    )
    if resolved_store is None:
        return artifact
    training_key = _training_spec_key(
        scenario_id, vector, delta_inject_values, k_values, seed, repeats, epochs,
        learning_rate, train_seed, simulation_config,
    )
    model_hash = hashlib.sha256(
        f"{dataset_hash}:{encode_key(training_key)}".encode("utf-8")
    ).hexdigest()
    metadata = {
        "scenario_id": scenario_id,
        "vector": vector.name,
        "dataset_hash": dataset_hash,
        "spec_hash": spec_hash,
        "n_samples": dataset.n_samples,
        "collect_seed": int(seed),
        "repeats": int(repeats),
        "epochs": int(epochs),
        "learning_rate": float(learning_rate),
        "train_seed": int(train_seed),
        "n_train_samples": result.n_train_samples,
        "n_validation_samples": result.n_validation_samples,
        "train_loss": [float(value) for value in result.history.train_loss],
        "validation_loss": [float(value) for value in result.history.validation_loss],
    }
    artifact.model_dir = resolved_store.publish_model(
        model_hash,
        lambda staging: predictor.save(staging / "predictor"),
        metadata,
    )
    artifact.model_hash = model_hash
    resolved_store.register_model_spec(
        spec_hash, model_hash, {"scenario_id": scenario_id, "vector": vector.name}
    )
    return artifact


def load_registered_predictor(
    store: "ExperimentStore | str | Path", spec_hash: str
) -> Optional[NeuralSafetyPredictor]:
    """Load the pretrained oracle registered for a training spec, if any.

    Returns ``None`` when the spec was never trained into this store (or its
    model directory is gone), which callers treat as "train it now".
    """
    resolved_store = _resolve_store(store)
    model_hash = resolved_store.resolve_model_spec(spec_hash)
    if model_hash is None or not resolved_store.has_model(model_hash):
        return None
    return NeuralSafetyPredictor.load(resolved_store.model_dir(model_hash) / "predictor")

"""Tests for the neural-network layers."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, ReLU


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_wrong_input_dimension_rejected(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 2)))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_rejected(self, rng):
        layer = Dense(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_forward_is_affine(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = np.array([[1.0, 2.0, 3.0]])
        expected = x @ layer.weights + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_gradient_matches_finite_differences(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        grad_out = np.ones_like(out)
        layer.backward(grad_out)
        analytic = layer.grad_weights.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += eps
                plus = layer.forward(x).sum()
                layer.weights[i, j] -= 2 * eps
                minus = layer.forward(x).sum()
                layer.weights[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_input_gradient_shape(self, rng):
        layer = Dense(3, 2, rng=rng)
        out = layer.forward(np.ones((4, 3)))
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == (4, 3)

    def test_parameters_and_gradients_share_keys(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.forward(np.ones((1, 3)))
        layer.backward(np.ones((1, 2)))
        assert set(layer.parameters()) == set(layer.gradients())


class TestReLU:
    def test_clips_negative_values(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))


class TestDropout:
    def test_inference_mode_is_identity(self, rng):
        dropout = Dropout(0.5, rng=rng)
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(dropout.forward(x, training=False), x)

    def test_training_mode_zeroes_some_activations(self, rng):
        dropout = Dropout(0.5, rng=rng)
        x = np.ones((10, 100))
        out = dropout.forward(x, training=True)
        assert (out == 0.0).sum() > 0

    def test_training_mode_preserves_expectation(self, rng):
        dropout = Dropout(0.3, rng=rng)
        x = np.ones((200, 200))
        out = dropout.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_rate_is_identity_even_in_training(self, rng):
        dropout = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(dropout.forward(x, training=True), x)

    def test_backward_uses_same_mask(self, rng):
        dropout = Dropout(0.5, rng=rng)
        x = np.ones((5, 20))
        out = dropout.forward(x, training=True)
        grad = dropout.backward(np.ones_like(out))
        np.testing.assert_array_equal((grad == 0.0), (out == 0.0))

"""The driving-scenario catalog: the paper's five scenarios plus extensions.

The paper's §V-C scenarios (Fig. 4):

* **DS-1** - the EV follows a target vehicle (TV) in its lane; the TV cruises
  at 25 kph and starts 60 m ahead.  Used for `Disappear` / `Move_Out` attacks
  on a vehicle.
* **DS-2** - a pedestrian illegally crosses the street ahead of the EV.  Used
  for `Disappear` / `Move_Out` attacks on a pedestrian.
* **DS-3** - a target vehicle is parked in the parking lane.  Used for the
  `Move_In` attack on a vehicle.
* **DS-4** - a pedestrian walks longitudinally towards the EV in the parking
  lane for 5 m and then stands still.  Used for the `Move_In` attack on a
  pedestrian.
* **DS-5** - the EV follows a target vehicle among several other vehicles with
  random trajectories; the baseline random attack is evaluated here.

Catalog extensions beyond the paper:

* **DS-6** - a multi-vehicle platoon cut-in (inspired by the ACC scenic
  scenarios of *acc_verifai*): the EV follows a two-vehicle platoon while a
  faster vehicle merges from the opposite lane into the gap ahead of the EV
  and settles to platoon speed.  The cut-in vehicle is the attack target.
* **DS-7** - a low-visibility pedestrian crossing: the DS-2 geometry under a
  degraded camera detector (fog/low-light: shorter detection range, noisier
  boxes, more frequent misdetection bursts) with a correspondingly slower EV.

Scenarios register themselves with :func:`register_scenario`, a decorator over
the runtime :class:`~repro.runtime.registry.Registry` — downstream projects
can plug in new scenarios (``@register_scenario("DS-8")``) without touching
this module, and every registered scenario is runnable through
:func:`repro.experiments.campaign.run_campaign`.

Each scenario builder accepts a :class:`ScenarioVariation` that randomizes the
initial conditions (speeds, gaps, pedestrian timing) so that campaigns of
independent runs can be generated from seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.geometry import Vec2
from repro.runtime.registry import Registry, RegistryError
from repro.sim.actors import ActorDimensions, ActorKind, EgoVehicle, ScriptedActor
from repro.sim.road import Road
from repro.sim.waypoints import Waypoint, WaypointRoute
from repro.sim.world import World
from repro.utils.units import kph_to_mps

if TYPE_CHECKING:  # pragma: no cover - the sensing stack imports sim.actors,
    # so importing it back here at runtime would be circular.
    from repro.perception.detection import DetectorConfig
    from repro.perception.fusion import FusionConfig

__all__ = [
    "VARIATION_SAMPLING_RANGES",
    "ScenarioVariation",
    "DrivingScenario",
    "ScenarioBuilder",
    "register_scenario",
    "build_scenario",
    "list_scenario_ids",
    "scenario_catalog",
]

#: Longitudinal coordinate (m) at which the ego vehicle starts in every scenario.
_EGO_START_X = 0.0
#: Default cruise speed of the EV (paper: 45 kph unless otherwise specified).
_DEFAULT_CRUISE_KPH = 45.0


#: Uniform ranges the Monte-Carlo campaigns draw each variation field from
#: (``ScenarioVariation.sample``).  The sweep engine's default parameter
#: space (:func:`repro.sim.sweeps.default_variation_space`) is built from
#: this same table, so systematic sweeps cover exactly the volume the random
#: campaigns sample — adjust a range here and both stay in step.
VARIATION_SAMPLING_RANGES: Dict[str, tuple] = {
    "ego_speed_scale": (0.95, 1.05),
    "lead_gap_offset_m": (-8.0, 8.0),
    "lead_speed_offset_mps": (-0.8, 0.8),
    "pedestrian_delay_s": (0.0, 1.5),
    "pedestrian_speed_scale": (0.9, 1.15),
}


@dataclass(frozen=True)
class ScenarioVariation:
    """Per-run randomization of a scenario's initial conditions."""

    ego_speed_scale: float = 1.0
    lead_gap_offset_m: float = 0.0
    lead_speed_offset_mps: float = 0.0
    pedestrian_delay_s: float = 0.0
    pedestrian_speed_scale: float = 1.0
    npc_seed: int = 0

    @staticmethod
    def sample(rng: np.random.Generator) -> "ScenarioVariation":
        """Draw a random variation (used by experiment campaigns)."""
        ranges = VARIATION_SAMPLING_RANGES
        return ScenarioVariation(
            ego_speed_scale=float(rng.uniform(*ranges["ego_speed_scale"])),
            lead_gap_offset_m=float(rng.uniform(*ranges["lead_gap_offset_m"])),
            lead_speed_offset_mps=float(rng.uniform(*ranges["lead_speed_offset_mps"])),
            pedestrian_delay_s=float(rng.uniform(*ranges["pedestrian_delay_s"])),
            pedestrian_speed_scale=float(rng.uniform(*ranges["pedestrian_speed_scale"])),
            npc_seed=int(rng.integers(0, 2**31 - 1)),
        )

    @staticmethod
    def nominal() -> "ScenarioVariation":
        """The unperturbed scenario (useful for golden-run tests)."""
        return ScenarioVariation()


@dataclass
class DrivingScenario:
    """A fully-instantiated scenario ready to be simulated."""

    scenario_id: str
    description: str
    world: World
    road: Road
    cruise_speed_mps: float
    #: Actor id of the intended attack target (the TV or the pedestrian).
    target_actor_id: Optional[int]
    #: Kind of the intended attack target.
    target_kind: Optional[ActorKind]
    duration_s: float
    #: Additional scenario metadata (initial gaps etc.), for logging.
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Detector override for degraded-sensing scenarios (``None`` = default).
    detector_config: Optional["DetectorConfig"] = None
    #: Fusion-policy override for fusion-variant victims (``None`` = the
    #: default late-fusion policy).
    fusion_config: Optional["FusionConfig"] = None


#: Signature every registered scenario builder must satisfy.
ScenarioBuilder = Callable[[ScenarioVariation], DrivingScenario]

_SCENARIOS: Registry[ScenarioBuilder] = Registry("driving scenario")


def register_scenario(
    scenario_id: str, *, description: str = "", overwrite: bool = False
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register the decorated builder in the scenario catalog under ``scenario_id``.

    >>> @register_scenario("DS-8")
    ... def _build_ds8(variation: ScenarioVariation) -> DrivingScenario:
    ...     ...
    """
    return _SCENARIOS.register(scenario_id, description=description, overwrite=overwrite)


def list_scenario_ids() -> List[str]:
    """The identifiers of all registered driving scenarios."""
    return _SCENARIOS.keys()


def scenario_catalog() -> Dict[str, str]:
    """Mapping of scenario id to its one-line description."""
    return {scenario_id: _SCENARIOS.description(scenario_id) for scenario_id in _SCENARIOS}


def build_scenario(
    scenario_id: str, variation: ScenarioVariation | None = None
) -> DrivingScenario:
    """Instantiate a driving scenario by id with the given variation."""
    try:
        builder = _SCENARIOS.get(scenario_id)
    except RegistryError:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {list_scenario_ids()}"
        ) from None
    variation = variation or ScenarioVariation.nominal()
    return builder(variation)


def _make_ego(speed_mps: float) -> EgoVehicle:
    return EgoVehicle(position=Vec2(_EGO_START_X, 0.0), speed_mps=speed_mps)


@register_scenario("DS-1", description="EV follows a target vehicle in its lane")
def _build_ds1(variation: ScenarioVariation) -> DrivingScenario:
    """DS-1: EV follows a constant-speed target vehicle in the ego lane."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    tv_speed = max(1.0, kph_to_mps(25.0) + variation.lead_speed_offset_mps)
    start_gap = 60.0 + variation.lead_gap_offset_m
    ego = _make_ego(speed_mps=cruise)
    tv_start = Vec2(_EGO_START_X + start_gap, 0.0)
    tv_route = WaypointRoute.straight_line(
        start=tv_start, end=Vec2(tv_start.x + 1500.0, 0.0), speed_mps=tv_speed
    )
    target = ScriptedActor(ActorKind.VEHICLE, tv_route, ActorDimensions.suv(), name="target-vehicle")
    world = World(ego=ego, actors=[target], road=road)
    return DrivingScenario(
        scenario_id="DS-1",
        description="EV follows a target vehicle cruising at 25 kph, starting 60 m ahead",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=target.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=35.0,
        metadata={"initial_gap_m": start_gap, "tv_speed_mps": tv_speed},
    )


def _pedestrian_crossing_scenario(
    variation: ScenarioVariation,
    scenario_id: str,
    description: str,
    crossing_x_nominal: float,
    cruise_kph: float,
    pedestrian_name: str,
    detector_config: Optional["DetectorConfig"] = None,
) -> DrivingScenario:
    """Shared geometry of the pedestrian-crossing scenarios (DS-2, DS-7)."""
    road = Road()
    cruise = kph_to_mps(cruise_kph) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    crossing_x = crossing_x_nominal + variation.lead_gap_offset_m
    walk_speed = 1.4 * variation.pedestrian_speed_scale
    start_y, end_y = -6.0, 6.0
    route = WaypointRoute(
        [
            Waypoint(position=Vec2(crossing_x, start_y), speed_mps=0.0,
                     hold_s=variation.pedestrian_delay_s),
            Waypoint(position=Vec2(crossing_x, end_y), speed_mps=walk_speed),
        ]
    )
    pedestrian = ScriptedActor(ActorKind.PEDESTRIAN, route, name=pedestrian_name)
    world = World(ego=ego, actors=[pedestrian], road=road)
    return DrivingScenario(
        scenario_id=scenario_id,
        description=description,
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=pedestrian.actor_id,
        target_kind=ActorKind.PEDESTRIAN,
        duration_s=25.0,
        metadata={"crossing_x_m": crossing_x, "walk_speed_mps": walk_speed},
        detector_config=detector_config,
    )


@register_scenario("DS-2", description="A pedestrian illegally crosses ahead of the EV")
def _build_ds2(variation: ScenarioVariation) -> DrivingScenario:
    """DS-2: a pedestrian illegally crosses the street ahead of the EV."""
    return _pedestrian_crossing_scenario(
        variation,
        scenario_id="DS-2",
        description="A pedestrian illegally crosses the street in front of the EV",
        crossing_x_nominal=85.0,
        cruise_kph=_DEFAULT_CRUISE_KPH,
        pedestrian_name="crossing-pedestrian",
    )


@register_scenario("DS-3", description="A target vehicle is parked in the parking lane")
def _build_ds3(variation: ScenarioVariation) -> DrivingScenario:
    """DS-3: a target vehicle is parked in the parking lane."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    parked_x = 110.0 + variation.lead_gap_offset_m
    parked_y = road.lane("parking").center_y
    parked = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.stationary(Vec2(parked_x, parked_y)),
        ActorDimensions.sedan(),
        name="parked-vehicle",
    )
    world = World(ego=ego, actors=[parked], road=road)
    return DrivingScenario(
        scenario_id="DS-3",
        description="A target vehicle is parked on the side of the street in the parking lane",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=parked.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=20.0,
        metadata={"parked_x_m": parked_x},
    )


@register_scenario("DS-4", description="A pedestrian walks towards the EV in the parking lane")
def _build_ds4(variation: ScenarioVariation) -> DrivingScenario:
    """DS-4: a pedestrian walks towards the EV in the parking lane, then stops."""
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    walk_speed = 1.4 * variation.pedestrian_speed_scale
    ped_start_x = 120.0 + variation.lead_gap_offset_m
    ped_y = road.lane("parking").center_y + 0.8
    route = WaypointRoute(
        [
            Waypoint(position=Vec2(ped_start_x, ped_y), speed_mps=0.0,
                     hold_s=variation.pedestrian_delay_s),
            Waypoint(position=Vec2(ped_start_x - 5.0, ped_y), speed_mps=walk_speed,
                     hold_s=1e6),
        ]
    )
    pedestrian = ScriptedActor(ActorKind.PEDESTRIAN, route, name="walking-pedestrian")
    world = World(ego=ego, actors=[pedestrian], road=road)
    return DrivingScenario(
        scenario_id="DS-4",
        description=(
            "A pedestrian walks longitudinally towards the EV in the parking lane "
            "for 5 m and then stands still"
        ),
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=pedestrian.actor_id,
        target_kind=ActorKind.PEDESTRIAN,
        duration_s=20.0,
        metadata={"ped_start_x_m": ped_start_x},
    )


@register_scenario("DS-5", description="EV follows a target vehicle among random traffic")
def _build_ds5(variation: ScenarioVariation) -> DrivingScenario:
    """DS-5: the EV follows a target vehicle among other random-traffic vehicles."""
    road = Road()
    rng = np.random.default_rng(variation.npc_seed)
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    tv_speed = max(1.0, kph_to_mps(25.0) + variation.lead_speed_offset_mps)
    start_gap = 60.0 + variation.lead_gap_offset_m
    tv_start = Vec2(_EGO_START_X + start_gap, 0.0)
    target = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.straight_line(tv_start, Vec2(tv_start.x + 1500.0, 0.0), tv_speed),
        ActorDimensions.suv(),
        name="target-vehicle",
    )
    actors: List[ScriptedActor] = [target]
    opposite_y = road.lane("opposite").center_y
    n_npcs = int(rng.integers(2, 5))
    for npc_index in range(n_npcs):
        npc_speed = float(rng.uniform(kph_to_mps(20.0), kph_to_mps(50.0)))
        npc_start_x = float(rng.uniform(80.0, 400.0))
        # Oncoming traffic in the opposite lane drives towards the EV.
        npc_route = WaypointRoute.straight_line(
            start=Vec2(npc_start_x, opposite_y),
            end=Vec2(npc_start_x - 1500.0, opposite_y),
            speed_mps=npc_speed,
        )
        actors.append(
            ScriptedActor(ActorKind.VEHICLE, npc_route, name=f"npc-vehicle-{npc_index}")
        )
    # Background traffic in the ego lane far ahead of the target vehicle and
    # behind the EV (paper: "as well as in front or behind").  These actors
    # rarely interact with the EV but are legitimate targets for the random
    # baseline attack.
    far_ahead_speed = kph_to_mps(40.0)
    actors.append(
        ScriptedActor(
            ActorKind.VEHICLE,
            WaypointRoute.straight_line(
                Vec2(tv_start.x + 220.0, 0.0), Vec2(tv_start.x + 1700.0, 0.0), far_ahead_speed
            ),
            name="npc-vehicle-far-ahead",
        )
    )
    actors.append(
        ScriptedActor(
            ActorKind.VEHICLE,
            WaypointRoute.straight_line(
                Vec2(_EGO_START_X - 40.0, 0.0), Vec2(_EGO_START_X + 1400.0, 0.0), kph_to_mps(20.0)
            ),
            name="npc-vehicle-behind",
        )
    )
    world = World(ego=ego, actors=actors, road=road)
    return DrivingScenario(
        scenario_id="DS-5",
        description="EV follows a target vehicle among other vehicles with random trajectories",
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=target.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=35.0,
        metadata={"n_npcs": float(n_npcs), "initial_gap_m": start_gap},
    )


@register_scenario("DS-6", description="A faster vehicle cuts into the platoon gap ahead of the EV")
def _build_ds6(variation: ScenarioVariation) -> DrivingScenario:
    """DS-6: multi-vehicle platoon cut-in (acc_verifai-style ACC scenario).

    The EV follows a two-vehicle platoon cruising at 25 kph.  A faster vehicle
    approaches in the opposite lane, merges diagonally into the gap between the
    EV and the platoon tail, and settles to platoon speed — the classic ACC
    cut-in stressor.  The cut-in vehicle is the intended attack target: once it
    occupies the ego lane it is a candidate for `Disappear` / `Move_Out`.
    """
    road = Road()
    cruise = kph_to_mps(_DEFAULT_CRUISE_KPH) * variation.ego_speed_scale
    ego = _make_ego(speed_mps=cruise)
    platoon_speed = max(1.0, kph_to_mps(25.0) + variation.lead_speed_offset_mps)
    tail_gap = 85.0 + variation.lead_gap_offset_m
    tail_start = Vec2(_EGO_START_X + tail_gap, 0.0)
    platoon_tail = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.straight_line(tail_start, Vec2(tail_start.x + 1500.0, 0.0), platoon_speed),
        ActorDimensions.suv(),
        name="platoon-tail",
    )
    platoon_lead = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.straight_line(
            Vec2(tail_start.x + 18.0, 0.0), Vec2(tail_start.x + 1518.0, 0.0), platoon_speed
        ),
        ActorDimensions.sedan(),
        name="platoon-lead",
    )
    # The cutter starts beside/ahead of the EV in the opposite lane, merges
    # into the ego lane well ahead of the EV, and decelerates to platoon
    # speed.  The merge point leaves the EV a DS-1-like following gap at
    # merge completion (the EV covers ~30 m while the cutter crosses over),
    # so a benign run ends in ordinary car following, not a crash — the
    # hazard must come from the attack, not the geometry.
    opposite_y = road.lane("opposite").center_y
    merge_speed = max(platoon_speed + 3.0, kph_to_mps(40.0))
    merge_x = _EGO_START_X + 90.0 + 0.5 * variation.lead_gap_offset_m
    cutter_route = WaypointRoute(
        [
            Waypoint(position=Vec2(merge_x - 25.0, opposite_y), speed_mps=merge_speed),
            Waypoint(position=Vec2(merge_x, 0.0), speed_mps=merge_speed),
            Waypoint(position=Vec2(merge_x + 40.0, 0.0), speed_mps=platoon_speed),
            Waypoint(position=Vec2(merge_x + 1500.0, 0.0), speed_mps=platoon_speed),
        ]
    )
    cutter = ScriptedActor(
        ActorKind.VEHICLE, cutter_route, ActorDimensions.sedan(), name="cut-in-vehicle"
    )
    world = World(ego=ego, actors=[platoon_tail, platoon_lead, cutter], road=road)
    return DrivingScenario(
        scenario_id="DS-6",
        description=(
            "EV follows a two-vehicle platoon while a faster vehicle cuts in "
            "from the opposite lane and settles to platoon speed"
        ),
        world=world,
        road=road,
        cruise_speed_mps=cruise,
        target_actor_id=cutter.actor_id,
        target_kind=ActorKind.VEHICLE,
        duration_s=35.0,
        metadata={
            "platoon_gap_m": tail_gap,
            "platoon_speed_mps": platoon_speed,
            "merge_x_m": merge_x,
        },
    )


def _degraded_detector_config() -> "DetectorConfig":
    """A fog/low-light detector: noisier boxes, longer bursts, shorter range.

    Expressed through the same :class:`DetectorDegradation` factors the sweep
    engine exposes as its ``detector.*`` axes, so DS-7's fixed fog level is
    one point of the sweepable degradation space.  ``range_scale=2`` halves
    the usable detection range: objects must appear twice as tall in the
    image before the detector reports them.
    """
    from repro.perception.detection import DetectorDegradation

    return DetectorDegradation(
        sigma_scale=1.5, misdetection_scale=4.0, burst_scale=1.25, range_scale=2.0
    ).apply()


@register_scenario("DS-7", description="Pedestrian crossing in fog with a degraded detector")
def _build_ds7(variation: ScenarioVariation) -> DrivingScenario:
    """DS-7: low-visibility pedestrian crossing with a degraded camera detector.

    The DS-2 geometry under fog/low-light sensing: the simulated detector
    reports objects later (shorter range), with wider centre noise and more
    frequent misdetection bursts, and the EV cruises slower (35 kph), as a
    human-supervised deployment would in fog.  Degraded sensing both masks the
    attacker's perturbations inside a noisier baseline and leaves the ADS less
    margin to recover.
    """
    return _pedestrian_crossing_scenario(
        variation,
        scenario_id="DS-7",
        description=(
            "A pedestrian crosses ahead of the EV in fog: the camera detector "
            "sees late, noisily, and with frequent misdetection bursts"
        ),
        crossing_x_nominal=75.0,
        cruise_kph=35.0,
        pedestrian_name="fog-crossing-pedestrian",
        detector_config=_degraded_detector_config(),
    )

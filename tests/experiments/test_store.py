"""Property and concurrency tests for the durable experiment store.

* round-trip: ``RunRecord`` → JSONL+NPZ → ``RunRecord`` is lossless across
  arbitrary seeds, scenarios, float oddities (NaN, inf), events, and traces;
* concurrency: many writer processes appending to the *same* campaign log
  never corrupt or interleave records (flock-guarded single-write appends);
* hygiene: torn tail lines are tolerated, unknown schemas are rejected,
  and queries filter across campaigns.
"""

import json
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attack_vectors import AttackVector
from repro.experiments.results import RunResult
from repro.experiments.store import (
    SCHEMA_VERSION,
    ExperimentStore,
    RunRecord,
    records_equal,
)
from repro.runtime import ParallelExecutor
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
measure_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)


@st.composite
def run_results(draw, run_index: int):
    vector = draw(st.sampled_from(list(AttackVector) + [None]))
    return RunResult(
        run_index=run_index,
        seed=draw(st.integers(min_value=0, max_value=2**63 - 1)),
        scenario_id=draw(st.sampled_from(["DS-1", "DS-2", "DS-7", "DS-X"])),
        attacker_kind=draw(st.sampled_from(["robotack", "random", "none"])),
        vector=vector,
        target_kind=draw(st.sampled_from(list(ActorKind) + [None])),
        attack_launched=draw(st.booleans()),
        emergency_braking=draw(st.booleans()),
        collision=draw(st.booleans()),
        accident=draw(st.booleans()),
        min_true_delta_m=draw(measure_floats),
        true_delta_at_attack_end_m=draw(measure_floats),
        predicted_delta_m=draw(measure_floats),
        planned_k_frames=draw(st.integers(min_value=0, max_value=10**6)),
        frames_perturbed=draw(st.integers(min_value=0, max_value=10**6)),
        k_prime_frames=draw(st.integers(min_value=0, max_value=10**6)),
        delta_at_launch_m=draw(measure_floats),
    )


@st.composite
def run_records(draw):
    run_index = draw(st.integers(min_value=0, max_value=10**6))
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["emergency_brake", "collision", "attack_started", "attack_ended"]
                ),
                st.integers(min_value=0, max_value=10**4),
                finite_floats,
                st.dictionaries(
                    st.text(min_size=1, max_size=12), finite_floats, max_size=3
                ),
            ),
            max_size=6,
        )
    )
    trace = st.lists(measure_floats, max_size=40).map(
        lambda values: np.asarray(values, dtype=np.float64)
    )
    return RunRecord(
        config_hash=draw(st.sampled_from(["a" * 64, "b" * 64])),
        campaign_id=draw(st.text(min_size=1, max_size=24)),
        run_index=run_index,
        seed=draw(st.integers(min_value=0, max_value=2**63 - 1)),
        variation=ScenarioVariation(
            ego_speed_scale=draw(finite_floats),
            lead_gap_offset_m=draw(finite_floats),
            lead_speed_offset_mps=draw(finite_floats),
            pedestrian_delay_s=draw(finite_floats),
            pedestrian_speed_scale=draw(finite_floats),
            npc_seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        ),
        result=draw(run_results(run_index)),
        steps_executed=draw(st.integers(min_value=0, max_value=10**4)),
        duration_s=draw(finite_floats),
        halted_on_collision=draw(st.booleans()),
        events=tuple(events),
        true_delta_trace=draw(trace),
        perceived_delta_trace=draw(trace),
        ego_speed_trace=draw(trace),
    )


# --------------------------------------------------------------------- #
# Round-trip properties
# --------------------------------------------------------------------- #


class TestRoundTrip:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(record=run_records())
    def test_append_then_load_is_lossless(self, record):
        with tempfile.TemporaryDirectory() as root:
            store = ExperimentStore(root)
            store.append(record)
            loaded = store.load_records(record.config_hash)
            assert len(loaded) == 1
            assert records_equal(record, loaded[0])

    @settings(max_examples=20, deadline=None)
    @given(record=run_records())
    def test_json_dict_round_trip(self, record):
        payload = json.loads(json.dumps(record.to_json_dict()))
        rebuilt = RunRecord.from_json_dict(
            payload,
            record.true_delta_trace,
            record.perceived_delta_trace,
            record.ego_speed_trace,
        )
        assert records_equal(record, rebuilt)

    def test_reappend_same_index_last_write_wins(self, tmp_path, example_record):
        store = ExperimentStore(tmp_path)
        store.append(example_record)
        import dataclasses

        updated = dataclasses.replace(example_record, steps_executed=999)
        store.append(updated)
        loaded = store.load_records(example_record.config_hash)
        assert len(loaded) == 1
        assert loaded[0].steps_executed == 999

    def test_load_without_traces_skips_npz(self, tmp_path, example_record):
        store = ExperimentStore(tmp_path)
        store.append(example_record)
        (record,) = store.load_records(example_record.config_hash, with_traces=False)
        assert record.true_delta_trace.size == 0
        assert record.result.run_index == example_record.result.run_index

    def test_torn_tail_line_is_tolerated(self, tmp_path, example_record):
        store = ExperimentStore(tmp_path)
        store.append(example_record)
        path = tmp_path / "runs" / f"{example_record.config_hash}.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"run_index": 7, "truncat')  # simulated crash mid-write
        loaded = store.load_records(example_record.config_hash)
        assert len(loaded) == 1
        assert records_equal(example_record, loaded[0])

    def test_append_after_torn_tail_starts_a_fresh_line(self, tmp_path, example_record):
        # A writer killed mid-append leaves a newline-less tail; the next
        # append must not glue onto it (that would hide its own record too).
        store = ExperimentStore(tmp_path)
        path = tmp_path / "runs" / f"{example_record.config_hash}.jsonl"
        path.parent.mkdir(parents=True)
        path.write_text('{"run_index": 7, "truncat')
        store.append(example_record)
        loaded = store.load_records(example_record.config_hash)
        assert len(loaded) == 1
        assert records_equal(example_record, loaded[0])

    def test_newer_schema_is_rejected(self, example_record):
        payload = example_record.to_json_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer schema"):
            RunRecord.from_json_dict(
                payload, np.empty(0), np.empty(0), np.empty(0)
            )


@pytest.fixture
def example_record():
    return _make_record("c" * 64, run_index=4, salt=1)


# --------------------------------------------------------------------- #
# Concurrent writers
# --------------------------------------------------------------------- #


def _make_record(config_hash_: str, run_index: int, salt: int) -> RunRecord:
    """A deterministic record with a multi-kilobyte JSONL line.

    The events list is deliberately long so a single record's line exceeds
    the pipe-buffer size under which plain O_APPEND writes happen to be
    atomic — interleaving would corrupt the JSON and fail the reload.
    """
    rng = np.random.default_rng([run_index, salt])
    events = tuple(
        ("emergency_brake", i, float(i) * 0.1, {"perceived_delta_m": float(rng.uniform())})
        for i in range(150)
    )
    return RunRecord(
        config_hash=config_hash_,
        campaign_id="concurrency",
        run_index=run_index,
        seed=int(rng.integers(0, 2**62)),
        variation=ScenarioVariation(npc_seed=run_index),
        result=RunResult(
            run_index=run_index,
            seed=run_index,
            scenario_id="DS-1",
            attacker_kind="none",
            vector=None,
            target_kind=ActorKind.VEHICLE,
            attack_launched=False,
            emergency_braking=False,
            collision=False,
            accident=False,
            min_true_delta_m=float(rng.uniform(4.0, 60.0)),
            true_delta_at_attack_end_m=float("nan"),
            predicted_delta_m=float("nan"),
            planned_k_frames=0,
            frames_perturbed=0,
            k_prime_frames=0,
            delta_at_launch_m=float("nan"),
        ),
        steps_executed=100 + run_index,
        duration_s=float(run_index),
        halted_on_collision=False,
        events=events,
        true_delta_trace=rng.uniform(0.0, 100.0, size=300),
        perceived_delta_trace=rng.uniform(0.0, 100.0, size=300),
        ego_speed_trace=rng.uniform(0.0, 15.0, size=300),
    )


_CONCURRENCY_HASH = "d" * 64
_RUNS_PER_WORKER = 8


def _append_worker(task) -> int:
    root, worker_id = task
    store = ExperimentStore(root)
    for i in range(_RUNS_PER_WORKER):
        run_index = worker_id * _RUNS_PER_WORKER + i
        store.append(_make_record(_CONCURRENCY_HASH, run_index, salt=worker_id))
    return worker_id


class TestConcurrentWriters:
    def test_parallel_workers_never_corrupt_or_interleave(self, tmp_path):
        n_workers = 4
        with ParallelExecutor(max_workers=n_workers) as executor:
            done = executor.map(
                _append_worker, [(str(tmp_path), w) for w in range(n_workers)]
            )
        assert sorted(done) == list(range(n_workers))

        store = ExperimentStore(tmp_path)
        # Every line must parse (load_records silently drops only torn tails;
        # count equality proves nothing was torn or interleaved).
        path = tmp_path / "runs" / f"{_CONCURRENCY_HASH}.jsonl"
        lines = [line for line in path.read_text().splitlines() if line]
        assert len(lines) == n_workers * _RUNS_PER_WORKER
        for line in lines:
            json.loads(line)

        records = store.load_records(_CONCURRENCY_HASH)
        assert [r.run_index for r in records] == list(
            range(n_workers * _RUNS_PER_WORKER)
        )
        for record in records:
            worker_id = record.run_index // _RUNS_PER_WORKER
            expected = _make_record(_CONCURRENCY_HASH, record.run_index, salt=worker_id)
            assert records_equal(record, expected)


# --------------------------------------------------------------------- #
# Dataset records and the model registry
# --------------------------------------------------------------------- #

_COLLECTION_HASH = "c" * 64


class TestDatasetRecords:
    def test_append_then_load_round_trips_floats_exactly(self, tmp_path):
        store = ExperimentStore(tmp_path)
        inputs = [[0.1 + 0.2, -3.725290298461914e-09, 1e308, 42.0]]
        targets = [17.000000000000004]
        store.append_dataset_point(_COLLECTION_HASH, 3, inputs, targets)
        points = store.load_dataset_points(_COLLECTION_HASH)
        assert points == {3: (inputs, targets)}

    def test_empty_sample_batch_is_a_recorded_point(self, tmp_path):
        # A grid point whose scripted attack never fired still checkpoints
        # (with zero rows) so a resume does not re-simulate it.
        store = ExperimentStore(tmp_path)
        store.append_dataset_point(_COLLECTION_HASH, 0, [], [])
        assert store.dataset_point_indices(_COLLECTION_HASH) == {0}
        assert store.load_dataset_points(_COLLECTION_HASH) == {0: ([], [])}

    def test_reappend_same_point_last_write_wins(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.append_dataset_point(_COLLECTION_HASH, 1, [[1.0]], [1.0])
        store.append_dataset_point(_COLLECTION_HASH, 1, [[2.0]], [2.0])
        assert store.load_dataset_points(_COLLECTION_HASH) == {1: ([[2.0]], [2.0])}

    def test_dataset_manifest_is_idempotent(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.write_dataset_manifest(_COLLECTION_HASH, {"n_points": 4})
        store.write_dataset_manifest(_COLLECTION_HASH, {"n_points": 999})
        manifest = store.load_dataset_manifest(_COLLECTION_HASH)
        assert manifest["n_points"] == 4
        assert manifest["collection_hash"] == _COLLECTION_HASH

    def test_collections_are_isolated(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.append_dataset_point("a" * 64, 0, [[1.0]], [1.0])
        assert store.dataset_point_indices("b" * 64) == set()


class TestModelRegistry:
    _MODEL_HASH = "d" * 64

    def _publish(self, store, content="weights"):
        def write(staging):
            (staging / "artifact.txt").write_text(content)

        return store.publish_model(self._MODEL_HASH, write, {"scenario_id": "DS-2"})

    def test_publish_is_atomic_and_readable(self, tmp_path):
        store = ExperimentStore(tmp_path)
        final = self._publish(store)
        assert store.has_model(self._MODEL_HASH)
        assert (final / "artifact.txt").read_text() == "weights"
        metadata = store.load_model_metadata(self._MODEL_HASH)
        assert metadata["model_hash"] == self._MODEL_HASH
        assert metadata["scenario_id"] == "DS-2"
        # No staging leftovers.
        assert not list((tmp_path / "models").glob(".tmp-*"))

    def test_republish_same_hash_is_a_no_op(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._publish(store, content="first")
        self._publish(store, content="second")  # content-addressed: same artifact
        assert (store.model_dir(self._MODEL_HASH) / "artifact.txt").read_text() == "first"

    def test_spec_index_round_trip(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec_hash = "e" * 64
        assert store.resolve_model_spec(spec_hash) is None
        store.register_model_spec(spec_hash, self._MODEL_HASH, {"scenario_id": "DS-2"})
        assert store.resolve_model_spec(spec_hash) == self._MODEL_HASH

    def test_model_hashes_excludes_index_and_staging(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._publish(store)
        store.register_model_spec("f" * 64, self._MODEL_HASH)
        (tmp_path / "models" / ".tmp-leftover").mkdir()
        assert store.model_hashes() == [self._MODEL_HASH]


# --------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------- #


class TestQueries:
    def test_iter_records_filters_across_campaigns(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.append(_make_record("e" * 64, run_index=0, salt=0))
        store.append(_make_record("f" * 64, run_index=1, salt=0))
        assert len(list(store.iter_records())) == 2
        assert len(list(store.iter_records(scenario_id="DS-1"))) == 2
        assert list(store.iter_records(scenario_id="DS-9")) == []
        assert len(list(store.iter_records(campaign_id="concurrency"))) == 2

    def test_empty_store_queries(self, tmp_path):
        store = ExperimentStore(tmp_path)
        assert store.run_indices("0" * 64) == set()
        assert store.load_records("0" * 64) == []
        assert list(store.iter_records()) == []
        assert store.manifests() == {}
        assert store.incomplete_campaigns() == []
        assert store.campaign_results() == []


class TestConsumers:
    """The table/figure layer reads stored runs instead of re-simulating."""

    def test_tables_and_summaries_come_from_stored_runs(self, tmp_path):
        from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaign
        from repro.experiments.figures import fig7_panels_from_store
        from repro.experiments.tables import table2_from_store
        from repro.sim.config import SimulationConfig

        config = CampaignConfig(
            campaign_id="store-consumers",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=2,
            seed=77,
            simulation=SimulationConfig(max_duration_s=1.0),
        )
        store = ExperimentStore(tmp_path)
        executed = run_campaign(config, store=store)

        (row,) = table2_from_store(store)
        assert row.campaign_id == "store-consumers"
        assert row.n_runs == 2
        assert row.emergency_braking_count == executed.emergency_braking_count

        (summary,) = store.summaries()
        assert summary.campaign_id == "store-consumers"
        assert summary.n_runs == 2

        # Benign campaigns launch no attacks, so Fig. 7 has no panels — but
        # the store-backed path must still assemble without re-simulating.
        assert fig7_panels_from_store(store) == []
        assert fig7_panels_from_store(store, [config]) == []

    def test_incomplete_campaigns_are_rejected_by_aggregators(self, tmp_path):
        from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaign
        from repro.experiments.figures import fig7_panels_from_store
        from repro.experiments.tables import table2_from_store
        from repro.runtime import FaultInjectingExecutor, InjectedFault
        from repro.sim.config import SimulationConfig

        config = CampaignConfig(
            campaign_id="partial",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=3,
            seed=13,
            simulation=SimulationConfig(max_duration_s=1.0),
        )
        store = ExperimentStore(tmp_path)
        with pytest.raises(InjectedFault):
            run_campaign(config, store=store, executor=FaultInjectingExecutor(1))

        # Rates over 1 of 3 runs would be silently wrong statistics.
        with pytest.raises(ValueError, match="incomplete"):
            table2_from_store(store)
        with pytest.raises(ValueError, match="incomplete"):
            fig7_panels_from_store(store)
        with pytest.raises(ValueError, match="incomplete"):
            store.summaries()
        with pytest.raises(ValueError, match="incomplete"):
            store.campaign_result(config)
        # Explicit opt-in (and the resume machinery) still see partial data.
        (row,) = table2_from_store(store, allow_partial=True)
        assert row.n_runs == 1
        assert store.campaign_result(config, allow_partial=True).n_runs == 1

    def test_requested_unknown_hash_raises(self, tmp_path):
        store = ExperimentStore(tmp_path)
        with pytest.raises(KeyError, match="no manifest stored"):
            store.campaign_results(config_hashes=["0" * 64])

    def test_fusion_defense_table_from_swept_store(self, tmp_path):
        """A fusion.policy sweep written through a store renders the defense
        table end to end: each stored campaign lands in its policy cell."""
        from repro.experiments.campaign import AttackerKind, CampaignConfig, run_campaign
        from repro.experiments.tables import fusion_defense_from_store
        from repro.sim.config import SimulationConfig
        from repro.sim.sweeps import Choice, ParameterSpace, sweep_campaigns

        base = CampaignConfig(
            campaign_id="fusion-defense",
            scenario_id="DS-1",
            attacker=AttackerKind.RANDOM,
            vector=AttackVector.MOVE_IN,
            n_runs=2,
            seed=5,
            simulation=SimulationConfig(max_duration_s=1.0),
        )
        space = ParameterSpace(
            {"fusion.policy": Choice(("late", "consistency_gated"))}
        )
        configs = sweep_campaigns(base, space, sampler="grid")
        assert [c.fusion_policy for c in configs] == ["late", "consistency_gated"]

        store = ExperimentStore(tmp_path)
        for config in configs:
            run_campaign(config, store=store)

        rows = fusion_defense_from_store(store)
        assert [(r.scenario_id, r.fusion_policy) for r in rows] == [
            ("DS-1", "consistency_gated"),
            ("DS-1", "late"),
        ]
        for row in rows:
            assert row.n_campaigns == 1
            assert row.n_runs == 2
            assert 0.0 <= row.attack_success_rate <= 1.0

        # The manifests round-trip the fusion config, so a fresh store handle
        # (a later analysis session) renders the same table.
        rows_again = fusion_defense_from_store(ExperimentStore(tmp_path))
        assert rows_again == rows


# --------------------------------------------------------------------- #
# Incremental aggregation
# --------------------------------------------------------------------- #


class TestAggregate:
    """The incremental/filtered outcome query behind the search loop."""

    HASH_A = "e" * 64
    HASH_B = "f" * 64

    def _fill(self, store: ExperimentStore, config_hash_: str, indices) -> None:
        for run_index in indices:
            store.append(_make_record(config_hash_, run_index=run_index, salt=3))

    def test_full_scan_covers_every_campaign(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._fill(store, self.HASH_A, range(3))
        self._fill(store, self.HASH_B, range(5))
        batch = store.aggregate()
        assert sorted(batch.outcomes) == [self.HASH_A, self.HASH_B]
        assert batch.summary(self.HASH_A).n_runs == 3
        assert batch.summary(self.HASH_B).n_runs == 5
        summaries = batch.summaries()
        assert summaries[self.HASH_B].launched == 0
        assert summaries[self.HASH_B].successes == 0
        assert np.isfinite(summaries[self.HASH_B].min_min_delta_m)

    def test_hash_filter_reads_only_requested_logs(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._fill(store, self.HASH_A, range(2))
        self._fill(store, self.HASH_B, range(2))
        batch = store.aggregate(config_hashes=[self.HASH_A])
        assert list(batch.outcomes) == [self.HASH_A]
        assert list(batch.cursor) == [self.HASH_A]
        # Requesting a hash with no log yet is not an error: zero outcomes,
        # cursor at zero, so a later incremental call starts from the top.
        empty = store.aggregate(config_hashes=["9" * 64])
        assert empty.outcomes == {"9" * 64: {}}
        assert empty.cursor == {"9" * 64: 0}
        assert empty.summary("9" * 64).n_runs == 0

    def test_incremental_cursor_reads_only_new_lines(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._fill(store, self.HASH_A, range(3))
        first = store.aggregate(config_hashes=[self.HASH_A])
        assert first.summary(self.HASH_A).n_runs == 3

        self._fill(store, self.HASH_A, range(3, 5))
        second = store.aggregate(config_hashes=[self.HASH_A], since=first.cursor)
        # Only the two appended lines were parsed...
        assert sorted(second.outcomes[self.HASH_A]) == [3, 4]
        # ...and merging yields the same state as a fresh full scan.
        first.merge(second)
        full = store.aggregate(config_hashes=[self.HASH_A])
        assert sorted(first.outcomes[self.HASH_A]) == [0, 1, 2, 3, 4]
        assert first.cursor == full.cursor
        assert first.summary(self.HASH_A) == full.summary(self.HASH_A)

    def test_cursor_does_not_consume_torn_tail(self, tmp_path):
        store = ExperimentStore(tmp_path)
        self._fill(store, self.HASH_A, range(2))
        path = tmp_path / "runs" / f"{self.HASH_A}.jsonl"
        intact_size = path.stat().st_size
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"run_index": 9, "truncat')  # crash mid-write
        batch = store.aggregate(config_hashes=[self.HASH_A])
        assert sorted(batch.outcomes[self.HASH_A]) == [0, 1]
        # The cursor stops at the last newline, so once the writer recovers
        # (fresh line after the torn tail) the record is picked up.
        assert batch.cursor[self.HASH_A] == intact_size
        store.append(_make_record(self.HASH_A, run_index=9, salt=3))
        later = store.aggregate(config_hashes=[self.HASH_A], since=batch.cursor)
        assert sorted(later.outcomes[self.HASH_A]) == [9]

    def test_reappended_index_last_write_wins(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.append(_make_record(self.HASH_A, run_index=0, salt=1))
        store.append(_make_record(self.HASH_A, run_index=0, salt=2))
        batch = store.aggregate(config_hashes=[self.HASH_A])
        assert batch.summary(self.HASH_A).n_runs == 1
        expected = _make_record(self.HASH_A, run_index=0, salt=2)
        outcome = batch.outcomes[self.HASH_A][0]
        assert outcome.min_true_delta_m == expected.result.min_true_delta_m

    def test_outcome_success_follows_the_shared_rule(self, tmp_path):
        from dataclasses import replace

        from repro.core.attack_vectors import AttackVector

        store = ExperimentStore(tmp_path)
        base = _make_record(self.HASH_A, run_index=0, salt=1)
        move_in = replace(
            base,
            run_index=0,
            result=replace(
                base.result, vector=AttackVector.MOVE_IN, emergency_braking=True
            ),
        )
        crash = replace(
            base,
            run_index=1,
            result=replace(
                base.result, run_index=1, vector=AttackVector.DISAPPEAR, accident=True
            ),
        )
        store.append(move_in)
        store.append(crash)
        summary = store.aggregate(config_hashes=[self.HASH_A]).summary(self.HASH_A)
        assert summary.successes == 2
        assert summary.success_rate == 1.0

"""Parametric scenario sweeps: a declarative space over the perturbation grid.

The paper's evaluation samples :class:`~repro.sim.scenarios.ScenarioVariation`
uniformly at random (Monte-Carlo campaigns).  Systematic attack evaluation —
"how does the accident rate move as the initial gap closes?", "at which fog
density does the intrusion detector stop seeing the attack?" — needs the dual:
*chosen* points of the perturbation space, each evaluated as its own campaign.

A :class:`ParameterSpace` declares axes over four namespaces:

* ``variation.*``  — the :class:`ScenarioVariation` initial-condition fields
  (``variation.lead_gap_offset_m``, ``variation.ego_speed_scale``, ...);
* ``simulation.*`` — :class:`~repro.sim.config.SimulationConfig` fields
  (``simulation.halt_gap_m``, ``simulation.max_duration_s``, ...);
* ``detector.*``   — :class:`~repro.perception.detection.DetectorDegradation`
  factors (``detector.sigma_scale``, ``detector.range_scale``, ...), the
  fog/low-light axis of the DS-7 extension;
* ``fusion.*``     — :class:`~repro.perception.fusion.FusionConfig` fields,
  the fusion-policy victim variants (``fusion.policy=late,lidar_only``,
  ``fusion.camera_weight=0.3:0.9``, ``fusion.consistency_gate_m=0.5:2.5``)
  behind the defense-evaluation table
  (:func:`repro.experiments.tables.fusion_defense_from_store`).

Each axis is a :class:`Uniform` interval or a discrete :class:`Choice`, and
the space expands into concrete assignments through three samplers — full
:meth:`~ParameterSpace.grid`, seeded :meth:`~ParameterSpace.random`, and
:meth:`~ParameterSpace.latin_hypercube` (stratified: every axis is cut into
``n`` strata and each stratum is hit exactly once).  Assignments then expand
into :class:`~repro.experiments.campaign.CampaignConfig` batches via
:func:`expand_campaigns` / :func:`sweep_campaigns`, runnable through the
ordinary campaign runner and durably recordable in the experiment store
(``repro-campaign sweep`` wires all of this together).

Axes can also be declared as compact strings (the CLI syntax)::

    variation.lead_gap_offset_m=-8:8        # Uniform(-8, 8)
    variation.ego_speed_scale=0.9:1.1:5     # Uniform with 5 grid points
    simulation.halt_gap_m=3.0,4.0,5.0       # Choice of explicit values
"""

from __future__ import annotations

import dataclasses
import itertools
import typing
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.perception.detection import DetectorDegradation
from repro.perception.fusion import FusionConfig
from repro.sim.config import SimulationConfig
from repro.sim.scenarios import VARIATION_SAMPLING_RANGES, ScenarioVariation

if TYPE_CHECKING:  # pragma: no cover - type hints only (avoids a hard
    # sim -> experiments dependency at import time; see expand_campaigns)
    from repro.experiments.campaign import CampaignConfig

__all__ = [
    "Uniform",
    "Choice",
    "ParameterSpec",
    "ParameterSpace",
    "Assignment",
    "SeedLike",
    "DEFAULT_SWEEP_POINTS",
    "SAMPLERS",
    "parse_spec",
    "parse_axis",
    "default_variation_space",
    "expand_campaigns",
    "sweep_campaigns",
]

#: One sampled point of a parameter space: axis path -> concrete value.
Assignment = Dict[str, object]

#: Anything the stochastic samplers accept as a randomness source: an int
#: seed (a fresh ``default_rng(seed)`` per call, the historical behaviour)
#: or a live :class:`numpy.random.Generator` whose stream simply advances —
#: what adaptive samplers need to draw repeatedly without re-seeding.
SeedLike = Union[int, np.random.Generator]


def _resolve_rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class Uniform:
    """A continuous axis: values uniform over ``[low, high]``.

    ``grid_points`` is only consulted by the grid sampler (endpoints
    included); random and Latin-hypercube sampling draw from the continuum.
    """

    low: float
    high: float
    grid_points: int = 5

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(f"Uniform needs high > low, got [{self.low}, {self.high}]")
        if self.grid_points < 2:
            raise ValueError("grid_points must be at least 2")

    def value_at(self, unit: float) -> float:
        """Map a unit-interval coordinate to a parameter value."""
        return float(self.low + (self.high - self.low) * unit)

    def grid_values(self) -> List[float]:
        return [float(v) for v in np.linspace(self.low, self.high, self.grid_points)]


@dataclass(frozen=True)
class Choice:
    """A discrete axis: one of an explicit tuple of values."""

    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("Choice needs at least one value")

    def value_at(self, unit: float) -> object:
        index = min(int(unit * len(self.values)), len(self.values) - 1)
        return self.values[index]

    def grid_values(self) -> List[object]:
        return list(self.values)


ParameterSpec = Union[Uniform, Choice]

#: Declared field types per axis namespace — names gate validation, types
#: drive coercion (a float sampled for an int field like
#: ``variation.npc_seed`` is rounded, not passed through to crash later).
_NAMESPACE_FIELDS: Dict[str, Dict[str, type]] = {
    "variation": typing.get_type_hints(ScenarioVariation),
    "simulation": typing.get_type_hints(SimulationConfig),
    "detector": typing.get_type_hints(DetectorDegradation),
    "fusion": typing.get_type_hints(FusionConfig),
}


def _coerce(namespace: str, name: str, value: object) -> object:
    declared = _NAMESPACE_FIELDS[namespace].get(name)
    if declared in (int, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"axis {namespace}.{name} expects a number, got {value!r}"
            )
        return int(round(value)) if declared is int else float(value)
    return value


def _validate_path(path: str) -> None:
    namespace, dot, name = path.partition(".")
    if not dot or namespace not in _NAMESPACE_FIELDS:
        raise ValueError(
            f"axis {path!r} must be namespaced as one of "
            f"{sorted(ns + '.<field>' for ns in _NAMESPACE_FIELDS)}"
        )
    if name not in _NAMESPACE_FIELDS[namespace]:
        raise ValueError(
            f"unknown field {name!r} in namespace {namespace!r}; "
            f"choose from {sorted(_NAMESPACE_FIELDS[namespace])}"
        )


@dataclass(frozen=True)
class ParameterSpace:
    """A declarative, ordered set of sweep axes (path -> spec)."""

    axes: Mapping[str, ParameterSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a parameter space needs at least one axis")
        for path in self.axes:
            _validate_path(path)

    def __len__(self) -> int:
        return len(self.axes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.axes)

    # ------------------------------------------------------------------ #
    # Axis metadata — what adaptive samplers introspect
    # ------------------------------------------------------------------ #

    def paths(self) -> List[str]:
        """The axis paths in declaration order (the unit-cube column order)."""
        return list(self.axes)

    def spec(self, path: str) -> ParameterSpec:
        """The :class:`Uniform` / :class:`Choice` spec declared for an axis."""
        try:
            return self.axes[path]
        except KeyError:
            raise KeyError(
                f"unknown axis {path!r}; declared axes: {list(self.axes)}"
            ) from None

    # ------------------------------------------------------------------ #
    # Samplers
    # ------------------------------------------------------------------ #

    def grid(self) -> List[Assignment]:
        """The full cartesian product of every axis's grid values."""
        paths = list(self.axes)
        value_lists = [self.axes[path].grid_values() for path in paths]
        return [
            dict(zip(paths, combo)) for combo in itertools.product(*value_lists)
        ]

    def random(self, n: int, seed: SeedLike = 0) -> List[Assignment]:
        """``n`` independent uniform draws from the space.

        ``seed`` may be an int (a fresh generator per call, so equal seeds
        give equal draws) or a live :class:`numpy.random.Generator` whose
        stream advances across calls — the contract adaptive samplers rely on
        to interleave proposals without re-seed bookkeeping.
        """
        if n < 1:
            raise ValueError("n must be positive")
        rng = _resolve_rng(seed)
        units = rng.uniform(size=(n, len(self.axes)))
        return self.sample_from(units)

    def latin_hypercube(self, n: int, seed: SeedLike = 0) -> List[Assignment]:
        """``n`` Latin-hypercube samples: each axis stratified into ``n`` cells.

        Every axis is cut into ``n`` equal strata; each sample occupies a
        distinct stratum on every axis (independently permuted per axis), so
        the marginals cover their ranges evenly even for small ``n`` — the
        standard design for expensive simulation sweeps.  ``seed`` accepts an
        int or a live :class:`numpy.random.Generator` (see :meth:`random`).
        """
        if n < 1:
            raise ValueError("n must be positive")
        rng = _resolve_rng(seed)
        units = np.empty((n, len(self.axes)))
        for column in range(len(self.axes)):
            strata = rng.permutation(n)
            units[:, column] = (strata + rng.uniform(size=n)) / n
        return self.sample_from(units)

    def sample_from(self, units: np.ndarray) -> List[Assignment]:
        """Map unit-cube rows to concrete assignments (one row per point).

        ``units`` must be shaped ``(n_points, len(self))`` with every
        coordinate in ``[0, 1]``; columns follow :meth:`paths` order.  This is
        the public bridge for adaptive samplers (cross-entropy, bandits, RL)
        that maintain their own distributions in unit-cube space: they propose
        unit rows and the space owns the mapping onto axis values — without
        reaching into private internals.
        """
        units = np.asarray(units, dtype=np.float64)
        if units.ndim != 2 or units.shape[1] != len(self.axes):
            raise ValueError(
                f"units must be shaped (n_points, {len(self.axes)}), "
                f"got {units.shape}"
            )
        if units.size and (units.min() < 0.0 or units.max() > 1.0):
            raise ValueError("unit coordinates must lie in [0, 1]")
        paths = list(self.axes)
        return [
            {
                path: self.axes[path].value_at(float(row[column]))
                for column, path in enumerate(paths)
            }
            for row in units
        ]

    def _assignments_from_units(self, units: np.ndarray) -> List[Assignment]:
        """Deprecated private alias of :meth:`sample_from` (kept one release)."""
        warnings.warn(
            "ParameterSpace._assignments_from_units is deprecated; use the "
            "public sample_from(units) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.sample_from(units)


#: Default number of sweep points for the stochastic samplers (random/lhs).
DEFAULT_SWEEP_POINTS = 50


def _grid_sampler(
    space: ParameterSpace, n: Optional[int], seed: Optional[int]
) -> List[Assignment]:
    """The full grid; warns when a requested ``n``/``seed`` cannot apply.

    A grid's size is structural — the product of its axes' grid points — so a
    requested point count or sampler seed is silently meaningless.  Surfacing
    the mismatch loudly keeps ``repro-campaign sweep --sampler grid -n 100``
    from running a different number of points than the user asked for with no
    indication why.
    """
    assignments = space.grid()
    if n is not None and n != len(assignments):
        warnings.warn(
            f"the grid sampler ignores n={n}: this space's grid has "
            f"{len(assignments)} points (the product of its axes' grid "
            "points); size it via Uniform(grid_points=...) / the "
            "low:high:points axis syntax, or use the random/lhs samplers "
            "for an exact point count",
            UserWarning,
            stacklevel=3,
        )
    if seed is not None:
        warnings.warn(
            "the grid sampler is deterministic and ignores the sampler seed",
            UserWarning,
            stacklevel=3,
        )
    return assignments


def _random_sampler(
    space: ParameterSpace, n: Optional[int], seed: Optional[int]
) -> List[Assignment]:
    return space.random(
        n if n is not None else DEFAULT_SWEEP_POINTS, seed if seed is not None else 0
    )


def _lhs_sampler(
    space: ParameterSpace, n: Optional[int], seed: Optional[int]
) -> List[Assignment]:
    return space.latin_hypercube(
        n if n is not None else DEFAULT_SWEEP_POINTS, seed if seed is not None else 0
    )


#: Sampler name -> callable(space, n, seed); the registry behind ``--sampler``.
#: ``n``/``seed`` may be ``None`` (defaulted); the grid sampler warns when
#: explicit values are passed that it cannot honour.
SAMPLERS = {
    "grid": _grid_sampler,
    "random": _random_sampler,
    "lhs": _lhs_sampler,
}


# ---------------------------------------------------------------------- #
# Compact string syntax (shared by the CLI and config files)
# ---------------------------------------------------------------------- #


def _parse_scalar(text: str) -> object:
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text.strip()


def parse_spec(text: str) -> ParameterSpec:
    """Parse the compact axis syntax: ``low:high[:points]`` or ``v1,v2,...``."""
    text = text.strip()
    if not text:
        raise ValueError("empty axis specification")
    if "," in text:
        return Choice(tuple(_parse_scalar(part) for part in text.split(",")))
    if ":" in text:
        parts = text.split(":")
        if len(parts) == 2:
            return Uniform(float(parts[0]), float(parts[1]))
        if len(parts) == 3:
            return Uniform(float(parts[0]), float(parts[1]), grid_points=int(parts[2]))
        raise ValueError(f"range axis must be low:high or low:high:points, got {text!r}")
    return Choice((_parse_scalar(text),))


def parse_axis(text: str) -> Tuple[str, ParameterSpec]:
    """Parse one ``path=spec`` CLI argument into a validated axis."""
    path, equals, spec = text.partition("=")
    if not equals:
        raise ValueError(f"axis {text!r} must look like name=spec (e.g. "
                         "variation.lead_gap_offset_m=-8:8)")
    path = path.strip()
    _validate_path(path)
    return path, parse_spec(spec)


def default_variation_space() -> ParameterSpace:
    """The Monte-Carlo sampling ranges of ``ScenarioVariation.sample`` as axes.

    The default space of ``repro-campaign sweep``: built from the same
    :data:`~repro.sim.scenarios.VARIATION_SAMPLING_RANGES` table the random
    campaigns draw from, so sweeping it systematically covers exactly the
    Monte-Carlo perturbation volume.
    """
    return ParameterSpace(
        {
            f"variation.{name}": Uniform(low, high)
            for name, (low, high) in VARIATION_SAMPLING_RANGES.items()
        }
    )


# ---------------------------------------------------------------------- #
# Expansion into campaign configs
# ---------------------------------------------------------------------- #


def _apply_assignment(
    base: "CampaignConfig", assignment: Assignment, campaign_id: str
) -> "CampaignConfig":
    updates: Dict[str, Dict[str, object]] = {
        "variation": {}, "simulation": {}, "detector": {}, "fusion": {},
    }
    for path, value in assignment.items():
        _validate_path(path)
        namespace, _, name = path.partition(".")
        updates[namespace][name] = _coerce(namespace, name, value)

    replacements: Dict[str, object] = {"campaign_id": campaign_id}
    if updates["variation"]:
        variation = base.variation or ScenarioVariation.nominal()
        replacements["variation"] = dataclasses.replace(variation, **updates["variation"])
    if updates["simulation"]:
        replacements["simulation"] = dataclasses.replace(
            base.simulation, **updates["simulation"]
        )
    if updates["detector"]:
        degradation = base.detector_degradation or DetectorDegradation()
        replacements["detector_degradation"] = dataclasses.replace(
            degradation, **updates["detector"]
        )
    if updates["fusion"]:
        # dataclasses.replace re-runs FusionConfig.__post_init__, so a swept
        # point with an invalid weight or unknown policy fails at expansion
        # time, before any simulation runs.
        fusion = base.fusion or FusionConfig()
        replacements["fusion"] = dataclasses.replace(fusion, **updates["fusion"])
    return dataclasses.replace(base, **replacements)


def expand_campaigns(
    base: "CampaignConfig", assignments: Sequence[Assignment]
) -> List["CampaignConfig"]:
    """Expand sampled assignments into one campaign config per sweep point.

    Each point clones ``base`` with its assignment applied on top (pinning
    the variation / degrading the detector / adjusting the simulation) and a
    distinct ``campaign_id`` suffix, so every point is independently seeded,
    cacheable, and addressable in the experiment store.
    """
    return [
        _apply_assignment(base, assignment, f"{base.campaign_id}-p{index:04d}")
        for index, assignment in enumerate(assignments)
    ]


def sweep_campaigns(
    base: "CampaignConfig",
    space: Optional[ParameterSpace] = None,
    sampler: str = "lhs",
    n: Optional[int] = None,
    seed: Optional[int] = None,
) -> List["CampaignConfig"]:
    """Sample a parameter space and expand it into campaign configs.

    ``space`` defaults to :func:`default_variation_space`; ``sampler`` is one
    of :data:`SAMPLERS`.  ``n`` and ``seed`` default to
    :data:`DEFAULT_SWEEP_POINTS` and 0 for the stochastic samplers; the grid
    sampler's size is structural (the product of the axes' grid points), so
    explicitly passing ``n`` or ``seed`` with ``sampler="grid"`` raises a
    :class:`UserWarning` on mismatch instead of being silently ignored.
    """
    if sampler not in SAMPLERS:
        raise ValueError(f"unknown sampler {sampler!r}; choose from {sorted(SAMPLERS)}")
    space = space or default_variation_space()
    assignments = SAMPLERS[sampler](space, n, seed)
    return expand_campaigns(base, assignments)

"""Deterministic random-number management.

Every stochastic component in the reproduction accepts an explicit
:class:`numpy.random.Generator`.  Experiment campaigns derive per-run
generators from a root seed so that any individual run can be reproduced in
isolation given ``(root_seed, run_index)``.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "SeedSequenceFactory"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` produces an OS-entropy seeded generator; experiments should always
    pass an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class SeedSequenceFactory:
    """Hands out independent child generators from a single root seed.

    The factory remembers how many children have been spawned, so components
    created in a fixed order always receive the same streams for a given root
    seed regardless of how many random draws each component makes.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._sequence = np.random.SeedSequence(self._root_seed)
        self._spawned = 0

    @property
    def root_seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._root_seed

    @property
    def spawned(self) -> int:
        """Number of child generators handed out so far."""
        return self._spawned

    def next_rng(self) -> np.random.Generator:
        """Return the next independent child generator."""
        child = self._sequence.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def next_rngs(self, count: int) -> List[np.random.Generator]:
        """Return ``count`` independent child generators."""
        return [self.next_rng() for _ in range(count)]

    def named_seeds(self, names: Iterable[str]) -> dict[str, int]:
        """Derive a stable integer seed for each name.

        Useful when a component wants an integer seed (rather than a
        generator), e.g. for logging or for re-creating a sub-simulation.
        """
        out: dict[str, int] = {}
        for name in names:
            digest = abs(hash((self._root_seed, name))) % (2**32)
            out[name] = digest
        return out

"""Tests for the Kalman filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import BoundingBox
from repro.perception.kalman import BoundingBoxKalmanFilter, KalmanFilter


def make_1d_constant_velocity_filter(q=0.01, r=1.0):
    return KalmanFilter(
        transition=np.array([[1.0, 1.0], [0.0, 1.0]]),
        observation=np.array([[1.0, 0.0]]),
        process_noise=np.eye(2) * q,
        measurement_noise=np.array([[r]]),
        initial_state=np.array([0.0, 0.0]),
        initial_covariance=np.eye(2) * 10.0,
    )


class TestKalmanFilter:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KalmanFilter(
                transition=np.eye(3),
                observation=np.eye(2),
                process_noise=np.eye(2),
                measurement_noise=np.eye(2),
                initial_state=np.zeros(2),
                initial_covariance=np.eye(2),
            )

    def test_tracks_constant_velocity_target(self):
        kf = make_1d_constant_velocity_filter()
        rng = np.random.default_rng(0)
        true_position, true_velocity = 0.0, 2.0
        for _ in range(60):
            true_position += true_velocity
            kf.predict()
            kf.update(np.array([true_position + rng.normal(0, 1.0)]))
        assert kf.state[0] == pytest.approx(true_position, abs=2.0)
        assert kf.state[1] == pytest.approx(true_velocity, abs=0.4)

    def test_update_reduces_position_uncertainty(self):
        kf = make_1d_constant_velocity_filter()
        kf.predict()
        before = kf.covariance[0, 0]
        kf.update(np.array([0.0]))
        assert kf.covariance[0, 0] < before

    def test_predict_increases_uncertainty(self):
        kf = make_1d_constant_velocity_filter()
        kf.update(np.array([0.0]))
        after_update = kf.covariance[0, 0]
        kf.predict()
        assert kf.covariance[0, 0] > after_update

    def test_filtered_estimate_smoother_than_raw_measurements(self):
        kf = make_1d_constant_velocity_filter(q=0.001, r=4.0)
        rng = np.random.default_rng(1)
        errors_raw, errors_filtered = [], []
        true_position = 0.0
        for _ in range(200):
            true_position += 1.0
            measurement = true_position + rng.normal(0, 2.0)
            kf.predict()
            kf.update(np.array([measurement]))
            errors_raw.append(abs(measurement - true_position))
            errors_filtered.append(abs(kf.state[0] - true_position))
        assert np.mean(errors_filtered[50:]) < np.mean(errors_raw[50:])

    def test_covariance_stays_symmetric_psd_over_long_track(self):
        # Joseph-form regression: the textbook (I-KH)P covariance update can
        # drift off-symmetric/PSD under floating-point error over long tracks.
        kf = make_1d_constant_velocity_filter(q=1e-4, r=0.5)
        rng = np.random.default_rng(1)
        for step in range(1, 1001):
            kf.predict()
            kf.update(np.array([2.0 * step + rng.normal(0, 0.7)]))
            assert np.array_equal(kf.covariance, kf.covariance.T), step
            assert np.linalg.eigvalsh(kf.covariance).min() >= -1e-12, step

    def test_update_uses_no_explicit_inverse(self, monkeypatch):
        # np.linalg.solve is better conditioned than forming S^-1; make sure
        # the implementation never regresses to the explicit inverse.
        def forbidden(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("KalmanFilter.update must not call np.linalg.inv")

        monkeypatch.setattr(np.linalg, "inv", forbidden)
        kf = make_1d_constant_velocity_filter()
        kf.predict()
        kf.update(np.array([1.0]))

    def test_predicted_measurement_matches_observation_model(self):
        kf = make_1d_constant_velocity_filter()
        kf.update(np.array([3.0]))
        assert kf.predicted_measurement()[0] == pytest.approx(kf.state[0])


class TestBoundingBoxKalmanFilter:
    def test_initial_state_matches_first_box(self):
        box = BoundingBox(100, 50, 40, 30)
        kf = BoundingBoxKalmanFilter(box)
        current = kf.current_bbox()
        assert current.cx == pytest.approx(100)
        assert current.height == pytest.approx(30)

    def test_tracks_moving_box(self):
        kf = BoundingBoxKalmanFilter(BoundingBox(100, 50, 40, 30))
        for step in range(1, 40):
            kf.predict()
            kf.update(BoundingBox(100 + 3 * step, 50, 40, 30))
        vx, vy = kf.velocity_px_per_frame()
        assert vx == pytest.approx(3.0, abs=0.5)
        assert abs(vy) < 0.5

    def test_prediction_extrapolates_motion(self):
        kf = BoundingBoxKalmanFilter(BoundingBox(0, 0, 10, 10))
        for step in range(1, 30):
            kf.predict()
            kf.update(BoundingBox(2.0 * step, 0, 10, 10))
        predicted = kf.predict()
        assert predicted.cx > kf.current_bbox().cx - 1e-6

    def test_box_dimensions_never_collapse(self):
        kf = BoundingBoxKalmanFilter(BoundingBox(0, 0, 5, 5))
        for _ in range(10):
            kf.predict()
            kf.update(BoundingBox(0, 0, 0.5, 0.5))
        box = kf.current_bbox()
        assert box.width >= 1.0 and box.height >= 1.0

    @given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_velocity_estimate_matches_constant_motion(self, vx, vy):
        kf = BoundingBoxKalmanFilter(BoundingBox(500, 500, 60, 60))
        for step in range(1, 50):
            kf.predict()
            kf.update(BoundingBox(500 + vx * step, 500 + vy * step, 60, 60))
        estimated_vx, estimated_vy = kf.velocity_px_per_frame()
        assert estimated_vx == pytest.approx(vx, abs=0.4)
        assert estimated_vy == pytest.approx(vy, abs=0.4)

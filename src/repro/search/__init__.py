"""Adaptive falsification: closed-loop search for attack-success boundaries.

Where ``repro.sim.sweeps`` *enumerates* a parameter space blindly, this
package *searches* it: an :class:`AdaptiveSampler` proposes batches of sweep
assignments, the :class:`FalsificationLoop` executes them through the
ordinary campaign runtime against an :class:`ExperimentStore`, an
:class:`Objective` scores the stored outcomes, and the scores feed back into
the next proposal.  Checkpoints under the store root make every search
resume-safe — a killed process picks up mid-iteration without re-proposing.

Entry points: :func:`run_falsification_search` /
``repro-campaign search`` (CLI).
"""

from repro.search.loop import (
    FalsificationLoop,
    SearchPoint,
    SearchResult,
    SearchSpec,
    axes_from_json,
    axes_to_json,
    run_falsification_search,
    search_spec_hash,
)
from repro.search.objectives import (
    OBJECTIVES,
    AttackSuccessRate,
    MinDeltaMargin,
    Objective,
    TimeToViolation,
    build_objective,
    list_objectives,
)
from repro.search.samplers import (
    SEARCH_SAMPLERS,
    AdaptiveSampler,
    BanditSampler,
    CrossEntropySampler,
    RandomSearchSampler,
    build_search_sampler,
    list_search_samplers,
)

__all__ = [
    "AdaptiveSampler",
    "RandomSearchSampler",
    "CrossEntropySampler",
    "BanditSampler",
    "SEARCH_SAMPLERS",
    "build_search_sampler",
    "list_search_samplers",
    "Objective",
    "AttackSuccessRate",
    "TimeToViolation",
    "MinDeltaMargin",
    "OBJECTIVES",
    "build_objective",
    "list_objectives",
    "SearchSpec",
    "SearchPoint",
    "SearchResult",
    "FalsificationLoop",
    "run_falsification_search",
    "search_spec_hash",
    "axes_to_json",
    "axes_from_json",
]

"""Tests for the safety model and the PID / actuation smoothing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ads.pid import ActuationSmoother, PIDController
from repro.ads.safety import SafetyModel


class TestSafetyModel:
    def test_stopping_distance_formula(self):
        model = SafetyModel(comfortable_decel_mps2=3.0, reaction_time_s=0.0)
        assert model.stopping_distance(12.0) == pytest.approx(12.0**2 / 6.0)

    def test_stopping_distance_zero_at_standstill(self):
        assert SafetyModel().stopping_distance(0.0) == 0.0

    def test_reaction_time_adds_distance(self):
        base = SafetyModel(reaction_time_s=0.0).stopping_distance(10.0)
        with_reaction = SafetyModel(reaction_time_s=0.5).stopping_distance(10.0)
        assert with_reaction == pytest.approx(base + 5.0)

    def test_safety_potential_definition(self):
        model = SafetyModel(comfortable_decel_mps2=3.0, reaction_time_s=0.0)
        assert model.safety_potential(gap_m=30.0, speed_mps=12.0) == pytest.approx(30.0 - 24.0)

    def test_is_safe_uses_four_meter_threshold(self):
        model = SafetyModel(comfortable_decel_mps2=3.0, reaction_time_s=0.0)
        assert model.is_safe(gap_m=30.0, speed_mps=10.0)  # delta = 13.3
        assert not model.is_safe(gap_m=20.0, speed_mps=10.0)  # delta = 3.3

    def test_negative_speed_treated_as_zero(self):
        assert SafetyModel().stopping_distance(-5.0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SafetyModel(comfortable_decel_mps2=0.0)
        with pytest.raises(ValueError):
            SafetyModel(reaction_time_s=-1.0)

    @given(st.floats(0.0, 40.0), st.floats(0.0, 40.0))
    @settings(max_examples=50, deadline=None)
    def test_delta_monotone_in_gap_and_antimonotone_in_speed(self, speed, gap):
        model = SafetyModel()
        assert model.safety_potential(gap + 1.0, speed) > model.safety_potential(gap, speed)
        assert model.safety_potential(gap, speed + 1.0) <= model.safety_potential(gap, speed)


class TestPIDController:
    def test_proportional_action(self):
        pid = PIDController(kp=2.0)
        assert pid.update(error=1.5, dt=0.1) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0)
        pid.update(1.0, dt=1.0)
        assert pid.update(1.0, dt=1.0) == pytest.approx(2.0)

    def test_derivative_responds_to_change(self):
        pid = PIDController(kp=0.0, kd=1.0)
        pid.update(0.0, dt=1.0)
        assert pid.update(2.0, dt=1.0) == pytest.approx(2.0)

    def test_output_clamped(self):
        pid = PIDController(kp=10.0, output_min=-1.0, output_max=1.0)
        assert pid.update(5.0, dt=0.1) == 1.0
        assert pid.update(-5.0, dt=0.1) == -1.0

    def test_anti_windup_freezes_integral_when_saturated(self):
        pid = PIDController(kp=0.0, ki=1.0, output_max=1.0)
        for _ in range(50):
            pid.update(10.0, dt=1.0)
        # After saturation the integral must not have grown unboundedly: a
        # small negative error should bring the output off the limit quickly.
        out = pid.update(-2.0, dt=1.0)
        assert out < 1.0

    def test_reset_clears_state(self):
        pid = PIDController(kp=1.0, ki=1.0, kd=1.0)
        pid.update(3.0, dt=1.0)
        pid.reset()
        assert pid.update(0.0, dt=1.0) == 0.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            PIDController(kp=1.0).update(1.0, dt=0.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PIDController(kp=1.0, output_min=1.0, output_max=-1.0)


class TestActuationSmoother:
    def test_comfortable_jerk_limit(self):
        smoother = ActuationSmoother(comfort_jerk_mps3=3.0)
        out = smoother.smooth(desired_accel=2.0, dt=0.1, emergency=False)
        assert out == pytest.approx(0.3)

    def test_emergency_reaches_full_braking_quickly(self):
        smoother = ActuationSmoother(emergency_jerk_mps3=40.0)
        out = smoother.smooth(desired_accel=-6.0, dt=0.1, emergency=True)
        assert out == pytest.approx(-4.0)
        out = smoother.smooth(desired_accel=-6.0, dt=0.1, emergency=True)
        assert out == pytest.approx(-6.0)

    def test_converges_to_constant_command(self):
        smoother = ActuationSmoother()
        for _ in range(40):
            out = smoother.smooth(1.0, dt=1 / 15, emergency=False)
        assert out == pytest.approx(1.0)

    def test_reset(self):
        smoother = ActuationSmoother()
        smoother.smooth(2.0, dt=0.1, emergency=False)
        smoother.reset()
        assert smoother.smooth(0.0, dt=0.1, emergency=False) == 0.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            ActuationSmoother().smooth(1.0, dt=0.0, emergency=False)

"""Tests for scenario builders, the world container, and event logging."""

import pytest

from repro.ads.safety import SafetyModel, ground_truth_delta
from repro.sim.actors import ActorKind
from repro.sim.events import EventKind, EventLog, SimulationEvent
from repro.sim.scenarios import ScenarioVariation, build_scenario, list_scenario_ids
from repro.utils.units import kph_to_mps


class TestScenarioRegistry:
    def test_all_five_scenarios_available(self):
        # The paper's five scenarios must always be registered; the catalog is
        # open (DS-6 platoon cut-in, DS-7 fog crossing, downstream plugins).
        ids = list_scenario_ids()
        assert {"DS-1", "DS-2", "DS-3", "DS-4", "DS-5"} <= set(ids)
        assert {"DS-6", "DS-7"} <= set(ids)
        assert len(ids) >= 7

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_scenario("DS-9")

    def test_default_variation_is_nominal(self):
        a = build_scenario("DS-1")
        b = build_scenario("DS-1", ScenarioVariation.nominal())
        assert a.metadata == b.metadata


class TestDs1:
    def test_target_is_vehicle_60m_ahead(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        assert scenario.target_kind is ActorKind.VEHICLE
        target = scenario.world.actor_by_id(scenario.target_actor_id)
        assert target.snapshot().position.x == pytest.approx(60.0)

    def test_target_speed_is_25_kph(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        assert scenario.metadata["tv_speed_mps"] == pytest.approx(kph_to_mps(25.0))

    def test_cruise_speed_is_45_kph(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        assert scenario.cruise_speed_mps == pytest.approx(kph_to_mps(45.0))


class TestDs2:
    def test_target_is_pedestrian(self):
        scenario = build_scenario("DS-2", ScenarioVariation.nominal())
        assert scenario.target_kind is ActorKind.PEDESTRIAN

    def test_pedestrian_starts_off_road(self):
        scenario = build_scenario("DS-2", ScenarioVariation.nominal())
        ped = scenario.world.actor_by_id(scenario.target_actor_id)
        assert abs(ped.snapshot().position.y) > scenario.road.ego_lane.width

    def test_pedestrian_crosses_the_ego_lane(self):
        scenario = build_scenario("DS-2", ScenarioVariation.nominal())
        ped = scenario.world.actor_by_id(scenario.target_actor_id)
        crossed = False
        for _ in range(int(scenario.duration_s * 15)):
            ped.step(1.0 / 15.0)
            if scenario.road.in_ego_lane(ped.snapshot().position.y):
                crossed = True
        assert crossed


class TestDs3AndDs4:
    def test_parked_vehicle_in_parking_lane(self):
        scenario = build_scenario("DS-3", ScenarioVariation.nominal())
        parked = scenario.world.actor_by_id(scenario.target_actor_id)
        assert scenario.road.lane_of(parked.snapshot().position.y).name == "parking"
        assert parked.snapshot().speed == 0.0

    def test_ds4_pedestrian_walks_towards_ev_then_stops(self):
        scenario = build_scenario("DS-4", ScenarioVariation.nominal())
        ped = scenario.world.actor_by_id(scenario.target_actor_id)
        start_x = ped.snapshot().position.x
        for _ in range(int(15 * 15)):
            ped.step(1.0 / 15.0)
        end = ped.snapshot()
        assert end.position.x == pytest.approx(start_x - 5.0, abs=0.2)
        assert end.speed == pytest.approx(0.0)

    def test_ds4_pedestrian_stays_out_of_ego_lane(self):
        scenario = build_scenario("DS-4", ScenarioVariation.nominal())
        ped = scenario.world.actor_by_id(scenario.target_actor_id)
        assert not scenario.road.in_ego_lane(ped.snapshot().position.y, margin=0.3)


class TestDs5:
    def test_has_background_traffic(self):
        scenario = build_scenario("DS-5", ScenarioVariation.nominal())
        assert len(scenario.world.actors) >= 4

    def test_npc_seed_controls_traffic(self):
        a = build_scenario("DS-5", ScenarioVariation(npc_seed=1))
        b = build_scenario("DS-5", ScenarioVariation(npc_seed=1))
        c = build_scenario("DS-5", ScenarioVariation(npc_seed=999))
        assert len(a.world.actors) == len(b.world.actors)
        assert a.metadata["n_npcs"] == b.metadata["n_npcs"]
        # A different seed may change the number of NPCs or their speeds.
        assert (a.metadata["n_npcs"] != c.metadata["n_npcs"]) or (
            len(a.world.actors) == len(c.world.actors)
        )


class TestScenarioVariation:
    def test_sampled_variation_within_bounds(self, rng):
        variation = ScenarioVariation.sample(rng)
        assert 0.9 <= variation.ego_speed_scale <= 1.1
        assert abs(variation.lead_gap_offset_m) <= 8.0

    def test_variation_changes_initial_gap(self, rng):
        nominal = build_scenario("DS-1", ScenarioVariation.nominal())
        varied = build_scenario("DS-1", ScenarioVariation(lead_gap_offset_m=5.0))
        assert varied.metadata["initial_gap_m"] == pytest.approx(
            nominal.metadata["initial_gap_m"] + 5.0
        )


class TestWorld:
    def test_step_advances_time_and_actors(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        world = scenario.world
        before = world.snapshot()
        world.step(1.0 / 15.0, ego_acceleration_mps2=0.0)
        after = world.snapshot()
        assert after.time_s > before.time_s
        assert after.step_index == before.step_index + 1
        assert after.ego.position.x > before.ego.position.x

    def test_invalid_dt_rejected(self):
        world = build_scenario("DS-1").world
        with pytest.raises(ValueError):
            world.step(0.0, 0.0)

    def test_nearest_in_path_actor(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        snapshot = scenario.world.snapshot()
        nearest = snapshot.nearest_in_path_actor(scenario.road)
        assert nearest is not None
        assert nearest.actor_id == scenario.target_actor_id

    def test_parked_vehicle_not_in_path(self):
        scenario = build_scenario("DS-3", ScenarioVariation.nominal())
        snapshot = scenario.world.snapshot()
        assert snapshot.nearest_in_path_actor(scenario.road) is None

    def test_actor_lookup(self):
        scenario = build_scenario("DS-1")
        assert scenario.world.actor_by_id(scenario.target_actor_id) is not None
        assert scenario.world.actor_by_id(10**9) is None

    def test_kind_queries(self):
        scenario = build_scenario("DS-2")
        assert len(scenario.world.pedestrians()) == 1
        assert len(scenario.world.vehicles()) == 0


class TestGroundTruthDelta:
    def test_clear_road_gives_infinite_delta(self):
        scenario = build_scenario("DS-3", ScenarioVariation.nominal())
        snapshot = scenario.world.snapshot()
        delta = ground_truth_delta(snapshot, scenario.road, SafetyModel())
        assert delta == float("inf")

    def test_lead_vehicle_reduces_delta(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        snapshot = scenario.world.snapshot()
        delta = ground_truth_delta(
            snapshot, scenario.road, SafetyModel(), target_actor_id=scenario.target_actor_id
        )
        gap = snapshot.ego.longitudinal_gap_to(snapshot.actors[0])
        assert delta == pytest.approx(gap - SafetyModel().stopping_distance(snapshot.ego.speed))


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(SimulationEvent(EventKind.EMERGENCY_BRAKE, 1.0, 15))
        assert log.emergency_braking_occurred
        assert not log.collision_occurred
        assert log.first_event(EventKind.EMERGENCY_BRAKE).step_index == 15

    def test_attack_start_step(self):
        log = EventLog()
        assert log.attack_start_step is None
        log.record(SimulationEvent(EventKind.ATTACK_STARTED, 2.0, 30))
        assert log.attack_start_step == 30

    def test_min_true_delta_after(self):
        log = EventLog()
        for delta in [10.0, 8.0, 3.0, 6.0]:
            log.record_step(true_delta=delta, perceived_delta=delta, ego_speed=10.0)
        assert log.min_true_delta_after(0) == 3.0
        assert log.min_true_delta_after(3) == 6.0

    def test_min_true_delta_of_empty_trace(self):
        assert EventLog().min_true_delta_after(0) == float("inf")

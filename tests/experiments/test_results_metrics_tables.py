"""Tests for result records, metrics aggregation, and the table generators."""

import pytest

from repro.core.attack_vectors import AttackVector
from repro.experiments.figures import fig6_panels, fig7_panels, fig8_data
from repro.experiments.metrics import combined_rates, summarize_campaign
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.tables import (
    fusion_defense_rows,
    headline_findings,
    table1_rows,
    table2_rows,
)
from repro.sim.actors import ActorKind


def make_run(
    index=0,
    vector=AttackVector.DISAPPEAR,
    target_kind=ActorKind.PEDESTRIAN,
    eb=False,
    accident=False,
    min_delta=15.0,
    k=20,
    k_prime=5,
    predicted=8.0,
    actual_end=9.0,
    launched=True,
):
    return RunResult(
        run_index=index,
        seed=index,
        scenario_id="DS-2",
        attacker_kind="robotack",
        vector=vector,
        target_kind=target_kind,
        attack_launched=launched,
        emergency_braking=eb,
        collision=False,
        accident=accident,
        min_true_delta_m=min_delta,
        true_delta_at_attack_end_m=actual_end,
        predicted_delta_m=predicted,
        planned_k_frames=k,
        frames_perturbed=k,
        k_prime_frames=k_prime,
        delta_at_launch_m=25.0,
    )


def make_campaign(campaign_id="DS-2-Disappear-R", runs=None, vector=AttackVector.DISAPPEAR):
    campaign = CampaignResult(
        campaign_id=campaign_id,
        scenario_id="DS-2",
        attacker_kind="robotack",
        vector=vector,
    )
    campaign.runs = runs if runs is not None else []
    return campaign


class TestCampaignResult:
    def test_rates(self):
        campaign = make_campaign(
            runs=[
                make_run(0, eb=True, accident=True, min_delta=2.0),
                make_run(1, eb=True, accident=False),
                make_run(2, eb=False, accident=False),
                make_run(3, eb=False, accident=False, launched=False),
            ]
        )
        assert campaign.n_runs == 4
        assert campaign.emergency_braking_count == 2
        assert campaign.accident_count == 1
        assert campaign.emergency_braking_rate == pytest.approx(0.5)
        assert campaign.accident_rate == pytest.approx(0.25)
        assert len(campaign.launched_runs) == 3

    def test_median_k_over_launched_runs_only(self):
        campaign = make_campaign(
            runs=[make_run(0, k=10), make_run(1, k=30), make_run(2, k=0, launched=False)]
        )
        assert campaign.median_planned_k() == 20.0

    def test_empty_campaign(self):
        campaign = make_campaign(runs=[])
        assert campaign.emergency_braking_rate == 0.0
        assert campaign.median_planned_k() == 0.0


class TestMetrics:
    def test_summarize_campaign_row(self):
        campaign = make_campaign(runs=[make_run(0, eb=True, accident=True), make_run(1)])
        summary = summarize_campaign(campaign)
        assert summary.n_runs == 2
        assert summary.emergency_braking_rate == pytest.approx(0.5)
        assert "DS-2" in summary.format_row()

    def test_move_in_row_hides_crash_column(self):
        campaign = make_campaign(
            campaign_id="DS-3-Move_In-R", vector=AttackVector.MOVE_IN, runs=[make_run(0, vector=AttackVector.MOVE_IN)]
        )
        assert "—" in summarize_campaign(campaign).format_row()

    def test_combined_rates_exclude_move_in_from_crash_rate(self):
        disappear = make_campaign(runs=[make_run(0, accident=True, eb=True)])
        move_in = make_campaign(
            campaign_id="DS-3", vector=AttackVector.MOVE_IN,
            runs=[make_run(0, vector=AttackVector.MOVE_IN, eb=True, accident=False)],
        )
        eb_rate, crash_rate = combined_rates([disappear, move_in])
        assert eb_rate == pytest.approx(1.0)
        assert crash_rate == pytest.approx(1.0)  # only the Disappear campaign counts

    def test_combined_rates_empty(self):
        assert combined_rates([]) == (0.0, 0.0)


class TestTable1:
    def test_has_six_rows(self):
        assert len(table1_rows()) == 6

    def test_matches_paper_table(self):
        rows = {(row.trajectory, row.in_ev_lane): set(row.vectors) for row in table1_rows()}
        assert rows[("Moving In", True)] == set()
        assert rows[("Moving In", False)] == {"MOVE_OUT", "DISAPPEAR"}
        assert rows[("Keep", True)] == {"MOVE_OUT", "DISAPPEAR"}
        assert rows[("Keep", False)] == {"MOVE_IN"}
        assert rows[("Moving Out", True)] == {"MOVE_IN"}
        assert rows[("Moving Out", False)] == set()


class TestTable2AndHeadlines:
    def test_table2_rows_shapes(self):
        campaigns = [
            make_campaign(runs=[make_run(0, eb=True, accident=True)]),
            make_campaign(
                campaign_id="DS-3-Move_In-R",
                vector=AttackVector.MOVE_IN,
                runs=[make_run(0, vector=AttackVector.MOVE_IN, eb=True)],
            ),
        ]
        rows = table2_rows(campaigns)
        assert len(rows) == 2
        assert rows[0].crash_count == 1
        assert rows[1].crash_count is None  # Move_In rows have no crash column

    def test_headline_findings_keys_and_ratios(self):
        robotack = make_campaign(
            runs=[
                make_run(0, eb=True, accident=True, target_kind=ActorKind.PEDESTRIAN),
                make_run(1, eb=True, accident=False, target_kind=ActorKind.VEHICLE),
            ]
        )
        random = make_campaign(campaign_id="DS-5-Baseline-Random", runs=[make_run(0)])
        random.attacker_kind = "random"
        findings = headline_findings([robotack], random)
        assert set(findings) >= {
            "robotack_eb_rate",
            "random_eb_rate",
            "eb_improvement_ratio",
            "pedestrian_success_rate",
            "vehicle_success_rate",
        }
        assert findings["robotack_eb_rate"] == pytest.approx(1.0)
        assert findings["pedestrian_success_rate"] == pytest.approx(1.0)
        assert findings["vehicle_success_rate"] == pytest.approx(0.0)
        assert findings["eb_improvement_ratio"] == float("inf")


class TestFusionDefenseTable:
    def _config(self, scenario_id="DS-2", fusion=None, campaign_id="fd"):
        from repro.experiments.campaign import AttackerKind, CampaignConfig

        return CampaignConfig(
            campaign_id=campaign_id,
            scenario_id=scenario_id,
            attacker=AttackerKind.ROBOTACK,
            vector=AttackVector.DISAPPEAR,
            n_runs=2,
            fusion=fusion,
        )

    def test_groups_by_scenario_and_policy(self):
        from repro.perception.fusion import FusionConfig

        pairs = [
            (
                self._config(campaign_id="fd-late"),
                make_campaign(runs=[make_run(0, accident=True), make_run(1)]),
            ),
            (
                self._config(campaign_id="fd-late-2"),
                make_campaign(runs=[make_run(0, accident=True)]),
            ),
            (
                self._config(
                    campaign_id="fd-gated",
                    fusion=FusionConfig(policy="consistency_gated"),
                ),
                make_campaign(runs=[make_run(0), make_run(1)]),
            ),
        ]
        rows = fusion_defense_rows(pairs)
        assert [(r.scenario_id, r.fusion_policy) for r in rows] == [
            ("DS-2", "consistency_gated"),
            ("DS-2", "late"),
        ]
        gated, late = rows
        assert late.n_campaigns == 2
        assert late.n_runs == 3
        assert late.attack_success_count == 2
        assert late.attack_success_rate == pytest.approx(2 / 3)
        assert gated.attack_success_rate == 0.0
        assert len(gated.format_row()) == len(late.format_row())

    def test_move_in_success_counts_emergency_braking(self):
        config = self._config()
        campaign = make_campaign(
            vector=AttackVector.MOVE_IN,
            runs=[
                make_run(0, vector=AttackVector.MOVE_IN, eb=True),
                make_run(1, vector=AttackVector.MOVE_IN, eb=False, accident=True),
            ],
        )
        (row,) = fusion_defense_rows([(config, campaign)])
        # Move_In succeeds via spurious braking, not via the accident flag.
        assert row.attack_success_count == 1
        assert row.emergency_braking_rate == pytest.approx(0.5)

    def test_empty_input(self):
        assert fusion_defense_rows([]) == []


class TestFigureGenerators:
    def test_fig6_pairs_campaigns_by_scenario_and_vector(self):
        with_sh = make_campaign(runs=[make_run(0, min_delta=3.0), make_run(1, min_delta=5.0)])
        without_sh = make_campaign(
            campaign_id="DS-2-Disappear-noSH", runs=[make_run(0, min_delta=9.0), make_run(1, min_delta=12.0)]
        )
        without_sh.attacker_kind = "robotack_no_sh"
        panels = fig6_panels([with_sh], [without_sh])
        assert len(panels) == 1
        panel = panels[0]
        assert panel.with_sh.median < panel.without_sh.median
        assert panel.median_improvement_m > 0

    def test_fig6_skips_unpaired_campaigns(self):
        assert fig6_panels([make_campaign()], []) == []

    def test_fig7_groups_by_kind_and_vector(self):
        campaign = make_campaign(
            runs=[
                make_run(0, k_prime=4, target_kind=ActorKind.PEDESTRIAN),
                make_run(1, k_prime=6, target_kind=ActorKind.PEDESTRIAN),
                make_run(2, k_prime=18, target_kind=ActorKind.VEHICLE, vector=AttackVector.MOVE_OUT),
            ]
        )
        panels = fig7_panels([campaign])
        kinds = {panel.target_kind for panel in panels}
        assert kinds == {ActorKind.PEDESTRIAN, ActorKind.VEHICLE}

    def test_fig8_bins_prediction_errors(self):
        runs = [
            make_run(i, predicted=8.0, actual_end=8.0 + i, accident=(i < 3), eb=(i < 3))
            for i in range(6)
        ]
        campaign = make_campaign(runs=runs)
        data = fig8_data([campaign])
        assert data.binned_success
        assert data.mean_absolute_error_m >= 0.0
        total = sum(count for _, _, count in data.binned_success)
        assert total == 6

    def test_fig8_with_no_attacked_runs(self):
        campaign = make_campaign(runs=[make_run(0, launched=False)])
        data = fig8_data([campaign])
        assert data.binned_success == []

"""Tests for the attack vectors and the scenario matcher (paper Table I)."""

import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.scenario_matcher import ScenarioMatcher, ScenarioMatcherConfig, TrajectoryClass
from repro.perception.transforms import WorldObjectEstimate
from repro.sim.actors import ActorKind


def estimate(lateral, lateral_velocity=0.0, kind=ActorKind.VEHICLE, distance=30.0):
    return WorldObjectEstimate(
        track_id=1,
        actor_id=1,
        kind=kind,
        distance_m=distance,
        lateral_m=lateral,
        relative_longitudinal_velocity_mps=-3.0,
        relative_longitudinal_acceleration_mps2=0.0,
        lateral_velocity_mps=lateral_velocity,
        age_frames=10,
    )


class TestAttackVector:
    def test_from_string_accepts_paper_spelling(self):
        assert AttackVector.from_string("Move_Out") is AttackVector.MOVE_OUT
        assert AttackVector.from_string("disappear") is AttackVector.DISAPPEAR

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError):
            AttackVector.from_string("teleport")

    def test_vector_properties(self):
        assert AttackVector.MOVE_OUT.perturbs_lateral_position
        assert AttackVector.MOVE_IN.perturbs_lateral_position
        assert AttackVector.DISAPPEAR.suppresses_detections
        assert not AttackVector.DISAPPEAR.perturbs_lateral_position
        assert "emergency braking" in AttackVector.MOVE_IN.expected_hazard
        assert "collision" in AttackVector.MOVE_OUT.expected_hazard


class TestTrajectoryClassification:
    @pytest.fixture
    def matcher(self, road):
        return ScenarioMatcher(road)

    def test_keep_when_lateral_speed_small(self, matcher):
        assert matcher.classify_trajectory(estimate(0.5, 0.1)) is TrajectoryClass.KEEP

    def test_moving_in_towards_lane_center(self, matcher):
        # Left of centre, moving right (towards the centre).
        assert matcher.classify_trajectory(estimate(3.5, -1.0)) is TrajectoryClass.MOVING_IN
        # Right of centre, moving left (towards the centre).
        assert matcher.classify_trajectory(estimate(-3.5, 1.0)) is TrajectoryClass.MOVING_IN

    def test_moving_out_away_from_lane_center(self, matcher):
        assert matcher.classify_trajectory(estimate(0.5, 1.0)) is TrajectoryClass.MOVING_OUT
        assert matcher.classify_trajectory(estimate(-0.5, -1.0)) is TrajectoryClass.MOVING_OUT

    def test_lane_membership(self, matcher):
        assert matcher.in_ego_lane(estimate(0.0))
        assert not matcher.in_ego_lane(estimate(3.5))


class TestTableI:
    """The six cells of the paper's scenario-matching map."""

    @pytest.fixture
    def matcher(self, road):
        return ScenarioMatcher(road)

    def test_in_lane_keep_allows_move_out_and_disappear(self, matcher):
        vectors = matcher.candidate_vectors(estimate(0.3, 0.0))
        assert set(vectors) == {AttackVector.MOVE_OUT, AttackVector.DISAPPEAR}

    def test_in_lane_moving_out_allows_move_in(self, matcher):
        assert matcher.candidate_vectors(estimate(0.5, 1.2)) == (AttackVector.MOVE_IN,)

    def test_in_lane_moving_in_allows_nothing(self, matcher):
        assert matcher.candidate_vectors(estimate(0.9, -1.2)) == ()

    def test_out_of_lane_keep_allows_move_in(self, matcher):
        assert matcher.candidate_vectors(estimate(-3.5, 0.0)) == (AttackVector.MOVE_IN,)

    def test_out_of_lane_moving_in_allows_move_out_and_disappear(self, matcher):
        vectors = matcher.candidate_vectors(estimate(-3.5, 1.2))
        assert set(vectors) == {AttackVector.MOVE_OUT, AttackVector.DISAPPEAR}

    def test_out_of_lane_moving_out_allows_nothing(self, matcher):
        assert matcher.candidate_vectors(estimate(-3.5, -1.2)) == ()


class TestMatchSelection:
    def test_prefers_disappear_for_pedestrians(self, road):
        matcher = ScenarioMatcher(road)
        ped = estimate(0.3, 0.0, kind=ActorKind.PEDESTRIAN)
        assert matcher.match(ped) is AttackVector.DISAPPEAR

    def test_prefers_move_out_for_vehicles(self, road):
        matcher = ScenarioMatcher(road)
        assert matcher.match(estimate(0.3, 0.0)) is AttackVector.MOVE_OUT

    def test_respects_allowed_vectors(self, road):
        matcher = ScenarioMatcher(road, allowed_vectors=(AttackVector.DISAPPEAR,))
        assert matcher.match(estimate(0.3, 0.0)) is AttackVector.DISAPPEAR
        matcher_move_in_only = ScenarioMatcher(road, allowed_vectors=(AttackVector.MOVE_IN,))
        assert matcher_move_in_only.match(estimate(0.3, 0.0)) is None

    def test_distance_limits(self, road):
        matcher = ScenarioMatcher(road)
        assert matcher.match(estimate(0.3, 0.0, distance=200.0)) is None
        assert matcher.match(estimate(0.3, 0.0, distance=-1.0)) is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ScenarioMatcherConfig(keep_lateral_speed_mps=-1.0)

"""Benchmark harness package.

The ``__init__`` marker makes ``benchmarks`` a proper package so that the
relative imports in the benchmark modules (``from .conftest import ...``)
resolve when pytest collects from the repository root.
"""

"""Paper Fig. 6: impact of the safety hijacker on the minimum safety potential.

For DS-1/DS-2 x Disappear/Move_Out, the distribution of the per-run minimum
ground-truth safety potential (from attack start to the end of the run) is
compared between RoboTack ("R") and RoboTack without the safety hijacker
("R w/o SH").  Move_In campaigns are omitted, as in the paper, because they
do not reduce the true safety potential.
"""

from repro.experiments.figures import fig6_panels

#: Paper Fig. 6 medians: (R w/o SH, R) per panel.
PAPER_MEDIANS = {
    "DS-1-Disappear": (19.0, 9.0),
    "DS-1-Move_Out": (19.0, 13.0),
    "DS-2-Disappear": (7.0, 3.0),
    "DS-2-Move_Out": (9.0, 3.0),
}


def test_fig6_safety_potential_with_and_without_sh(benchmark, robotack_campaigns, no_sh_campaigns):
    relevant_with = [c for c in robotack_campaigns if c.scenario_id in ("DS-1", "DS-2")]
    relevant_without = [c for c in no_sh_campaigns if c.scenario_id in ("DS-1", "DS-2")]
    panels = benchmark.pedantic(
        fig6_panels, args=(relevant_with, relevant_without), rounds=1, iterations=1
    )

    print("\n=== Fig. 6: min safety potential, R w/o SH vs R (reproduced vs paper medians) ===")
    for panel in panels:
        paper = PAPER_MEDIANS.get(panel.panel_id, (float("nan"), float("nan")))
        print(
            f"{panel.panel_id:<18s} R w/o SH median={panel.without_sh.median:6.1f} m "
            f"(IQR {panel.without_sh.q1:5.1f}-{panel.without_sh.q3:5.1f}) | "
            f"R median={panel.with_sh.median:6.1f} m "
            f"(IQR {panel.with_sh.q1:5.1f}-{panel.with_sh.q3:5.1f}) | "
            f"paper: {paper[0]:.0f} vs {paper[1]:.0f}"
        )

    assert len(panels) == 4
    # Shape: with the safety hijacker the minimum safety potential is driven
    # lower (towards / below the 4 m accident line) than with random timing.
    lower_medians = sum(panel.with_sh.median < panel.without_sh.median for panel in panels)
    assert lower_medians >= 3
    for panel in panels:
        assert panel.with_sh.minimum < panel.accident_threshold_m + 2.0

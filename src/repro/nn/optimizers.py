"""Gradient-descent optimizers: SGD and Adam.

The paper trains the safety hijacker with Adam; SGD is provided for ablation
and testing.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: updates layer parameters in place from their gradients."""

    def step(self, layers: List[Layer]) -> None:
        """Apply one update to every trainable parameter in ``layers``."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self, layers: List[Layer]) -> None:
        for layer in layers:
            params = layer.parameters()
            grads = layer.gradients()
            if not params:
                continue
            state = self._velocity.setdefault(id(layer), {})
            for name, param in params.items():
                grad = grads[name]
                if self.momentum > 0.0:
                    vel = state.setdefault(name, np.zeros_like(param))
                    vel *= self.momentum
                    vel -= self.learning_rate * grad
                    param += vel
                else:
                    param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used to train the safety hijacker."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[int, Dict[str, np.ndarray]] = {}
        self._v: Dict[int, Dict[str, np.ndarray]] = {}
        self._t = 0

    def step(self, layers: List[Layer]) -> None:
        self._t += 1
        for layer in layers:
            params = layer.parameters()
            grads = layer.gradients()
            if not params:
                continue
            m_state = self._m.setdefault(id(layer), {})
            v_state = self._v.setdefault(id(layer), {})
            for name, param in params.items():
                grad = grads[name]
                m = m_state.setdefault(name, np.zeros_like(param))
                v = v_state.setdefault(name, np.zeros_like(param))
                m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
                v[...] = self.beta2 * v + (1.0 - self.beta2) * grad * grad
                m_hat = m / (1.0 - self.beta1**self._t)
                v_hat = v / (1.0 - self.beta2**self._t)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

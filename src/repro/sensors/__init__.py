"""Synthetic sensor models.

The paper's setup posts a 1920x1080 front camera at 15 Hz, a LiDAR at 10 Hz,
and GPS/IMU at 12.5 Hz from the LGSVL simulator to Apollo.  Here each sensor
reads the ground-truth world snapshot and produces measurements in its own
frame:

* the camera projects objects ahead of the EV into image-plane bounding boxes
  (the representation the trajectory hijacker perturbs);
* the LiDAR produces range/bearing detections, reliable for vehicles but
  range-limited for pedestrians (which is why the paper's sensor fusion
  registers pedestrians later than vehicles);
* the GPS/IMU reports the ego pose and speed with small Gaussian noise.
"""

from repro.sensors.camera import CameraFrame, CameraObject, CameraSensor
from repro.sensors.gps_imu import EgoPoseEstimate, GpsImuSensor
from repro.sensors.lidar import LidarDetection, LidarScan, LidarSensor

__all__ = [
    "CameraFrame",
    "CameraObject",
    "CameraSensor",
    "LidarDetection",
    "LidarScan",
    "LidarSensor",
    "EgoPoseEstimate",
    "GpsImuSensor",
]

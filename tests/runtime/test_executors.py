"""Tests for the serial and process-parallel executors."""

import os

import pytest

from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    available_cpus,
    resolve_executor,
)


def _square(x: int) -> int:
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert SerialExecutor().map(_square, []) == []


class TestParallelExecutor:
    def test_map_matches_serial(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.map(_square, range(10)) == [x * x for x in range(10)]

    def test_single_item_runs_inline(self):
        executor = ParallelExecutor(max_workers=2)
        assert executor.map(_square, [5]) == [25]
        # No pool was ever created for a single item.
        assert executor._pool is None

    def test_empty_input(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.map(_square, []) == []

    def test_pool_reused_across_maps(self):
        with ParallelExecutor(max_workers=2) as executor:
            executor.map(_square, range(4))
            pool = executor._pool
            executor.map(_square, range(4))
            assert executor._pool is pool

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(max_workers=2)
        executor.map(_square, range(4))
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_worker_processes_are_real(self):
        with ParallelExecutor(max_workers=2) as executor:
            pids = set(executor.map(_pid, range(8)))
        assert os.getpid() not in pids

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=2, chunksize=0)


def _pid(_: int) -> int:
    return os.getpid()


class TestResolveExecutor:
    def test_none_and_small_counts_are_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(0), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_counts_above_one_are_parallel(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 3

    def test_minus_one_uses_all_cpus(self):
        executor = resolve_executor(-1)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == available_cpus()

    def test_executor_instances_pass_through(self):
        serial = SerialExecutor()
        assert resolve_executor(serial) is serial

    def test_invalid_specs_rejected(self):
        with pytest.raises(TypeError):
            resolve_executor("four")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            resolve_executor(True)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            resolve_executor(-2)

"""Saving and loading feed-forward networks (architecture JSON + weights NPZ).

A trained safety-hijacker oracle is the product of hundreds of seeded
simulation runs plus a full training loop — far too expensive to rebuild in
every campaign process.  This module makes networks durable artifacts:

* the *architecture* is described by a small JSON document (one entry per
  layer: dense dimensions, activation kinds, dropout rates) so a loaded
  network is rebuilt layer-for-layer rather than unpickled;
* the *weights* travel in a sibling NPZ archive whose float64 arrays
  round-trip bit-exactly, so a reloaded network produces predictions that
  are bit-identical to the network that was saved.

The on-disk layout of :func:`save_network` is a directory::

    <path>/
      architecture.json   # {"format": ..., "version": 1, "layers": [...]}
      weights.npz         # layer00_weights, layer00_bias, layer01_weights, ...

Both files are published atomically (temp file + rename), so a reader never
observes a half-written artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.nn.layers import Dense, Dropout, Layer, ReLU
from repro.nn.network import FeedForwardNetwork
from repro.runtime.cache import atomic_publish

__all__ = [
    "network_to_spec",
    "network_from_spec",
    "save_network",
    "load_network",
]

#: Format tag of the architecture document; readers reject other formats.
NETWORK_FORMAT = "repro-feed-forward-network"

#: Bump when the architecture schema changes incompatibly.
NETWORK_VERSION = 1


def network_to_spec(network: FeedForwardNetwork) -> Dict[str, object]:
    """Describe a network's architecture as a JSON-safe document."""
    layers: List[Dict[str, object]] = []
    for layer in network.layers:
        if isinstance(layer, Dense):
            layers.append(
                {
                    "kind": "dense",
                    "in_features": layer.in_features,
                    "out_features": layer.out_features,
                }
            )
        elif isinstance(layer, ReLU):
            layers.append({"kind": "relu"})
        elif isinstance(layer, Dropout):
            layers.append({"kind": "dropout", "rate": layer.rate})
        else:
            raise TypeError(
                f"cannot serialize layer of type {type(layer).__name__}; "
                "extend network_to_spec/network_from_spec for new layer kinds"
            )
    return {"format": NETWORK_FORMAT, "version": NETWORK_VERSION, "layers": layers}


def network_from_spec(
    spec: Dict[str, object], rng: np.random.Generator | None = None
) -> FeedForwardNetwork:
    """Rebuild a network skeleton from :func:`network_to_spec` output.

    The dense layers come back with freshly initialized weights (``rng``);
    :func:`load_network` immediately overwrites them from the NPZ archive.
    """
    if spec.get("format") != NETWORK_FORMAT:
        raise ValueError(f"not a serialized network: format={spec.get('format')!r}")
    version = int(spec.get("version", 0))
    if version > NETWORK_VERSION:
        raise ValueError(
            f"network saved by a newer serialization version ({version} > {NETWORK_VERSION})"
        )
    rng = rng if rng is not None else np.random.default_rng()
    layers: List[Layer] = []
    for entry in spec["layers"]:  # type: ignore[union-attr]
        kind = entry["kind"]
        if kind == "dense":
            layers.append(
                Dense(int(entry["in_features"]), int(entry["out_features"]), rng=rng)
            )
        elif kind == "relu":
            layers.append(ReLU())
        elif kind == "dropout":
            layers.append(Dropout(float(entry["rate"]), rng=rng))
        else:
            raise ValueError(f"unknown layer kind {kind!r} in network spec")
    return FeedForwardNetwork(layers)


def _weights_payload(network: FeedForwardNetwork) -> Dict[str, np.ndarray]:
    payload: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(network.trainable_layers()):
        for name, param in layer.parameters().items():
            payload[f"layer{index:02d}_{name}"] = np.asarray(param, dtype=np.float64)
    return payload


def save_network(network: FeedForwardNetwork, path: Union[str, Path]) -> Path:
    """Persist a network (architecture JSON + weights NPZ) under ``path``."""
    directory = Path(path).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    spec = network_to_spec(network)
    atomic_publish(
        directory / "architecture.json",
        lambda handle: handle.write(json.dumps(spec, indent=2).encode("utf-8")),
    )
    payload = _weights_payload(network)
    atomic_publish(
        directory / "weights.npz", lambda handle: np.savez_compressed(handle, **payload)
    )
    return directory


def load_network(path: Union[str, Path]) -> FeedForwardNetwork:
    """Rebuild a network saved by :func:`save_network` (bit-exact weights)."""
    directory = Path(path).expanduser()
    with (directory / "architecture.json").open("r", encoding="utf-8") as handle:
        spec = json.load(handle)
    network = network_from_spec(spec)
    trainable = network.trainable_layers()
    with np.load(directory / "weights.npz") as archive:
        weights = [
            {
                name: archive[f"layer{index:02d}_{name}"]
                for name in layer.parameters()
            }
            for index, layer in enumerate(trainable)
        ]
    network.set_weights(weights)
    return network

"""Vectorized batch simulation engine.

``BatchSimulator`` advances N independently-seeded runs ("lanes") in lockstep
within one process.  The expensive numerical kernel — the per-track Kalman
predict/update of the multi-object tracker — is batched across *all* live
tracks of *all* lanes into stacked ``(M, 6)`` state / ``(M, 6, 6)`` covariance
arrays, while the cheap-but-branchy per-lane logic (sensor rendering, detector
noise, association, fusion, planning) runs as straight-line Python over plain
floats.  The scalar :class:`~repro.sim.simulator.Simulator` remains the
reference path; the batch engine is validated against it bit-for-bit by the
equivalence suite (``tests/sim/test_batch_equivalence.py``).

Determinism contract
--------------------

The batch engine reproduces the scalar path *bit-identically* (traces, events,
final state) for any lane set, by construction:

* **Seeding** — each lane draws ``sensor_seeds = rng.integers(0, 2**31-1,
  size=2)`` from its spec's generator, exactly as ``Simulator.__init__`` does,
  so the LiDAR/GPS streams are seeded identically.
* **Per-consumer streams** — every stochastic consumer (detector, LiDAR, GPS,
  attacker) owns its own ``np.random.Generator``, so reordering *across*
  consumers cannot change any draw.  The detector's runtime generator is taken
  from the supplied agent (``ads.perception.detector._rng``) and consumed with
  scalar calls in the exact scalar order (its draw count is data-dependent).
* **Buffered sensor noise** — the LiDAR/GPS generators are consumed by one
  bulk ``Generator.normal(loc, scale, size=n)`` draw per lane at construction.
  NumPy's Generator produces bit-identical values for a size-``n`` vector draw
  and ``n`` sequential scalar draws with the same ``loc``/``scale`` (both walk
  the same ziggurat stream), so buffering is exact.  When the GPS position and
  speed sigmas differ the buffer falls back to sequential scalar draws.
* **Batched Kalman algebra** — the stacked predict/update uses ``np.matmul``
  broadcasting with the same left-associated operation order, the same ``.T``
  views, and the same Joseph-form + symmetrization expressions as the scalar
  ``KalmanFilter``; NumPy evaluates a stacked matmul as the identical sequence
  of dot products per stack element, so the results are bit-identical.
* **Per-lane ports** — camera projection, detection noise, IoU/Hungarian
  association, image-to-world transform, camera/LiDAR fusion, IDM planning,
  PID trim, and actuation smoothing are literal ports of the scalar code with
  identical evaluation order (including float left-associativity).

Restrictions (the scalar path has none of these):

* every lane shares one :class:`SimulationConfig` (lockstep needs one ``dt``);
* the agents must be freshly built (no carried-over perception state) and run
  one of the built-in fusion policies (``late``, ``consistency_gated``,
  ``camera_only``, ``lidar_only``), each of which has a plain-float port here;
  third-party fusion policies need the scalar Simulator.

Attackers are invoked as black boxes on real :class:`CameraFrame` objects, so
any scalar attacker composes unchanged (at the cost of building frame
dataclasses for attacked lanes only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from operator import itemgetter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ads.prediction import _NOMINAL_HALF_LENGTH_M, _NOMINAL_HALF_WIDTH_M
from repro.ads.safety import SafetyModel
from repro.geometry.bbox import BoundingBox
from repro.geometry.vec import Vec2
from repro.perception.fusion import (
    CameraOnlyFusion,
    ConsistencyGatedFusion,
    LidarOnlyFusion,
    SensorFusion,
)
from repro.perception.hungarian import hungarian_assignment
from repro.perception.transforms import NOMINAL_HEIGHT_M
from repro.sensors.camera import CameraFrame, CameraObject, CameraSensor
from repro.sensors.gps_imu import GpsImuSensor
from repro.sensors.lidar import LidarSensor
from repro.sim.actors import ActorKind, ActorSnapshot
from repro.sim.config import SimulationConfig
from repro.sim.events import EventKind, EventLog, SimulationEvent
from repro.sim.scenarios import DrivingScenario
from repro.sim.simulator import CameraAttacker, SimulationResult
from repro.sim.world import GroundTruthSnapshot

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.ads.agent import AdsAgent

__all__ = ["BatchRunSpec", "BatchSimulator"]

_first = itemgetter(0)
_second = itemgetter(1)

# --------------------------------------------------------------------------- #
# Batched Kalman filter (constant matrices shared by every track)
# --------------------------------------------------------------------------- #
# These mirror BoundingBoxKalmanFilter exactly; _F_T/_H_T are kept as .T views
# so the BLAS paths match the scalar filter's ``A @ B.T`` expressions.

_F = np.eye(6)
_F[0, 4] = 1.0
_F[1, 5] = 1.0
_F_T = _F.T
_H = np.zeros((4, 6))
_H[0, 0] = _H[1, 1] = _H[2, 2] = _H[3, 3] = 1.0
_H_T = _H.T
_Q = np.diag([1.0, 1.0, 0.5, 0.5, 2.0, 2.0])
_R = np.eye(4) * 10.0
_P0 = np.diag([10.0, 10.0, 10.0, 10.0, 100.0, 100.0])
_I6 = np.eye(6)


class _KalmanPool:
    """Structure-of-arrays storage for every live track's Kalman state.

    A track holds a *row* (its handle) in the pooled ``(cap, 6)`` state and
    ``(cap, 6, 6)`` covariance arrays; predict/update operate on arbitrary row
    subsets in one stacked ``np.matmul`` call each.
    """

    def __init__(self, capacity: int = 128):
        capacity = max(8, capacity)
        self.states = np.zeros((capacity, 6))
        self.covs = np.zeros((capacity, 6, 6))
        self._free = list(range(capacity - 1, -1, -1))

    def alloc(self, cx: float, cy: float, w: float, h: float) -> int:
        if not self._free:
            self._grow()
        row = self._free.pop()
        state = self.states[row]
        state[0] = cx
        state[1] = cy
        state[2] = w
        state[3] = h
        state[4] = 0.0
        state[5] = 0.0
        self.covs[row] = _P0
        return row

    def free(self, row: int) -> None:
        self._free.append(row)

    def _grow(self) -> None:
        old = self.states.shape[0]
        states = np.zeros((old * 2, 6))
        states[:old] = self.states
        covs = np.zeros((old * 2, 6, 6))
        covs[:old] = self.covs
        self.states = states
        self.covs = covs
        self._free.extend(range(old * 2 - 1, old - 1, -1))

    def predict(self, idx: np.ndarray) -> np.ndarray:
        """Stacked constant-velocity predict; returns the new states."""
        states = self.states[idx]
        covs = self.covs[idx]
        new_states = np.matmul(_F, states[..., None])[..., 0]
        self.states[idx] = new_states
        self.covs[idx] = np.matmul(np.matmul(_F, covs), _F_T) + _Q
        return new_states

    def update(self, idx: np.ndarray, measurements: np.ndarray) -> None:
        """Stacked measurement update (Joseph form, symmetrized)."""
        states = self.states[idx]
        covs = self.covs[idx]
        innovation = measurements - states[:, :4]
        pht = np.matmul(covs, _H_T)
        innovation_cov = np.matmul(np.matmul(_H, covs), _H_T) + _R
        gain = np.linalg.solve(
            innovation_cov.transpose(0, 2, 1), pht.transpose(0, 2, 1)
        ).transpose(0, 2, 1)
        states = states + np.matmul(gain, innovation[..., None])[..., 0]
        i_kh = _I6 - np.matmul(gain, _H)
        covs = np.matmul(np.matmul(i_kh, covs), i_kh.transpose(0, 2, 1)) + np.matmul(
            np.matmul(gain, _R), gain.transpose(0, 2, 1)
        )
        self.covs[idx] = 0.5 * (covs + covs.transpose(0, 2, 1))
        self.states[idx] = states


# --------------------------------------------------------------------------- #
# Plain-float ports of the world-side state
# --------------------------------------------------------------------------- #


class _FastRoute:
    """Plain-float port of :meth:`WaypointRoute.advance` (bit-identical)."""

    __slots__ = ("xs", "ys", "speeds", "holds", "n", "seg", "px", "py", "vx", "vy", "hold")

    def __init__(self, route):
        waypoints = route.waypoints
        self.xs = [w.position.x for w in waypoints]
        self.ys = [w.position.y for w in waypoints]
        self.speeds = [w.speed_mps for w in waypoints]
        self.holds = [w.hold_s for w in waypoints]
        self.n = len(waypoints)
        self.seg = route._segment_index
        self.px = route._position.x
        self.py = route._position.y
        self.vx = route._velocity.x
        self.vy = route._velocity.y
        self.hold = route._hold_remaining_s

    def advance(self, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            if self.hold > 0.0:
                waited = self.hold if self.hold < remaining else remaining
                self.hold -= waited
                remaining -= waited
                self.vx = 0.0
                self.vy = 0.0
                continue
            if self.seg >= self.n - 1:
                self.vx = 0.0
                self.vy = 0.0
                return
            target = self.seg + 1
            dx = self.xs[target] - self.px
            dy = self.ys[target] - self.py
            distance = math.hypot(dx, dy)
            speed = self.speeds[target]
            if speed <= 0.0 or distance <= 1e-9:
                self.px = self.xs[target]
                self.py = self.ys[target]
                self.seg = target
                self.hold = self.holds[target]
                self.vx = 0.0
                self.vy = 0.0
                continue
            time_to_target = distance / speed
            ux = dx / distance
            uy = dy / distance
            self.vx = ux * speed
            self.vy = uy * speed
            if time_to_target <= remaining:
                self.px = self.xs[target]
                self.py = self.ys[target]
                remaining -= time_to_target
                self.seg = target
                self.hold = self.holds[target]
            else:
                travel = speed * remaining
                self.px = self.px + ux * travel
                self.py = self.py + uy * travel
                remaining = 0.0
        if self.seg >= self.n - 1 and self.hold <= 0.0:
            self.vx = 0.0
            self.vy = 0.0


class _LaneActor:
    """Plain-float scripted-actor state driven by a :class:`_FastRoute`."""

    __slots__ = ("actor_id", "kind", "dims", "length", "width", "height", "half_w",
                 "route", "x", "y", "vx", "vy")

    def __init__(self, actor):
        self.actor_id = actor.actor_id
        self.kind = actor.kind
        self.dims = actor.dimensions
        self.length = actor.dimensions.length_m
        self.width = actor.dimensions.width_m
        self.height = actor.dimensions.height_m
        self.half_w = self.width / 2.0
        self.route = _FastRoute(actor.route)
        self.x = self.route.px
        self.y = self.route.py
        self.vx = self.route.vx
        self.vy = self.route.vy


class _Track:
    """Tracker bookkeeping for one pooled Kalman row."""

    __slots__ = ("track_id", "kind", "actor_id", "row", "hits", "misses",
                 "pred_cx", "pred_cy", "pred_w", "pred_h", "cx", "cy", "w", "h")

    def __init__(self, track_id, kind, actor_id, row, cx, cy, w, h):
        self.track_id = track_id
        self.kind = kind
        self.actor_id = actor_id
        self.row = row
        self.hits = 1
        self.misses = 0
        self.pred_cx = cx
        self.pred_cy = cy
        self.pred_w = w if w > 1.0 else 1.0
        self.pred_h = h if h > 1.0 else 1.0
        self.cx = cx
        self.cy = cy
        self.w = self.pred_w
        self.h = self.pred_h


class _Fused:
    """Plain-float port of the fusion module's ``_FusedTrack``."""

    __slots__ = ("kind", "actor_id", "camera_frames_seen", "lidar_scans_seen",
                 "frames_since_camera", "scans_since_lidar",
                 "camera_distance", "camera_lateral", "camera_rel_velocity",
                 "lidar_distance", "lidar_lateral", "lidar_speed",
                 "fused_lateral", "fused_distance", "lateral_velocity",
                 "lateral_history", "has_camera_history", "registered")

    def __init__(self, kind, actor_id, lateral, distance):
        self.kind = kind
        self.actor_id = actor_id
        self.camera_frames_seen = 0
        self.lidar_scans_seen = 0
        self.frames_since_camera = 10_000
        self.scans_since_lidar = 10_000
        self.camera_distance = 0.0
        self.camera_lateral = 0.0
        self.camera_rel_velocity = 0.0
        self.lidar_distance = 0.0
        self.lidar_lateral = 0.0
        self.lidar_speed = 0.0
        self.fused_lateral = lateral
        self.fused_distance = distance
        self.lateral_velocity = 0.0
        self.lateral_history: List[float] = []
        self.has_camera_history = False
        self.registered = False


class _LidarOnly:
    """Plain-float port of the fusion module's ``_LidarOnlyTrack``."""

    __slots__ = ("kind", "actor_id", "distance", "lateral", "speed",
                 "scans_seen", "scans_since", "lateral_history",
                 "lateral_velocity", "registered")

    def __init__(self, kind, actor_id):
        self.kind = kind
        self.actor_id = actor_id
        self.distance = 0.0
        self.lateral = 0.0
        self.speed = 0.0
        self.scans_seen = 0
        self.scans_since = 10_000
        self.lateral_history: List[float] = []
        self.lateral_velocity = 0.0
        self.registered = False


@dataclass
class BatchRunSpec:
    """One lane of a batch: a scenario, its victim agent, and its seeds."""

    scenario: DrivingScenario
    ads: "AdsAgent"
    attacker: Optional[CameraAttacker] = None
    rng: Optional[np.random.Generator] = None


# --------------------------------------------------------------------------- #
# One lane: the full per-run state and the scalar-equivalent step logic
# --------------------------------------------------------------------------- #


class _Lane:
    """All state of one simulated run, held as plain floats.

    The constructor replicates ``Simulator.__init__``'s RNG draws and extracts
    every parameter the ported pipeline needs from the supplied agent.  The
    per-step work is split into ``pre_step`` (sensors → detection →
    association; feeds the shared Kalman pool) and ``post_step`` (transform →
    fusion → planning → actuation → world advance), with the batched Kalman
    predict/update running between them in :meth:`BatchSimulator.run`.
    """

    def __init__(self, spec: BatchRunSpec, config: SimulationConfig, pool: _KalmanPool):
        scenario = spec.scenario
        ads = spec.ads
        rng = spec.rng if spec.rng is not None else np.random.default_rng()
        sensor_seeds = rng.integers(0, 2**31 - 1, size=2)

        perception = ads.perception
        fusion_type = type(perception.fusion)
        # Exact-type dispatch: a third-party subclass has unknown semantics
        # and must not silently run the base class's port.  The subclass
        # ConsistencyGatedFusion is listed before its base SensorFusion only
        # for readability — ``type() is`` does not chase the MRO.
        if fusion_type is ConsistencyGatedFusion:
            self.fusion_mode = "consistency_gated"
        elif fusion_type is SensorFusion:
            self.fusion_mode = "late"
        elif fusion_type is CameraOnlyFusion:
            self.fusion_mode = "camera_only"
        elif fusion_type is LidarOnlyFusion:
            self.fusion_mode = "lidar_only"
        else:
            raise ValueError(
                "BatchSimulator has plain-float ports of the built-in fused "
                f"fusion policies only; got {fusion_type.__name__}. Use the "
                "scalar Simulator for custom fusion policies"
            )

        self.pool = pool
        self.dt = config.dt
        self.max_steps = min(config.max_steps, int(round(scenario.duration_s / self.dt)))
        self.lidar_due = [config.lidar_due(step) for step in range(self.max_steps)]

        # --- detector (shares the agent's runtime generator; scalar draws) ---
        det_cfg = perception.detector.config
        self.det_rng = perception.detector._rng
        vn = det_cfg.vehicle_noise
        pn = det_cfg.pedestrian_noise
        self.vnoise = (vn.center_noise_mu_x, vn.center_noise_sigma_x,
                       vn.center_noise_mu_y, vn.center_noise_sigma_y,
                       vn.misdetection_start_probability, 1.0 / vn.burst_rate)
        self.pnoise = (pn.center_noise_mu_x, pn.center_noise_sigma_x,
                       pn.center_noise_mu_y, pn.center_noise_sigma_y,
                       pn.misdetection_start_probability, 1.0 / pn.burst_rate)
        self.min_bbox_h = det_cfg.min_bbox_height_px
        self.burst: Dict[int, int] = {}

        # --- tracker ---
        t_cfg = perception.tracker.config
        self.min_iou = t_cfg.min_iou_for_match
        self.cd_gate = t_cfg.center_distance_gate
        self.max_misses = t_cfg.max_consecutive_misses
        self.min_hits = t_cfg.min_hits_to_confirm
        self.tracks: Dict[int, _Track] = {}
        self.next_tid = 1
        self.observed: List[_Track] = []

        # --- image-to-world transform ---
        transform = perception.transform
        proj = transform.projection
        self.frame_dt = perception.config.frame_dt_s
        self.tf_alpha = transform.velocity_smoothing
        self.tf_om_alpha = 1 - transform.velocity_smoothing
        self.tf_focal = proj.intrinsics.focal_px
        self.tf_img_cx = proj.intrinsics.image_cx
        self.tf_min_d = proj.MIN_DISTANCE_M
        self.tf_hist: Dict[int, List[float]] = {}

        # --- fusion ---
        f_cfg = perception.fusion.config
        self.cam_w = f_cfg.camera_weight
        self.om_cam_w = 1.0 - f_cfg.camera_weight
        self.cam_dw = f_cfg.camera_distance_weight
        self.om_cam_dw = 1.0 - f_cfg.camera_distance_weight
        self.fused_reg = f_cfg.fused_registration_frames
        self.cam_reg = f_cfg.camera_only_registration_frames
        self.lidar_reg = f_cfg.lidar_only_registration_scans
        self.cam_timeout = f_cfg.camera_only_timeout_frames
        self.lidar_backed_timeout = f_cfg.lidar_backed_timeout_frames
        self.lidar_timeout = f_cfg.lidar_only_timeout_scans
        self.gate = f_cfg.association_gate_m
        self.gate_factor = f_cfg.association_gate_range_factor
        self.falpha = f_cfg.lateral_velocity_smoothing
        self.om_falpha = 1 - f_cfg.lateral_velocity_smoothing
        self.baseline_p1 = f_cfg.lateral_velocity_baseline_frames + 1
        self.fusion_tracks: Dict[tuple, _Fused] = {}
        # Consistency gate (consistency_gated policy): the penalized weights
        # are formed as weight * penalty, the same operands and order as the
        # scalar ConsistencyGatedFusion._blend_weights, so they stay
        # bit-identical.
        self.cons_enabled = self.fusion_mode == "consistency_gated"
        self.cons_gate = f_cfg.consistency_gate_m
        self.pen_cam_w = f_cfg.camera_weight * f_cfg.consistency_camera_penalty
        self.om_pen_cam_w = 1.0 - self.pen_cam_w
        self.pen_cam_dw = f_cfg.camera_distance_weight * f_cfg.consistency_camera_penalty
        self.om_pen_cam_dw = 1.0 - self.pen_cam_dw
        self.lidar_only_tracks: Dict[int, _LidarOnly] = {}
        if self.fusion_mode == "camera_only":
            self._fuse_impl = self._fuse_camera_only
        elif self.fusion_mode == "lidar_only":
            self._fuse_impl = self._fuse_lidar_only
        else:
            self._fuse_impl = self._fuse

        # --- planner / PID / smoother ---
        p_cfg = ads.planner_config
        self.cruise = p_cfg.cruise_speed_mps
        self.p_max_accel = p_cfg.max_accel_mps2
        self.p_comfort = p_cfg.comfortable_decel_mps2
        self.p_max_decel = p_cfg.max_decel_mps2
        self.headway = p_cfg.time_headway_s
        self.standstill = p_cfg.standstill_gap_m
        self.coast_frames = p_cfg.lost_lead_coast_frames
        self.emerg_demand = p_cfg.emergency_decel_demand_mps2
        self.emerg_delta = p_cfg.emergency_delta_m
        self.ped_caution_speed = p_cfg.pedestrian_caution_speed_mps
        self.ped_range = p_cfg.pedestrian_caution_range_m
        self.ped_margin = p_cfg.pedestrian_caution_margin_m
        self.idm_denom = 2.0 * math.sqrt(p_cfg.max_accel_mps2 * p_cfg.comfortable_decel_mps2)
        pred = p_cfg.prediction
        self.horizon = pred.horizon_s
        self.lat_margin = pred.lateral_margin_m
        self.min_lat_speed = pred.min_lateral_speed_mps
        self.min_pred_dist = pred.min_prediction_distance_m
        self.p_reaction = ads.planner.safety_model.reaction_time_s
        self.cycles_since_lead_lost = ads.planner._cycles_since_lead_lost
        self.hw_veh = _NOMINAL_HALF_WIDTH_M[ActorKind.VEHICLE]
        self.hw_ped = _NOMINAL_HALF_WIDTH_M[ActorKind.PEDESTRIAN]
        self.hl_veh = _NOMINAL_HALF_LENGTH_M[ActorKind.VEHICLE]
        self.hl_ped = _NOMINAL_HALF_LENGTH_M[ActorKind.PEDESTRIAN]
        self.nominal_h = NOMINAL_HEIGHT_M
        pid = ads.speed_pid
        self.pid_kp = pid.kp
        self.pid_ki = pid.ki
        self.pid_kd = pid.kd
        self.pid_min = pid.output_min
        self.pid_max = pid.output_max
        self.pid_integral = 0.0
        self.pid_prev: Optional[float] = None
        smoother = ads.smoother
        self.jerk_comfort = smoother.comfort_jerk_mps3
        self.jerk_emergency = smoother.emergency_jerk_mps3
        self.last_accel = 0.0

        # --- road ---
        ego_lane = ads.road.ego_lane
        self.lane_lo = ego_lane.y_min
        self.lane_hi = ego_lane.y_max

        # --- world state ---
        world = scenario.world
        ego = world.ego
        self.ego_id = ego.actor_id
        self.ego_dims = ego.dimensions
        self.ego_len = ego.dimensions.length_m
        self.ego_w = ego.dimensions.width_m
        self.ego_half_len = self.ego_len / 2.0
        self.ego_max_accel = ego.max_accel_mps2
        self.ego_max_decel = ego.max_decel_mps2
        self.ego_x = ego.position.x
        self.ego_y = ego.position.y
        self.ego_speed = ego.speed_mps
        self.actors = [_LaneActor(actor) for actor in world.actors]
        self.time_s = world.time_s
        self.step = world.step_index
        self.loop_step = 0

        # --- camera constants (stateless; mirrors Simulator's CameraSensor()) ---
        camera = CameraSensor()
        intr = camera.projection.intrinsics
        self.cam_max_range = camera.max_range_m
        self.cam_min_d = camera.projection.MIN_DISTANCE_M
        self.focal = intr.focal_px
        self.img_cx = intr.image_cx
        self.img_cy = intr.image_cy
        self.img_w = intr.image_width
        self.cam_h = intr.camera_height_m

        # --- buffered sensor noise (bulk draws; see module docstring) ---
        lidar = LidarSensor(rng=np.random.default_rng(int(sensor_seeds[0])))
        gps = GpsImuSensor(rng=np.random.default_rng(int(sensor_seeds[1])))
        self.lidar_v_range = lidar.vehicle_range_m
        self.lidar_p_range = lidar.pedestrian_range_m
        n_scans = sum(1 for due in self.lidar_due if due)
        n_draws = 2 * len(self.actors) * n_scans
        self.lidar_noise = (
            lidar._rng.normal(0.0, lidar.position_noise_m, size=n_draws).tolist()
            if n_draws
            else []
        )
        self.lidar_cursor = 0
        if gps.position_noise_m == gps.speed_noise_mps:
            self.gps_noise = gps._rng.normal(
                0.0, gps.speed_noise_mps, size=3 * self.max_steps
            ).tolist()
        else:  # pragma: no cover - non-default sensor config
            sigmas = (gps.position_noise_m, gps.position_noise_m, gps.speed_noise_mps)
            self.gps_noise = [
                float(gps._rng.normal(0.0, sigmas[i % 3]))
                for i in range(3 * self.max_steps)
            ]

        # --- run bookkeeping ---
        sim_safety = SafetyModel(comfortable_decel_mps2=config.comfortable_decel_mps2)
        self.sim_reaction = sim_safety.reaction_time_s
        self.sim_comfort = sim_safety.comfortable_decel_mps2
        self.attacker = spec.attacker
        self.scenario_id = scenario.scenario_id
        self.scenario_target_id = scenario.target_actor_id
        self.events = EventLog()
        self.attack_was_active = False
        self.emergency_was_active = False
        self.halted = False
        self.done = False
        self.last_lidar: Optional[List[tuple]] = None
        self.gps_speed = 0.0

        # Mirror the scalar pre-loop collision check: actors spawned already
        # overlapping halt at step 0 instead of running the full duration.
        hit = self._check_collision()
        if hit is not None:
            self._halt(hit, float("inf"))
        elif self.max_steps == 0:
            self._finish()

    # ------------------------------------------------------------------ #
    # Sensors (ports of CameraSensor.capture / LidarSensor.scan / GpsImu)
    # ------------------------------------------------------------------ #

    def _render_objects(self) -> List[tuple]:
        """Camera render: (distance, lateral, aid, kind, cx, cy, w, h, oh, ow)."""
        camera_x = self.ego_x + self.ego_half_len
        ego_y = self.ego_y
        min_d = self.cam_min_d
        focal = self.focal
        objects = []
        for actor in self.actors:
            distance = actor.x - camera_x
            if distance <= min_d or distance > self.cam_max_range:
                continue
            lateral = actor.y - ego_y
            cx_fov = self.img_cx - lateral * focal / distance
            if not 0.0 <= cx_fov <= self.img_w:
                continue
            d = distance if distance > min_d else min_d
            scale = focal / d
            width_px = actor.width * scale
            height_px = actor.height * scale
            cx = self.img_cx - lateral * scale
            ground_y = self.img_cy + self.cam_h * scale
            cy = ground_y - (actor.height / 2.0) * scale
            objects.append((distance, lateral, actor.actor_id, actor.kind,
                            cx, cy, width_px, height_px, actor.height, actor.width))
        objects.sort(key=_first)
        return objects

    def _scan(self) -> None:
        """LiDAR scan into ``last_lidar``: (distance, lateral, aid, kind, vx)."""
        ego_front = self.ego_x + self.ego_half_len
        ego_y = self.ego_y
        noise = self.lidar_noise
        cursor = self.lidar_cursor
        detections = []
        for actor in self.actors:
            distance = actor.x - ego_front
            max_range = (
                self.lidar_v_range if actor.kind is ActorKind.VEHICLE else self.lidar_p_range
            )
            if distance <= 0.0 or distance > max_range:
                continue
            noise_x = noise[cursor]
            noise_y = noise[cursor + 1]
            cursor += 2
            detections.append((distance + noise_x, actor.y - ego_y + noise_y,
                               actor.actor_id, actor.kind, actor.vx))
        self.lidar_cursor = cursor
        detections.sort(key=_first)
        self.last_lidar = detections

    # ------------------------------------------------------------------ #
    # pre_step: sensing -> attack -> detection -> association
    # ------------------------------------------------------------------ #

    def pre_step(self, upd_rows: List[int], upd_z: List[tuple]) -> None:
        rendered = self._render_objects()
        if self.lidar_due[self.loop_step]:
            self._scan()
        gps = self.ego_speed + self.gps_noise[3 * self.loop_step + 2]
        self.gps_speed = gps if gps > 0.0 else 0.0

        if self.attacker is not None:
            frame = CameraFrame(
                time_s=self.time_s,
                frame_index=self.step,
                objects=tuple(
                    CameraObject(
                        actor_id=obj[2],
                        kind=obj[3],
                        bbox=BoundingBox(cx=obj[4], cy=obj[5], width=obj[6], height=obj[7]),
                        distance_m=obj[0],
                        lateral_m=obj[1],
                        object_height_m=obj[8],
                        object_width_m=obj[9],
                    )
                    for obj in rendered
                ),
            )
            delivered = self.attacker.process_frame(
                frame, ego_speed_mps=self.gps_speed, dt=self.dt
            )
            active = bool(self.attacker.attack_active)
            if active and not self.attack_was_active:
                self.events.record(SimulationEvent(
                    kind=EventKind.ATTACK_STARTED, time_s=self.time_s, step_index=self.step
                ))
            elif not active and self.attack_was_active:
                self.events.record(SimulationEvent(
                    kind=EventKind.ATTACK_ENDED, time_s=self.time_s, step_index=self.step
                ))
            self.attack_was_active = active
            camera_objects = [
                (obj.actor_id, obj.kind, obj.bbox.cx, obj.bbox.cy,
                 obj.bbox.width, obj.bbox.height)
                for obj in delivered.objects
            ]
        else:
            camera_objects = [(obj[2], obj[3], obj[4], obj[5], obj[6], obj[7])
                              for obj in rendered]

        detections = self._detect(camera_objects)
        self._track_step(detections, upd_rows, upd_z)

    def _detect(self, camera_objects: List[tuple]) -> List[tuple]:
        """Detector port: (cx, cy, w, h, kind, aid), scalar RNG call order."""
        rng = self.det_rng
        burst = self.burst
        min_bbox_h = self.min_bbox_h
        detections = []
        visible = set()
        for actor_id, kind, cx, cy, w, h in camera_objects:
            visible.add(actor_id)
            noise = self.vnoise if kind is ActorKind.VEHICLE else self.pnoise
            if h < min_bbox_h:
                continue
            remaining = burst.get(actor_id, 0)
            if remaining > 0:
                burst[actor_id] = remaining - 1
                continue
            if rng.random() < noise[4]:
                burst_length = 1 + int(rng.exponential(noise[5]))
                burst[actor_id] = burst_length - 1 if burst_length > 1 else 0
                continue
            dx = rng.normal(noise[0], noise[1]) * w
            dy = rng.normal(noise[2], noise[3]) * h
            size_jitter = rng.normal(1.0, 0.03)
            if size_jitter < 0.85:
                size_jitter = 0.85
            elif size_jitter > 1.15:
                size_jitter = 1.15
            size_jitter = float(size_jitter)
            # Confidence is drawn (to keep the stream aligned) but unused.
            rng.normal(0.85, 0.08)
            detections.append((float(cx + dx), float(cy + dy),
                               float(w * size_jitter), float(h * size_jitter),
                               kind, actor_id))
        if burst:
            for actor_id in [aid for aid in burst if aid not in visible]:
                del burst[actor_id]
        return detections

    def _pair_cost(self, track: "_Track", geom: tuple) -> float:
        """Association cost for one (track, detection) pair — scalar-exact."""
        dx0, dx1, dy0, dy1, d_area, dcx, dcy, dw = geom
        pcx = track.pred_cx
        pcy = track.pred_cy
        pw = track.pred_w
        ph = track.pred_h
        px0 = pcx - pw / 2.0
        px1 = pcx + pw / 2.0
        py0 = pcy - ph / 2.0
        py1 = pcy + ph / 2.0
        overlap_w = (px1 if px1 < dx1 else dx1) - (px0 if px0 > dx0 else dx0)
        overlap_h = (py1 if py1 < dy1 else dy1) - (py0 if py0 > dy0 else dy0)
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            inter = 0.0
        else:
            inter = overlap_w * overlap_h
        union = pw * ph + d_area - inter
        overlap = 0.0 if union <= 0.0 else inter / union
        mean_width = (pw + dw) / 2.0
        if mean_width < 1.0:
            mean_width = 1.0
        normalized = np.hypot(pcx - dcx, pcy - dcy) / mean_width
        return (1.0 - overlap) + 0.05 * min(normalized, 10.0)

    def _track_step(self, detections: List[tuple],
                    upd_rows: List[int], upd_z: List[tuple]) -> None:
        """MOT association + lifecycle; Kalman updates are deferred to the pool."""
        tracks = self.tracks
        track_list = list(tracks.values())
        n_tracks = len(track_list)
        n_dets = len(detections)
        matched_tracks: List[_Track] = []
        matched_det_idx: List[int] = []
        if n_tracks and n_dets:
            det_geom = []
            for det in detections:
                dcx, dcy, dw, dh = det[0], det[1], det[2], det[3]
                det_geom.append((dcx - dw / 2.0, dcx + dw / 2.0,
                                 dcy - dh / 2.0, dcy + dh / 2.0,
                                 dw * dh, dcx, dcy, dw))
            # The Hungarian solve is only needed when the matrix is at least
            # 2x2.  A 1x1 matrix always yields the pair (0, 0), and a single
            # row (or column) reduces to a first-wins argmin — exactly the
            # tie-break the strict ``<`` in the solver's delta update uses —
            # so the common 1-track/1-detection frame skips the cost matrix
            # entirely.  Acceptability is then checked lazily per returned
            # pair (the boolean is identical; only unselected pairs skip it).
            if n_tracks == 1 and n_dets == 1:
                pairs = ((0, 0),)
            elif n_tracks == 1:
                best_c = 0
                best = self._pair_cost(track_list[0], det_geom[0])
                for c in range(1, n_dets):
                    value = self._pair_cost(track_list[0], det_geom[c])
                    if value < best:
                        best = value
                        best_c = c
                pairs = ((0, best_c),)
            elif n_dets == 1:
                best_r = 0
                best = self._pair_cost(track_list[0], det_geom[0])
                for r in range(1, n_tracks):
                    value = self._pair_cost(track_list[r], det_geom[0])
                    if value < best:
                        best = value
                        best_r = r
                pairs = ((best_r, 0),)
            else:
                cost = np.empty((n_tracks, n_dets))
                for r, track in enumerate(track_list):
                    for c in range(n_dets):
                        cost[r, c] = self._pair_cost(track, det_geom[c])
                pairs = hungarian_assignment(cost)
            min_iou = self.min_iou
            cd_gate = self.cd_gate
            for r, c in pairs:
                track = track_list[r]
                pw = track.pred_w
                pw_floor = pw if pw > 1.0 else 1.0
                dx0, dx1, dy0, dy1, d_area, dcx, dcy, dw = det_geom[c]
                width_ratio = dw / pw_floor
                if not 0.4 <= width_ratio <= 2.5:
                    continue
                pcx = track.pred_cx
                pcy = track.pred_cy
                ph = track.pred_h
                px0 = pcx - pw / 2.0
                px1 = pcx + pw / 2.0
                py0 = pcy - ph / 2.0
                py1 = pcy + ph / 2.0
                overlap_w = (px1 if px1 < dx1 else dx1) - (px0 if px0 > dx0 else dx0)
                overlap_h = (py1 if py1 < dy1 else dy1) - (py0 if py0 > dy0 else dy0)
                if overlap_w <= 0.0 or overlap_h <= 0.0:
                    inter = 0.0
                else:
                    inter = overlap_w * overlap_h
                union = pw * ph + d_area - inter
                overlap = 0.0 if union <= 0.0 else inter / union
                if overlap < min_iou:
                    mean_width = (pw + dw) / 2.0
                    if mean_width < 1.0:
                        mean_width = 1.0
                    if np.hypot(pcx - dcx, pcy - dcy) / mean_width > cd_gate:
                        continue
                matched_tracks.append(track)
                matched_det_idx.append(c)

        for track, c in zip(matched_tracks, matched_det_idx):
            det = detections[c]
            track.kind = det[4]
            track.actor_id = det[5]
            track.hits += 1
            track.misses = 0
            upd_rows.append(track.row)
            upd_z.append((det[0], det[1], det[2], det[3]))

        matched_ids = {track.track_id for track in matched_tracks}
        for track in track_list:
            if track.track_id not in matched_ids:
                track.misses += 1

        matched_cols = set(matched_det_idx)
        for c, det in enumerate(detections):
            if c in matched_cols:
                continue
            tid = self.next_tid
            self.next_tid += 1
            row = self.pool.alloc(det[0], det[1], det[2], det[3])
            tracks[tid] = _Track(tid, det[4], det[5], row, det[0], det[1], det[2], det[3])

        stale = [tid for tid, track in tracks.items() if track.misses > self.max_misses]
        for tid in stale:
            self.pool.free(tracks.pop(tid).row)

        min_hits = self.min_hits
        self.observed = [track for track in tracks.values()
                         if track.hits >= min_hits and track.misses <= 1]

    # ------------------------------------------------------------------ #
    # post_step: transform -> fusion -> planning -> actuation -> world
    # ------------------------------------------------------------------ #

    def post_step(self) -> None:
        # --- image-to-world transform (EMA velocity estimation) ---
        history = self.tf_hist
        frame_dt = self.frame_dt
        alpha = self.tf_alpha
        om_alpha = self.tf_om_alpha
        # (distance, lateral, rel_velocity, lateral_velocity, track_id, actor_id, kind)
        estimates = []
        for track in self.observed:
            height_px = track.h
            nominal = self.nominal_h[track.kind]
            if height_px <= 0:
                continue
            distance = self.tf_focal * nominal / height_px
            d = distance if distance > self.tf_min_d else self.tf_min_d
            lateral = (self.tf_img_cx - track.cx) * d / self.tf_focal
            record = history.get(track.track_id)
            if record is None:
                history[track.track_id] = [distance, lateral, 0.0, 0.0, 0.0]
                velocity = 0.0
                lateral_velocity = 0.0
            else:
                raw_v = (distance - record[0]) / frame_dt
                raw_lv = (lateral - record[1]) / frame_dt
                velocity = om_alpha * record[2] + alpha * raw_v
                lateral_velocity = om_alpha * record[3] + alpha * raw_lv
                raw_a = (velocity - record[2]) / frame_dt
                acceleration = om_alpha * record[4] + alpha * raw_a
                record[0] = distance
                record[1] = lateral
                record[2] = velocity
                record[3] = lateral_velocity
                record[4] = acceleration
            estimates.append((distance, lateral, velocity, lateral_velocity,
                              track.track_id, track.actor_id, track.kind))
        if history:
            live = {track.track_id for track in self.observed}
            for tid in [tid for tid in history if tid not in live]:
                del history[tid]
        estimates.sort(key=_first)

        # --- fusion (dispatched on the lane's fusion policy) ---
        obstacles = self._fuse_impl(estimates)

        # --- planning (LongitudinalPlanner port) ---
        ego_speed = self.gps_speed
        target_speed = self.cruise
        for obstacle in obstacles:
            if obstacle[0] is not ActorKind.PEDESTRIAN:
                continue
            if not 0.0 < obstacle[1] <= self.ped_range:
                continue
            margin = self.ped_margin + self.hw_ped
            if self.lane_lo - margin <= obstacle[2] <= self.lane_hi + margin:
                target_speed = min(target_speed, self.ped_caution_speed)
                break

        if target_speed <= 0:
            free_accel = -self.p_comfort
        else:
            speed_ratio = ego_speed / target_speed
            accel = self.p_max_accel * (1.0 - speed_ratio**4)
            neg_comfort = -self.p_comfort
            if neg_comfort > accel:
                accel = neg_comfort
            if self.p_max_accel < accel:
                accel = self.p_max_accel
            free_accel = float(accel)

        # obstacles are distance-sorted, so the first relevant one is the lead.
        lead = None
        for obstacle in obstacles:
            distance = obstacle[1]
            if distance <= 0:
                continue
            half_w = self.hw_veh if obstacle[0] is ActorKind.VEHICLE else self.hw_ped
            margin = self.lat_margin + half_w
            lo = self.lane_lo - margin
            hi = self.lane_hi + margin
            lateral = obstacle[2]
            if lo <= lateral <= hi:
                lead = obstacle
                break
            if distance < self.min_pred_dist:
                continue
            lateral_speed = obstacle[4]
            if abs(lateral_speed) < self.min_lat_speed:
                lateral_speed = 0.0
            if lo <= lateral + lateral_speed * self.horizon <= hi:
                lead = obstacle
                break

        if lead is None:
            self.cycles_since_lead_lost += 1
            if self.cycles_since_lead_lost <= self.coast_frames:
                free_accel = 0.0 if 0.0 < free_accel else free_accel
            desired = free_accel
            emergency = False
            perceived = float("inf")
        else:
            self.cycles_since_lead_lost = 0
            half_len = self.hl_veh if lead[0] is ActorKind.VEHICLE else self.hl_ped
            gap = lead[1] - half_len
            if not gap > 0.1:
                gap = 0.1
            lead_speed = lead[3]
            if not lead_speed > 0.0:
                lead_speed = 0.0
            closing = ego_speed - lead_speed
            sp = ego_speed if ego_speed > 0.0 else 0.0
            perceived = gap - (sp * self.p_reaction + sp * sp / (2.0 * self.p_comfort))
            desired_gap = (
                self.standstill
                + ego_speed * self.headway
                + ego_speed * closing / self.idm_denom
            )
            if self.standstill > desired_gap:
                desired_gap = self.standstill
            speed_ratio = ego_speed / (0.1 if 0.1 > target_speed else target_speed)
            interaction = self.p_max_accel * (
                1.0 - speed_ratio**4 - (desired_gap / gap) ** 2
            )
            if self.p_max_accel < interaction:
                interaction = self.p_max_accel
            interaction = float(interaction)
            desired = interaction if interaction < free_accel else free_accel
            if closing <= 0.3:
                emergency = False
            else:
                braking_gap = gap - 1.0
                if not braking_gap > 0.1:
                    braking_gap = 0.1
                required = closing**2 / (2.0 * braking_gap)
                emergency = required > self.emerg_demand or perceived < self.emerg_delta
            if emergency:
                desired = -self.p_max_decel
            else:
                neg_comfort = -self.p_comfort
                if neg_comfort > desired:
                    desired = neg_comfort

        # --- PID trim + actuation smoothing (AdsAgent.step port) ---
        error = target_speed - ego_speed
        if self.pid_prev is not None:
            derivative = (error - self.pid_prev) / self.dt
        else:
            derivative = 0.0
        self.pid_prev = error
        candidate = self.pid_integral + error * self.dt
        output = self.pid_kp * error + self.pid_ki * candidate + self.pid_kd * derivative
        if self.pid_min <= output <= self.pid_max:
            self.pid_integral = candidate
            trim = output
        else:
            trim = output
            if self.pid_min > trim:
                trim = self.pid_min
            if self.pid_max < trim:
                trim = self.pid_max
        if not emergency and desired > -self.p_comfort:
            trimmed = desired + 0.2 * trim
            neg_comfort = -self.p_comfort
            if neg_comfort > trimmed:
                trimmed = neg_comfort
            if self.p_max_accel < trimmed:
                trimmed = self.p_max_accel
            desired = float(trimmed)
        jerk = self.jerk_emergency if emergency else self.jerk_comfort
        max_change = jerk * self.dt
        change = desired - self.last_accel
        neg_change = -max_change
        if neg_change > change:
            change = neg_change
        if max_change < change:
            change = max_change
        self.last_accel += change
        acceleration = self.last_accel

        # --- events + traces (pre-step time/step, like the scalar loop) ---
        if emergency and not self.emergency_was_active:
            self.events.record(SimulationEvent(
                kind=EventKind.EMERGENCY_BRAKE,
                time_s=self.time_s,
                step_index=self.step,
                details={"perceived_delta_m": perceived},
            ))
        self.emergency_was_active = emergency
        self.events.record_step(
            true_delta=self._true_delta(),
            perceived_delta=perceived,
            ego_speed=self.ego_speed,
        )

        # --- world advance (EgoVehicle.apply_control + route advance) ---
        dt = self.dt
        accel = acceleration
        neg_decel = -self.ego_max_decel
        if neg_decel > accel:
            accel = neg_decel
        if self.ego_max_accel < accel:
            accel = self.ego_max_accel
        new_speed = self.ego_speed + accel * dt
        if not new_speed > 0.0:
            new_speed = 0.0
        average = (self.ego_speed + new_speed) / 2.0
        self.ego_x = self.ego_x + average * dt
        self.ego_speed = new_speed
        for actor in self.actors:
            route = actor.route
            route.advance(dt)
            actor.x = route.px
            actor.y = route.py
            actor.vx = route.vx
            actor.vy = route.vy
        self.time_s += dt
        self.step += 1
        self.loop_step += 1

        hit = self._check_collision()
        if hit is not None:
            self._halt(hit, perceived)
        elif self.loop_step >= self.max_steps:
            self._finish()

    # ------------------------------------------------------------------ #
    # Fusion (SensorFusion.step port)
    # ------------------------------------------------------------------ #

    def _nearest_fused(self, distance: float, lateral: float) -> Optional[_Fused]:
        best = None
        best_sep = self.gate + self.gate_factor * (distance if distance > 0.0 else 0.0)
        for fused in self.fusion_tracks.values():
            if not fused.has_camera_history and not fused.scans_since_lidar <= 2:
                continue
            separation = abs(fused.fused_distance - distance) + 2.5 * abs(
                fused.fused_lateral - lateral
            )
            if separation < best_sep:
                best_sep = separation
                best = fused
        return best

    def _fuse(self, estimates: List[tuple]) -> List[tuple]:
        """Returns distance-sorted (kind, distance, lateral, speed, lat_vel).

        Port of ``SensorFusion`` (the ``late`` policy) — and, through the
        weight selection in the camera+LiDAR-fresh branch, of
        ``ConsistencyGatedFusion`` when ``cons_enabled`` is set.
        """
        tracks = self.fusion_tracks
        lidar = self.last_lidar
        for fused in tracks.values():
            fused.frames_since_camera += 1
            if lidar is not None:
                fused.scans_since_lidar += 1

        for distance, lateral, velocity, _lat_vel, track_id, actor_id, kind in estimates:
            key = ("cam", track_id)
            fused = tracks.get(key)
            if fused is None:
                fused = self._nearest_fused(distance, lateral)
                if fused is None:
                    fused = _Fused(kind, actor_id, lateral, distance)
                    tracks[key] = fused
            fused.camera_frames_seen += 1
            fused.frames_since_camera = 0
            fused.camera_distance = distance
            fused.camera_lateral = lateral
            fused.camera_rel_velocity = velocity
            fused.actor_id = actor_id
            fused.kind = kind
            fused.has_camera_history = True

        if lidar is not None:
            for distance, lateral, actor_id, kind, speed in lidar:
                fused = self._nearest_fused(distance, lateral)
                if fused is None:
                    key = ("lidar", actor_id)
                    fused = tracks.get(key)
                    if fused is None:
                        fused = _Fused(kind, actor_id, lateral, distance)
                        tracks[key] = fused
                fused.lidar_scans_seen += 1
                fused.scans_since_lidar = 0
                fused.lidar_distance = distance
                fused.lidar_lateral = lateral
                fused.lidar_speed = speed
                if fused.actor_id is None:
                    fused.actor_id = actor_id

        for fused in tracks.values():
            if fused.registered:
                continue
            if fused.camera_frames_seen > 0 and fused.lidar_scans_seen > 0:
                if fused.camera_frames_seen >= self.fused_reg:
                    fused.registered = True
            elif fused.camera_frames_seen > 0:
                if fused.camera_frames_seen >= self.cam_reg:
                    fused.registered = True
            elif fused.lidar_scans_seen >= self.lidar_reg:
                fused.registered = True

        stale = []
        for key, fused in tracks.items():
            if fused.has_camera_history:
                timeout = (
                    self.lidar_backed_timeout
                    if fused.scans_since_lidar <= 2
                    else self.cam_timeout
                )
                if fused.frames_since_camera > timeout:
                    stale.append(key)
            elif fused.scans_since_lidar > self.lidar_timeout:
                stale.append(key)
        for key in stale:
            del tracks[key]

        ego_speed = self.gps_speed
        obstacles = []
        for fused in tracks.values():
            camera_fresh = fused.frames_since_camera <= 2 and fused.camera_frames_seen > 0
            lidar_fresh = fused.scans_since_lidar <= 2 and fused.lidar_scans_seen > 0
            if camera_fresh and lidar_fresh:
                if self.cons_enabled and (
                    abs(fused.camera_lateral - fused.lidar_lateral) > self.cons_gate
                ):
                    lateral = (
                        self.pen_cam_w * fused.camera_lateral
                        + self.om_pen_cam_w * fused.lidar_lateral
                    )
                    distance = (
                        self.pen_cam_dw * fused.camera_distance
                        + self.om_pen_cam_dw * fused.lidar_distance
                    )
                else:
                    lateral = (
                        self.cam_w * fused.camera_lateral + self.om_cam_w * fused.lidar_lateral
                    )
                    distance = (
                        self.cam_dw * fused.camera_distance + self.om_cam_dw * fused.lidar_distance
                    )
                speed = fused.lidar_speed
            elif camera_fresh:
                lateral = fused.camera_lateral
                distance = fused.camera_distance
                speed = ego_speed + fused.camera_rel_velocity
                if not speed > 0.0:
                    speed = 0.0
            elif lidar_fresh:
                lateral = fused.lidar_lateral
                distance = fused.lidar_distance
                speed = fused.lidar_speed
            else:
                lateral = fused.fused_lateral
                distance = fused.fused_distance
                if fused.lidar_scans_seen:
                    speed = fused.lidar_speed
                else:
                    speed = ego_speed + fused.camera_rel_velocity
                    if not speed > 0.0:
                        speed = 0.0
            if not camera_fresh and not lidar_fresh:
                fused.lateral_velocity *= 0.8
            else:
                lat_history = fused.lateral_history
                if lat_history and abs(lateral - lat_history[-1]) > 1.0:
                    lat_history.clear()
                    fused.lateral_velocity = 0.0
                lat_history.append(lateral)
                if len(lat_history) > self.baseline_p1:
                    del lat_history[: -self.baseline_p1]
                n = len(lat_history)
                if n >= 2:
                    raw = (lat_history[-1] - lat_history[0]) / ((n - 1) * self.frame_dt)
                else:
                    raw = 0.0
                fused.lateral_velocity = (
                    self.om_falpha * fused.lateral_velocity + self.falpha * raw
                )
            fused.fused_lateral = lateral
            fused.fused_distance = distance
            if fused.registered:
                obstacles.append((fused.kind, distance, lateral, speed,
                                  fused.lateral_velocity))
        obstacles.sort(key=_second)
        return obstacles

    def _fuse_camera_only(self, estimates: List[tuple]) -> List[tuple]:
        """Port of ``CameraOnlyFusion``: camera estimates pass straight through.

        Estimates are already distance-sorted, matching the scalar policy's
        output order, so no re-sort is needed.
        """
        ego_speed = self.gps_speed
        obstacles = []
        for distance, lateral, velocity, lat_vel, _track_id, _actor_id, kind in estimates:
            speed = ego_speed + velocity
            if not speed > 0.0:
                speed = 0.0
            obstacles.append((kind, distance, lateral, speed, lat_vel))
        return obstacles

    def _fuse_lidar_only(self, estimates: List[tuple]) -> List[tuple]:
        """Port of ``LidarOnlyFusion``: the world model from LiDAR alone."""
        tracks = self.lidar_only_tracks
        lidar = self.last_lidar
        if lidar is not None:
            for track in tracks.values():
                track.scans_since += 1
            for distance, lateral, actor_id, kind, speed in lidar:
                track = tracks.get(actor_id)
                if track is None:
                    track = _LidarOnly(kind, actor_id)
                    tracks[actor_id] = track
                track.scans_seen += 1
                track.scans_since = 0
                track.distance = distance
                track.lateral = lateral
                track.speed = speed
                track.kind = kind
                if not track.registered and track.scans_seen >= self.fused_reg:
                    track.registered = True
            stale = [
                actor_id
                for actor_id, track in tracks.items()
                if track.scans_since > self.lidar_timeout
            ]
            for actor_id in stale:
                del tracks[actor_id]

        obstacles = []
        for track in tracks.values():
            if track.scans_since == 0:
                lat_history = track.lateral_history
                if lat_history and abs(track.lateral - lat_history[-1]) > 1.0:
                    lat_history.clear()
                    track.lateral_velocity = 0.0
                lat_history.append(track.lateral)
                if len(lat_history) > self.baseline_p1:
                    del lat_history[: -self.baseline_p1]
                n = len(lat_history)
                if n >= 2:
                    raw = (lat_history[-1] - lat_history[0]) / ((n - 1) * self.frame_dt)
                else:
                    raw = 0.0
                track.lateral_velocity = (
                    self.om_falpha * track.lateral_velocity + self.falpha * raw
                )
            else:
                track.lateral_velocity *= 0.8
            if track.registered:
                obstacles.append((track.kind, track.distance, track.lateral,
                                  track.speed, track.lateral_velocity))
        obstacles.sort(key=_second)
        return obstacles

    # ------------------------------------------------------------------ #
    # Ground truth, collision, halt, result
    # ------------------------------------------------------------------ #

    def _current_target_id(self) -> Optional[int]:
        if self.attacker is not None and self.attacker.target_actor_id is not None:
            return self.attacker.target_actor_id
        return self.scenario_target_id

    def _true_delta(self) -> float:
        """Port of ``ground_truth_delta`` over the lane's plain-float state."""
        target_id = self._current_target_id()
        candidate = None
        if target_id is not None:
            for actor in self.actors:
                if actor.actor_id == target_id:
                    if actor.x > self.ego_x:
                        margin = 0.3 + actor.half_w
                        if self.lane_lo - margin <= actor.y <= self.lane_hi + margin:
                            candidate = actor
                    break
        if candidate is None:
            ego_front = self.ego_x + self.ego_half_len
            best_x = 0.0
            for actor in self.actors:
                if actor.x > ego_front:
                    margin = 0.3 + actor.half_w
                    if self.lane_lo - margin <= actor.y <= self.lane_hi + margin:
                        if candidate is None or actor.x < best_x:
                            candidate = actor
                            best_x = actor.x
        if candidate is None:
            return float("inf")
        gap = abs(candidate.x - self.ego_x) - (self.ego_len + candidate.length) / 2.0
        sp = self.ego_speed
        if not sp > 0.0:
            sp = 0.0
        return gap - (sp * self.sim_reaction + sp * sp / (2.0 * self.sim_comfort))

    def _check_collision(self) -> Optional[int]:
        ego_x = self.ego_x
        ego_y = self.ego_y
        for actor in self.actors:
            if abs(actor.x - ego_x) - (self.ego_len + actor.length) / 2.0 <= 0.0:
                if abs(actor.y - ego_y) <= (self.ego_w + actor.width) / 2.0:
                    return actor.actor_id
        return None

    def _halt(self, collision_actor: int, perceived: float) -> None:
        """Collision halt: impact trace entry + COLLISION/SIMULATION_HALTED."""
        self.events.record_step(
            true_delta=self._true_delta(),
            perceived_delta=perceived,
            ego_speed=self.ego_speed,
        )
        self.events.record(SimulationEvent(
            kind=EventKind.COLLISION,
            time_s=self.time_s,
            step_index=self.step,
            details={"actor_id": float(collision_actor)},
        ))
        self.events.record(SimulationEvent(
            kind=EventKind.SIMULATION_HALTED, time_s=self.time_s, step_index=self.step
        ))
        self.halted = True
        self._finish()

    def _finish(self) -> None:
        if self.attack_was_active:
            self.events.record(SimulationEvent(
                kind=EventKind.ATTACK_ENDED, time_s=self.time_s, step_index=self.step
            ))
        for track in self.tracks.values():
            self.pool.free(track.row)
        self.tracks.clear()
        self.observed = []
        self.done = True

    def result(self) -> SimulationResult:
        ego = ActorSnapshot(
            actor_id=self.ego_id,
            kind=ActorKind.VEHICLE,
            position=Vec2(self.ego_x, self.ego_y),
            velocity=Vec2(self.ego_speed, 0.0),
            dimensions=self.ego_dims,
            is_ego=True,
        )
        actors = tuple(
            ActorSnapshot(
                actor_id=actor.actor_id,
                kind=actor.kind,
                position=Vec2(actor.x, actor.y),
                velocity=Vec2(actor.vx, actor.vy),
                dimensions=actor.dims,
            )
            for actor in self.actors
        )
        snapshot = GroundTruthSnapshot(
            time_s=self.time_s, step_index=self.step, ego=ego, actors=actors
        )
        return SimulationResult(
            scenario_id=self.scenario_id,
            events=self.events,
            steps_executed=self.step,
            duration_s=self.time_s,
            halted_on_collision=self.halted,
            final_snapshot=snapshot,
            target_actor_id=self._current_target_id(),
        )


# --------------------------------------------------------------------------- #
# The lockstep driver
# --------------------------------------------------------------------------- #


class BatchSimulator:
    """Advances N independently-seeded runs in lockstep within one process.

    Each step runs four phases: (A) one stacked Kalman predict over every
    live track of every active lane; (B) per-lane sensing, attack, detection,
    and association (collecting matched measurements); (C) one stacked Kalman
    update plus a stacked gather of the observed track states; (D) per-lane
    world-estimation, fusion, planning, actuation, and world advance.  Lanes
    that halt (collision) or exhaust their duration drop out of the active
    set; the loop ends when no lane is active.
    """

    def __init__(self, specs: Sequence[BatchRunSpec],
                 config: SimulationConfig | None = None):
        if not specs:
            raise ValueError("BatchSimulator needs at least one run spec")
        self.config = config or SimulationConfig()
        self._pool = _KalmanPool()
        self._lanes = [_Lane(spec, self.config, self._pool) for spec in specs]

    def run(self) -> List[SimulationResult]:
        """Execute all lanes to completion; results are in spec order."""
        pool = self._pool
        active = [lane for lane in self._lanes if not lane.done]
        while active:
            # Phase A: stacked predict for every live track.
            refs: List[_Track] = []
            rows: List[int] = []
            for lane in active:
                for track in lane.tracks.values():
                    refs.append(track)
                    rows.append(track.row)
            if rows:
                states = pool.predict(np.array(rows, dtype=np.intp)).tolist()
                for track, state in zip(refs, states):
                    track.pred_cx = state[0]
                    track.pred_cy = state[1]
                    w = state[2]
                    h = state[3]
                    track.pred_w = w if w > 1.0 else 1.0
                    track.pred_h = h if h > 1.0 else 1.0

            # Phase B: per-lane sensing/attack/detection/association.
            upd_rows: List[int] = []
            upd_z: List[tuple] = []
            for lane in active:
                lane.pre_step(upd_rows, upd_z)

            # Phase C: stacked update, then refresh the observed boxes.
            if upd_rows:
                pool.update(np.array(upd_rows, dtype=np.intp), np.array(upd_z))
            refs = []
            rows = []
            for lane in active:
                for track in lane.observed:
                    refs.append(track)
                    rows.append(track.row)
            if rows:
                states = pool.states[np.array(rows, dtype=np.intp)].tolist()
                for track, state in zip(refs, states):
                    track.cx = state[0]
                    track.cy = state[1]
                    w = state[2]
                    h = state[3]
                    track.w = w if w > 1.0 else 1.0
                    track.h = h if h > 1.0 else 1.0

            # Phase D: per-lane estimation/fusion/planning/actuation/world.
            for lane in active:
                lane.post_step()
            active = [lane for lane in active if not lane.done]
        return [lane.result() for lane in self._lanes]

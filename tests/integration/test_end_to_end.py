"""End-to-end integration tests: golden runs and attacked runs through the simulator.

These tests exercise the full stack (scenario -> sensors -> perception -> ADS ->
vehicle dynamics) exactly as the experiment campaigns do, and verify the
paper's qualitative behaviours:

* golden (unattacked) runs complete without emergency braking or accidents;
* a well-timed Disappear attack on the DS-2 pedestrian creates a safety hazard;
* a Move_In attack on the DS-3 parked vehicle forces emergency braking without
  any real obstacle in the lane;
* the baseline random attacker rarely achieves anything.
"""

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.training import ScriptedAttacker
from repro.experiments.campaign import build_ads_agent
from repro.sim.events import EventKind
from repro.sim.scenarios import ScenarioVariation, build_scenario
from repro.sim.simulator import Simulator


def run_scenario(scenario_id, attacker_factory=None, seed=7, variation=None):
    scenario = build_scenario(scenario_id, variation or ScenarioVariation.nominal())
    ads = build_ads_agent(scenario, np.random.default_rng(seed))
    attacker = attacker_factory(scenario) if attacker_factory else None
    simulator = Simulator(
        scenario, ads, attacker=attacker, rng=np.random.default_rng(seed + 1)
    )
    return simulator.run(), attacker, scenario


class TestGoldenRuns:
    @pytest.mark.parametrize("scenario_id", ["DS-1", "DS-2", "DS-3", "DS-4", "DS-5"])
    def test_no_hazard_without_attack(self, scenario_id):
        result, _, _ = run_scenario(scenario_id)
        assert not result.emergency_braking_occurred
        assert not result.collision_occurred
        assert not result.accident_occurred()

    def test_ds1_ev_settles_behind_lead_vehicle(self):
        result, _, scenario = run_scenario("DS-1")
        final = result.final_snapshot
        lead = final.actor_by_id(scenario.target_actor_id)
        gap = final.ego.longitudinal_gap_to(lead)
        # The EV follows roughly 15-30 m behind at approximately the TV speed.
        assert 12.0 < gap < 32.0
        assert final.ego.speed == pytest.approx(lead.speed, abs=1.5)

    def test_ds2_ev_keeps_safe_distance_from_crossing_pedestrian(self):
        result, _, _ = run_scenario("DS-2")
        assert result.min_true_delta_from_attack() > 4.0

    def test_ds4_ev_slows_near_pedestrian(self):
        result, _, _ = run_scenario("DS-4")
        # The caution rule caps the speed near the walking pedestrian (paper: 35 kph).
        assert min(result.events.ego_speed_trace) < 11.0

    def test_traces_recorded_every_step(self):
        result, _, _ = run_scenario("DS-1")
        assert len(result.events.true_delta_trace) == result.steps_executed
        assert len(result.events.ego_speed_trace) == result.steps_executed


class TestScriptedAttacks:
    def test_disappear_attack_on_pedestrian_creates_hazard(self):
        def attacker_factory(scenario):
            return ScriptedAttacker(
                scenario.road,
                AttackVector.DISAPPEAR,
                delta_inject_m=36.0,
                k_frames=28,
                rng=np.random.default_rng(2),
            )

        result, attacker, _ = run_scenario("DS-2", attacker_factory)
        assert attacker.record.launched
        assert result.accident_occurred()
        assert result.min_true_delta_from_attack() < 4.0
        assert result.events.has_event(EventKind.ATTACK_STARTED)

    def test_move_in_attack_on_parked_vehicle_forces_emergency_braking(self):
        def attacker_factory(scenario):
            return ScriptedAttacker(
                scenario.road,
                AttackVector.MOVE_IN,
                delta_inject_m=6.0,
                k_frames=40,
                rng=np.random.default_rng(3),
            )

        result, attacker, _ = run_scenario("DS-3", attacker_factory)
        assert attacker.record.launched
        assert result.emergency_braking_occurred
        # There is no real obstacle in the lane, so no accident results.
        assert not result.collision_occurred
        assert result.min_true_delta_from_attack() == float("inf")

    def test_disappear_attack_on_lead_vehicle_reduces_safety_potential(self):
        def attacker_factory(scenario):
            return ScriptedAttacker(
                scenario.road,
                AttackVector.DISAPPEAR,
                delta_inject_m=12.0,
                k_frames=58,
                rng=np.random.default_rng(4),
            )

        golden, _, _ = run_scenario("DS-1")
        attacked, attacker, _ = run_scenario("DS-1", attacker_factory)
        assert attacker.record.launched
        assert attacked.min_true_delta_from_attack() < golden.min_true_delta_from_attack()

    def test_attack_start_and_end_events_logged(self):
        def attacker_factory(scenario):
            return ScriptedAttacker(
                scenario.road,
                AttackVector.DISAPPEAR,
                delta_inject_m=36.0,
                k_frames=20,
                rng=np.random.default_rng(5),
            )

        result, attacker, _ = run_scenario("DS-2", attacker_factory)
        started = result.events.first_event(EventKind.ATTACK_STARTED)
        ended = result.events.first_event(EventKind.ATTACK_ENDED)
        if attacker.record.launched and ended is not None:
            assert started.step_index < ended.step_index
            assert (ended.step_index - started.step_index) == pytest.approx(20, abs=3)

    def test_stealth_bound_respected_by_scripted_attacker(self):
        def attacker_factory(scenario):
            return ScriptedAttacker(
                scenario.road,
                AttackVector.DISAPPEAR,
                delta_inject_m=36.0,
                k_frames=28,
                rng=np.random.default_rng(6),
            )

        _, attacker, _ = run_scenario("DS-2", attacker_factory)
        # 28 consecutive perturbed pedestrian frames stay within the 99th
        # percentile of the characterized misdetection distribution (31).
        assert attacker.record.frames_perturbed <= 31


class TestSimulationResultApi:
    def test_accident_criterion_uses_threshold(self):
        result, _, _ = run_scenario("DS-1")
        assert not result.accident_occurred(accident_delta_m=4.0)
        # With an absurdly generous threshold every run is an "accident".
        assert result.accident_occurred(accident_delta_m=100.0)

    def test_target_actor_defaults_to_scenario_target(self):
        result, _, scenario = run_scenario("DS-1")
        assert result.target_actor_id == scenario.target_actor_id

"""Axis-aligned bounding boxes and Intersection-over-Union.

Bounding boxes are the lingua franca of the perception stack: the simulated
camera projects world objects into image-plane boxes, the simulated detector
emits noisy boxes, the Kalman trackers maintain box states, and the Hungarian
matcher associates the two sets using IoU (paper §II-B, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BoundingBox", "iou"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box parameterized by centre, width, and height.

    Coordinates are in pixels when the box lives on the image plane and in
    metres when it lives in the world frame; the class itself is unit-agnostic.
    """

    cx: float
    cy: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"bounding box dimensions must be non-negative, got "
                f"width={self.width}, height={self.height}"
            )

    @property
    def x_min(self) -> float:
        return self.cx - self.width / 2.0

    @property
    def x_max(self) -> float:
        return self.cx + self.width / 2.0

    @property
    def y_min(self) -> float:
        return self.cy - self.height / 2.0

    @property
    def y_max(self) -> float:
        return self.cy + self.height / 2.0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.cx, self.cy)

    def translated(self, dx: float, dy: float) -> "BoundingBox":
        """Return a copy shifted by ``(dx, dy)``."""
        return replace(self, cx=self.cx + dx, cy=self.cy + dy)

    def scaled(self, factor: float) -> "BoundingBox":
        """Return a copy with width and height scaled by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return replace(self, width=self.width * factor, height=self.height * factor)

    def intersection_area(self, other: "BoundingBox") -> float:
        """Area of overlap with ``other`` (zero when disjoint)."""
        overlap_w = min(self.x_max, other.x_max) - max(self.x_min, other.x_min)
        overlap_h = min(self.y_max, other.y_max) - max(self.y_min, other.y_min)
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            return 0.0
        return overlap_w * overlap_h

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over Union with ``other``."""
        return iou(self, other)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether the point ``(x, y)`` lies inside (or on) the box."""
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    @staticmethod
    def from_corners(x_min: float, y_min: float, x_max: float, y_max: float) -> "BoundingBox":
        """Construct a box from corner coordinates."""
        if x_max < x_min or y_max < y_min:
            raise ValueError("max corner must not be smaller than min corner")
        return BoundingBox(
            cx=(x_min + x_max) / 2.0,
            cy=(y_min + y_max) / 2.0,
            width=x_max - x_min,
            height=y_max - y_min,
        )


def iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection over Union of two boxes, in [0, 1].

    Defined as (area of overlap) / (area of union); two zero-area boxes have
    IoU 0 by convention.
    """
    inter = a.intersection_area(b)
    union = a.area + b.area - inter
    if union <= 0.0:
        return 0.0
    return inter / union

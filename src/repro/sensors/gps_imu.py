"""GPS/IMU localization sensor.

Provides the ego pose and speed with small Gaussian noise.  The attack model
does not touch localization (the CAN bus and control path are assumed
protected, paper §III-B), but the planner consumes the estimated ego speed, so
the sensor exists to close the loop realistically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec2
from repro.sim.world import GroundTruthSnapshot

__all__ = ["EgoPoseEstimate", "GpsImuSensor"]


@dataclass(frozen=True)
class EgoPoseEstimate:
    """Estimated ego pose and kinematics."""

    time_s: float
    position: Vec2
    speed_mps: float
    acceleration_mps2: float


class GpsImuSensor:
    """Ego localization with configurable Gaussian noise."""

    def __init__(
        self,
        position_noise_m: float = 0.05,
        speed_noise_mps: float = 0.05,
        rng: np.random.Generator | None = None,
    ):
        if position_noise_m < 0 or speed_noise_mps < 0:
            raise ValueError("noise levels must be non-negative")
        self.position_noise_m = position_noise_m
        self.speed_noise_mps = speed_noise_mps
        self._rng = rng if rng is not None else np.random.default_rng()
        self._last_speed: float | None = None
        self._last_time: float | None = None

    def measure(self, snapshot: GroundTruthSnapshot) -> EgoPoseEstimate:
        """Produce a pose estimate from the ground-truth snapshot."""
        ego = snapshot.ego
        position = Vec2(
            ego.position.x + self._rng.normal(0.0, self.position_noise_m),
            ego.position.y + self._rng.normal(0.0, self.position_noise_m),
        )
        speed = max(0.0, ego.speed + self._rng.normal(0.0, self.speed_noise_mps))
        if self._last_speed is None or self._last_time is None or snapshot.time_s <= self._last_time:
            acceleration = 0.0
        else:
            acceleration = (speed - self._last_speed) / (snapshot.time_s - self._last_time)
        self._last_speed = speed
        self._last_time = snapshot.time_s
        return EgoPoseEstimate(
            time_s=snapshot.time_s,
            position=position,
            speed_mps=speed,
            acceleration_mps2=acceleration,
        )

"""Micro-benchmark: fusion-policy dispatch cost in the batch engine.

The fusion-policy refactor routed every batch lane's fusion step through
``_fuse_impl`` (bound per lane from the agent's policy) and widened the
per-frame estimate tuples to carry track/actor identity for the new policy
ports.  This benchmark pins that the default ``late`` policy still clears
the batch engine's >= 5x runs/sec bound over the scalar loop at N=64 — the
refactor must be free on the hot path — and records the throughput of the
other built-in policies for the BENCH output.

Like the other benchmarks, ``REPRO_BENCH_STRICT=0`` demotes the assertion
to a recorded metric for noisy shared runners.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

import numpy as np
import pytest

from repro.experiments.campaign import build_ads_agent
from repro.perception.fusion import FusionConfig, list_fusion_policies
from repro.sim.batch import BatchRunSpec, BatchSimulator
from repro.sim.scenarios import build_scenario
from repro.sim.simulator import Simulator

_WIDTH = 64
_MIN_SPEEDUP = 5.0
#: Scalar runs timed to estimate the baseline (full 64 would dominate wall time).
_SCALAR_SAMPLE = 8


def _run_setups(
    n: int, policy: str
) -> List[Tuple[object, object, np.random.Generator]]:
    """N independently-seeded DS-1 runs under one fusion policy."""
    fusion = FusionConfig(policy=policy)
    setups = []
    for index in range(n):
        rng = np.random.default_rng(
            np.random.SeedSequence([424242, index]).generate_state(1)[0]
        )
        scenario = build_scenario("DS-1")
        ads = build_ads_agent(
            scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1))), fusion=fusion
        )
        int(rng.integers(0, 2**31 - 1))  # attacker-slot draw, campaign draw order
        sim_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        setups.append((scenario, ads, sim_rng))
    return setups


def _batch_seconds(policy: str) -> float:
    best = float("inf")
    for _ in range(2):
        specs = [
            BatchRunSpec(scenario=scenario, ads=ads, rng=rng)
            for scenario, ads, rng in _run_setups(_WIDTH, policy)
        ]
        start = time.perf_counter()
        results = BatchSimulator(specs).run()
        best = min(best, time.perf_counter() - start)
    assert len(results) == _WIDTH
    return best


def test_bench_fusion_policy_throughput():
    scalar_s = float("inf")
    for _ in range(2):
        setups = _run_setups(_SCALAR_SAMPLE, "late")
        start = time.perf_counter()
        for scenario, ads, rng in setups:
            Simulator(scenario, ads, rng=rng).run()
        scalar_s = min(scalar_s, time.perf_counter() - start)
    scalar_per_run = scalar_s / _SCALAR_SAMPLE
    print(f"\nscalar late          : {1.0 / scalar_per_run:8.1f} runs/sec")

    late_speedup = None
    for policy in list_fusion_policies():
        per_run = _batch_seconds(policy) / _WIDTH
        speedup = scalar_per_run / per_run
        print(
            f"batch {policy:<15s}: {1.0 / per_run:8.1f} runs/sec "
            f"(vs scalar late {speedup:.2f}x)"
        )
        if policy == "late":
            late_speedup = speedup

    # REPRO_BENCH_STRICT=0 demotes the bound to a recorded metric.
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict:
        assert late_speedup >= _MIN_SPEEDUP, (
            f"late-policy batch engine regressed below {_MIN_SPEEDUP}x the "
            f"scalar loop at N={_WIDTH}: measured {late_speedup:.2f}x"
        )
    elif late_speedup < _MIN_SPEEDUP:
        pytest.skip(
            f"non-strict mode: measured {late_speedup:.2f}x "
            f"(< {_MIN_SPEEDUP}x) at N={_WIDTH}"
        )

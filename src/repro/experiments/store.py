"""Durable, append-only, content-addressed experiment store.

The paper's evaluation is thousands of Monte-Carlo simulation runs over a
(scenario x attack-vector x variation) grid.  Before this module, each
:class:`~repro.experiments.results.CampaignResult` existed only as an opaque
pickle inside :class:`~repro.runtime.cache.ArtifactCache`: there was no
queryable record of individual runs and an interrupted campaign restarted
from zero.  :class:`ExperimentStore` fixes both:

* every simulation run flattens into a :class:`RunRecord` — campaign config
  hash, per-run seed, the exact :class:`~repro.sim.scenarios.ScenarioVariation`
  instantiated, the simulation events, the per-step safety-potential traces,
  and the outcome flags of the paper's evaluation;
* records are *content-addressed* by the campaign's config hash
  (SHA-256 over the canonical :func:`~repro.runtime.cache.encode_key`
  encoding of ``CampaignConfig.cache_key()``) and *append-only*: scalars go
  to one JSONL line per run under ``runs/<hash>.jsonl`` and the δ-traces to
  ``traces/<hash>/<run_index>.npz``;
* appends are crash-safe and multi-process-safe: the NPZ is published with a
  temp-file + :func:`os.replace` rename, and the JSONL line is written under
  an exclusive ``flock`` in a single ``write`` call, so concurrent writers
  never corrupt or interleave records;
* a campaign *manifest* (the JSON-serialized config) is stored next to the
  records, which is what makes ``repro-campaign resume`` possible without
  re-specifying the campaign on the command line.

Store layout::

    <root>/
      manifests/<config_hash>.json      # the CampaignConfig, JSON-serialized
      manifests/datasets/<collection_hash>.json   # dataset-collection provenance
      runs/<config_hash>.jsonl          # one line per completed run
      traces/<config_hash>/<run>.npz    # per-step δ / speed traces
      datasets/<collection_hash>.jsonl  # one line per collected training grid point
      models/<model_hash>/              # a persisted predictor + registry.json
      models/index/<spec_hash>.json     # training-spec hash -> model hash
      searches/<search_hash>/           # falsification-search manifest,
                                        #   state.json checkpoint, iterations.jsonl

The *dataset* records are the second record kind: the safety-hijacker
training pipeline streams each ``(delta_inject, k)`` grid point's collected
sample batch into ``datasets/<collection_hash>.jsonl`` as it completes, so an
interrupted collection resumes by skipping the stored point indices — the
same crash/resume discipline as campaign runs.  The *model registry* is
content-addressed: a trained predictor lives under the SHA-256 of its
(dataset content hash, training config) pair, and ``models/index/`` maps the
hash of the *specification* (scenario, vector, grids, seeds, epochs) to that
model so campaign processes can load a pretrained oracle without ever
touching the dataset.

The load/query/aggregate API (:meth:`ExperimentStore.load_records`,
:meth:`ExperimentStore.iter_records`, :meth:`ExperimentStore.campaign_result`,
:meth:`ExperimentStore.summaries`) is what the table and figure generators
consume instead of recomputing from in-memory lists.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.attack_vectors import AttackVector
from repro.experiments.results import CampaignResult, RunResult
from repro.runtime.cache import atomic_publish, encode_key
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation

try:  # pragma: no cover - fcntl is always present on the Linux CI targets
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - type hints only (campaign imports us)
    from repro.experiments.campaign import CampaignConfig

__all__ = [
    "RunRecord",
    "RunOutcome",
    "OutcomeSummary",
    "AggregateBatch",
    "ExperimentStore",
    "config_hash",
    "records_equal",
]

#: Bump when the JSONL schema changes incompatibly; readers reject newer majors.
SCHEMA_VERSION = 1

#: One recorded simulation event: (kind value, step index, time, details).
EventTuple = Tuple[str, int, float, Dict[str, float]]


def config_hash(config: "CampaignConfig") -> str:
    """Content address of a campaign: SHA-256 of its canonical cache key.

    Two configs that could produce different results never share a hash (the
    hash covers every field of ``cache_key()``), and the same logical config
    hashes identically in every process and session.
    """
    return hashlib.sha256(encode_key(config.cache_key()).encode("utf-8")).hexdigest()


@dataclass(frozen=True, eq=False)
class RunRecord:
    """One simulation run, flattened for durable storage.

    ``result`` carries the paper's per-run evaluation fields; the record adds
    the provenance (config hash, instantiated variation) and the raw material
    (events, traces) needed to regenerate figures without re-simulating.
    Equality is deliberately not synthesized (the traces are arrays); use
    :func:`records_equal` in tests.
    """

    config_hash: str
    campaign_id: str
    run_index: int
    #: The derived per-run seed (``SeedSequence([campaign_seed, run_index])``).
    seed: int
    #: The exact initial-condition variation this run instantiated.
    variation: ScenarioVariation
    result: RunResult
    steps_executed: int
    duration_s: float
    halted_on_collision: bool
    #: Simulation events as (kind, step_index, time_s, details) tuples.
    events: Tuple[EventTuple, ...]
    #: Ground-truth safety potential per step.
    true_delta_trace: np.ndarray
    #: Safety potential as perceived by the ADS per step.
    perceived_delta_trace: np.ndarray
    #: Ego speed per step.
    ego_speed_trace: np.ndarray

    @property
    def scenario_id(self) -> str:
        return self.result.scenario_id

    @property
    def attacker_kind(self) -> str:
        return self.result.attacker_kind

    # ------------------------------------------------------------------ #
    # JSON (de)serialization — traces travel separately as NPZ
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict[str, object]:
        """The scalar payload of this record (everything but the traces)."""
        result = dataclasses.asdict(self.result)
        result["vector"] = self.result.vector.name if self.result.vector else None
        result["target_kind"] = (
            self.result.target_kind.value if self.result.target_kind else None
        )
        return {
            "schema": SCHEMA_VERSION,
            "config_hash": self.config_hash,
            "campaign_id": self.campaign_id,
            "run_index": self.run_index,
            "seed": self.seed,
            "variation": dataclasses.asdict(self.variation),
            "result": result,
            "steps_executed": self.steps_executed,
            "duration_s": self.duration_s,
            "halted_on_collision": self.halted_on_collision,
            "events": [list(event) for event in self.events],
        }

    @staticmethod
    def from_json_dict(
        payload: Dict[str, object],
        true_delta_trace: np.ndarray,
        perceived_delta_trace: np.ndarray,
        ego_speed_trace: np.ndarray,
    ) -> "RunRecord":
        schema = int(payload.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"run record written by a newer schema ({schema} > {SCHEMA_VERSION})"
            )
        result_payload = dict(payload["result"])  # type: ignore[arg-type]
        vector = result_payload["vector"]
        result_payload["vector"] = AttackVector[vector] if vector else None
        target_kind = result_payload["target_kind"]
        result_payload["target_kind"] = ActorKind(target_kind) if target_kind else None
        return RunRecord(
            config_hash=str(payload["config_hash"]),
            campaign_id=str(payload["campaign_id"]),
            run_index=int(payload["run_index"]),
            seed=int(payload["seed"]),
            variation=ScenarioVariation(**payload["variation"]),  # type: ignore[arg-type]
            result=RunResult(**result_payload),
            steps_executed=int(payload["steps_executed"]),
            duration_s=float(payload["duration_s"]),
            halted_on_collision=bool(payload["halted_on_collision"]),
            events=tuple(
                (str(kind), int(step), float(time_s), dict(details))
                for kind, step, time_s, details in payload["events"]  # type: ignore[union-attr]
            ),
            true_delta_trace=np.asarray(true_delta_trace, dtype=np.float64),
            perceived_delta_trace=np.asarray(perceived_delta_trace, dtype=np.float64),
            ego_speed_trace=np.asarray(ego_speed_trace, dtype=np.float64),
        )


def _floats_equal(left: float, right: float) -> bool:
    if isinstance(left, float) and np.isnan(left):
        return isinstance(right, float) and np.isnan(right)
    return left == right


def records_equal(left: RunRecord, right: RunRecord) -> bool:
    """Field-wise equality with NaN == NaN (the test-suite comparator)."""
    for name in ("config_hash", "campaign_id", "run_index", "seed", "variation",
                 "steps_executed", "halted_on_collision", "events"):
        if getattr(left, name) != getattr(right, name):
            return False
    if not _floats_equal(left.duration_s, right.duration_s):
        return False
    for name in RunResult.__dataclass_fields__:
        if not _floats_equal(getattr(left.result, name), getattr(right.result, name)):
            return False
    for name in ("true_delta_trace", "perceived_delta_trace", "ego_speed_trace"):
        if not np.array_equal(getattr(left, name), getattr(right, name), equal_nan=True):
            return False
    return True


@dataclass(frozen=True)
class RunOutcome:
    """The outcome scalars of one stored run — the aggregation fast path.

    A :class:`RunRecord` parse reconstructs the full variation, result, and
    event payload; an outcome keeps only the fields the search loop and the
    summary tables consume, so scanning thousands of JSONL lines per search
    iteration stays cheap.
    """

    run_index: int
    campaign_id: str
    vector: Optional[AttackVector]
    attack_launched: bool
    emergency_braking: bool
    accident: bool
    collision: bool
    #: The shared §VI-C rule (Move_In → spurious braking, else accident).
    success: bool
    duration_s: float
    min_true_delta_m: float

    @staticmethod
    def from_json_dict(payload: Dict[str, object]) -> "RunOutcome":
        from repro.experiments.metrics import attack_succeeded

        result = payload["result"]
        vector_name = result["vector"]  # type: ignore[index]
        vector = AttackVector[str(vector_name)] if vector_name else None
        outcome = RunOutcome(
            run_index=int(payload["run_index"]),
            campaign_id=str(payload["campaign_id"]),
            vector=vector,
            attack_launched=bool(result["attack_launched"]),  # type: ignore[index]
            emergency_braking=bool(result["emergency_braking"]),  # type: ignore[index]
            accident=bool(result["accident"]),  # type: ignore[index]
            collision=bool(result["collision"]),  # type: ignore[index]
            success=False,
            duration_s=float(payload["duration_s"]),
            min_true_delta_m=float(result["min_true_delta_m"]),  # type: ignore[index]
        )
        return dataclasses.replace(outcome, success=attack_succeeded(outcome))


@dataclass(frozen=True)
class OutcomeSummary:
    """Aggregate outcome statistics of one campaign's stored runs."""

    config_hash: str
    campaign_id: str
    n_runs: int
    launched: int
    emergency_braking: int
    accidents: int
    collisions: int
    successes: int
    #: Sum of ``duration_s`` over the successful runs (time-to-violation mass).
    sum_success_time_s: float
    #: Count / sum over runs whose min ground-truth δ is finite.
    finite_delta_runs: int
    sum_min_delta_m: float
    min_min_delta_m: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.n_runs if self.n_runs else 0.0

    @staticmethod
    def from_outcomes(
        config_hash_: str, outcomes: Sequence[RunOutcome]
    ) -> "OutcomeSummary":
        finite = [o.min_true_delta_m for o in outcomes if np.isfinite(o.min_true_delta_m)]
        return OutcomeSummary(
            config_hash=config_hash_,
            campaign_id=outcomes[0].campaign_id if outcomes else "",
            n_runs=len(outcomes),
            launched=sum(o.attack_launched for o in outcomes),
            emergency_braking=sum(o.emergency_braking for o in outcomes),
            accidents=sum(o.accident for o in outcomes),
            collisions=sum(o.collision for o in outcomes),
            successes=sum(o.success for o in outcomes),
            sum_success_time_s=float(sum(o.duration_s for o in outcomes if o.success)),
            finite_delta_runs=len(finite),
            sum_min_delta_m=float(sum(finite)),
            min_min_delta_m=float(min(finite)) if finite else float("nan"),
        )


@dataclass
class AggregateBatch:
    """The result of one :meth:`ExperimentStore.aggregate` scan.

    ``outcomes`` maps config hash -> {run_index -> :class:`RunOutcome`}
    (last write wins, like :meth:`ExperimentStore.load_records`);
    ``cursor`` maps config hash -> the byte offset up to which the JSONL log
    has been consumed.  Feed the cursor back as ``since`` on the next call to
    read only lines appended in between — the incremental path that keeps a
    long falsification search from re-scanning every line per iteration.
    Merging a later batch into an earlier one is ``merge`` (per-run
    last-write-wins, cursor advanced).
    """

    outcomes: Dict[str, Dict[int, RunOutcome]]
    cursor: Dict[str, int]

    def merge(self, newer: "AggregateBatch") -> None:
        """Fold a later incremental batch into this one in place."""
        for config_hash_, by_index in newer.outcomes.items():
            self.outcomes.setdefault(config_hash_, {}).update(by_index)
        self.cursor.update(newer.cursor)

    def summary(self, config_hash_: str) -> OutcomeSummary:
        """Summarize one campaign's accumulated outcomes."""
        by_index = self.outcomes.get(config_hash_, {})
        return OutcomeSummary.from_outcomes(
            config_hash_, [by_index[index] for index in sorted(by_index)]
        )

    def summaries(self) -> Dict[str, OutcomeSummary]:
        """Per-campaign summaries over every hash this batch has seen."""
        return {config_hash_: self.summary(config_hash_) for config_hash_ in self.outcomes}


class ExperimentStore:
    """A durable run store rooted at a directory (see module docstring).

    The store is safe to share between the worker processes of a
    :class:`~repro.runtime.executor.ParallelExecutor` and between concurrent
    campaign processes: all writes are atomic appends or atomic renames.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def _runs_path(self, config_hash_: str) -> Path:
        return self.root / "runs" / f"{config_hash_}.jsonl"

    def _traces_dir(self, config_hash_: str) -> Path:
        return self.root / "traces" / config_hash_

    def _trace_path(self, config_hash_: str, run_index: int) -> Path:
        return self._traces_dir(config_hash_) / f"{run_index:06d}.npz"

    def _manifest_path(self, config_hash_: str) -> Path:
        return self.root / "manifests" / f"{config_hash_}.json"

    def _dataset_path(self, collection_hash_: str) -> Path:
        return self.root / "datasets" / f"{collection_hash_}.jsonl"

    def _dataset_manifest_path(self, collection_hash_: str) -> Path:
        return self.root / "manifests" / "datasets" / f"{collection_hash_}.json"

    def model_dir(self, model_hash_: str) -> Path:
        """The directory of a registered model (may not exist yet)."""
        return self.root / "models" / model_hash_

    def _model_index_path(self, spec_hash_: str) -> Path:
        return self.root / "models" / "index" / f"{spec_hash_}.json"

    def search_dir(self, search_hash_: str) -> Path:
        """The directory of a falsification search (may not exist yet)."""
        return self.root / "searches" / search_hash_

    def _search_manifest_path(self, search_hash_: str) -> Path:
        return self.search_dir(search_hash_) / "manifest.json"

    def _search_state_path(self, search_hash_: str) -> Path:
        return self.search_dir(search_hash_) / "state.json"

    def _search_iterations_path(self, search_hash_: str) -> Path:
        return self.search_dir(search_hash_) / "iterations.jsonl"

    # ------------------------------------------------------------------ #
    # Append path
    # ------------------------------------------------------------------ #

    def append(self, record: RunRecord) -> None:
        """Durably record one completed run (multi-process safe).

        The traces are published first (fsynced atomic rename), then the
        JSONL line is appended under an exclusive lock — a crash between the
        two steps leaves an orphaned NPZ, never a dangling JSONL line, so
        every line in the log always has its traces.  If an earlier writer
        died mid-append and left a torn tail without a newline, the next
        append starts on a fresh line rather than gluing onto (and thereby
        hiding) the torn one.  Re-appending a run index is allowed
        (crash/retry overlap); readers keep the last occurrence.
        """
        self._write_traces(record)
        self._append_jsonl(self._runs_path(record.config_hash), record.to_json_dict())

    @staticmethod
    def _append_jsonl(path: Path, payload: Dict[str, object]) -> None:
        """Append one JSON line to a log (flock-exclusive, single write, fsynced)."""
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        with os.fdopen(fd, "r+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                size = handle.seek(0, os.SEEK_END)
                prefix = b""
                if size:
                    handle.seek(size - 1)
                    if handle.read(1) != b"\n":
                        prefix = b"\n"
                # One write call; O_APPEND positions it at the current end.
                handle.write(prefix + line.encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _write_traces(self, record: RunRecord) -> None:
        def write(handle) -> None:
            np.savez_compressed(
                handle,
                true_delta=np.asarray(record.true_delta_trace, dtype=np.float64),
                perceived_delta=np.asarray(
                    record.perceived_delta_trace, dtype=np.float64
                ),
                ego_speed=np.asarray(record.ego_speed_trace, dtype=np.float64),
            )

        atomic_publish(
            self._trace_path(record.config_hash, record.run_index), write, durable=True
        )

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #

    def write_manifest(self, config: "CampaignConfig") -> str:
        """Record the campaign config (idempotent); returns its hash."""
        config_hash_ = config_hash(config)
        path = self._manifest_path(config_hash_)
        if path.exists():
            return config_hash_
        payload = {
            "schema": SCHEMA_VERSION,
            "config_hash": config_hash_,
            "config": config.to_json_dict(),
        }
        atomic_publish(
            path,
            lambda handle: handle.write(json.dumps(payload, indent=2).encode("utf-8")),
            durable=True,
        )
        return config_hash_

    def load_manifest(self, config_hash_: str) -> "CampaignConfig":
        """Reconstruct the campaign config stored under a hash."""
        from repro.experiments.campaign import CampaignConfig

        with self._manifest_path(config_hash_).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return CampaignConfig.from_json_dict(payload["config"])

    def manifests(self) -> Dict[str, "CampaignConfig"]:
        """All stored campaign configs, keyed by config hash."""
        directory = self.root / "manifests"
        if not directory.exists():
            return {}
        return {
            path.stem: self.load_manifest(path.stem)
            for path in sorted(directory.glob("*.json"))
        }

    # ------------------------------------------------------------------ #
    # Load / query
    # ------------------------------------------------------------------ #

    def run_indices(self, config_hash_: str) -> Set[int]:
        """The run indices already durably recorded for a campaign."""
        return set(self._scan_lines(config_hash_))

    def load_records(
        self, config_hash_: str, with_traces: bool = True
    ) -> List[RunRecord]:
        """All records of a campaign, sorted by run index (last write wins).

        ``with_traces=False`` skips the NPZ loads (the traces come back as
        empty arrays) — the fast path for scalar-only aggregation.
        """
        by_index = self._scan_lines(config_hash_)
        records: List[RunRecord] = []
        empty = np.empty(0, dtype=np.float64)
        for run_index in sorted(by_index):
            payload = by_index[run_index]
            if with_traces:
                traces = self._load_traces(config_hash_, run_index)
            else:
                traces = (empty, empty, empty)
            records.append(RunRecord.from_json_dict(payload, *traces))
        return records

    def _scan_lines(self, config_hash_: str) -> Dict[int, Dict[str, object]]:
        return self._scan_jsonl(self._runs_path(config_hash_), "run_index")

    @staticmethod
    def _scan_jsonl(path: Path, index_field: str) -> Dict[int, Dict[str, object]]:
        """Read a JSONL log keyed by ``index_field`` (last occurrence wins)."""
        if not path.exists():
            return {}
        by_index: Dict[int, Dict[str, object]] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A torn line can only be the (crashed) tail of the log;
                    # everything before it is intact.
                    continue
                by_index[int(payload[index_field])] = payload
        return by_index

    def _load_traces(
        self, config_hash_: str, run_index: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        path = self._trace_path(config_hash_, run_index)
        with np.load(path) as archive:
            return (
                archive["true_delta"],
                archive["perceived_delta"],
                archive["ego_speed"],
            )

    def iter_records(
        self,
        scenario_id: Optional[str] = None,
        attacker_kind: Optional[str] = None,
        campaign_id: Optional[str] = None,
        with_traces: bool = False,
    ) -> Iterator[RunRecord]:
        """Query records across every stored campaign, with optional filters.

        Campaigns whose manifest already contradicts a filter are skipped
        without scanning their JSONL at all (the filtered fields are constant
        per campaign), so filtered queries scale with the matching subset,
        not the whole store.  Logs without a manifest are always scanned.
        """
        runs_dir = self.root / "runs"
        if not runs_dir.exists():
            return
        manifests = (
            self.manifests()
            if scenario_id is not None or attacker_kind is not None or campaign_id is not None
            else {}
        )
        for path in sorted(runs_dir.glob("*.jsonl")):
            config = manifests.get(path.stem)
            if config is not None:
                if scenario_id is not None and config.scenario_id != scenario_id:
                    continue
                if attacker_kind is not None and config.attacker.value != attacker_kind:
                    continue
                if campaign_id is not None and config.campaign_id != campaign_id:
                    continue
            for record in self.load_records(path.stem, with_traces=with_traces):
                if scenario_id is not None and record.scenario_id != scenario_id:
                    continue
                if attacker_kind is not None and record.attacker_kind != attacker_kind:
                    continue
                if campaign_id is not None and record.campaign_id != campaign_id:
                    continue
                yield record

    # ------------------------------------------------------------------ #
    # Dataset records — streamed safety-hijacker training collection
    # ------------------------------------------------------------------ #

    def append_dataset_point(
        self,
        collection_hash_: str,
        point_index: int,
        inputs: Sequence[Sequence[float]],
        targets: Sequence[float],
    ) -> None:
        """Durably record one collected training grid point (multi-process safe).

        ``inputs``/``targets`` are the sample rows the point contributed (zero
        rows when the scripted attack never fired); floats survive the JSON
        round-trip bit-exactly, which is what keeps a store-assembled dataset
        identical to an in-memory one.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "point_index": int(point_index),
            "inputs": [[float(value) for value in row] for row in inputs],
            "targets": [float(value) for value in targets],
        }
        self._append_jsonl(self._dataset_path(collection_hash_), payload)

    def dataset_point_indices(self, collection_hash_: str) -> Set[int]:
        """The grid-point indices already durably collected (the resume skip set)."""
        return set(self._scan_jsonl(self._dataset_path(collection_hash_), "point_index"))

    def load_dataset_points(
        self, collection_hash_: str
    ) -> Dict[int, Tuple[List[List[float]], List[float]]]:
        """All collected grid points, keyed by point index (last write wins)."""
        by_index = self._scan_jsonl(self._dataset_path(collection_hash_), "point_index")
        points: Dict[int, Tuple[List[List[float]], List[float]]] = {}
        for point_index, payload in by_index.items():
            schema = int(payload.get("schema", 0))
            if schema > SCHEMA_VERSION:
                raise ValueError(
                    f"dataset point written by a newer schema ({schema} > {SCHEMA_VERSION})"
                )
            points[point_index] = (
                [[float(value) for value in row] for row in payload["inputs"]],
                [float(value) for value in payload["targets"]],
            )
        return points

    def write_dataset_manifest(
        self, collection_hash_: str, payload: Dict[str, object]
    ) -> None:
        """Record a collection's provenance (idempotent)."""
        path = self._dataset_manifest_path(collection_hash_)
        if path.exists():
            return
        document = {
            "schema": SCHEMA_VERSION,
            "collection_hash": collection_hash_,
            **payload,
        }
        atomic_publish(
            path,
            lambda handle: handle.write(json.dumps(document, indent=2).encode("utf-8")),
            durable=True,
        )

    def load_dataset_manifest(self, collection_hash_: str) -> Dict[str, object]:
        """The provenance document of a stored collection."""
        with self._dataset_manifest_path(collection_hash_).open(
            "r", encoding="utf-8"
        ) as handle:
            return json.load(handle)

    # ------------------------------------------------------------------ #
    # Model registry — content-addressed trained predictors
    # ------------------------------------------------------------------ #

    def has_model(self, model_hash_: str) -> bool:
        """Whether a model directory is fully published under this hash."""
        return self.model_dir(model_hash_).is_dir()

    def publish_model(
        self,
        model_hash_: str,
        write: Callable[[Path], None],
        metadata: Dict[str, object],
    ) -> Path:
        """Atomically publish a model directory under its content hash.

        ``write`` populates a temporary sibling directory, which is then
        renamed into place — readers never observe a half-written model, and
        concurrent publishers of the same hash race benignly (the loser's
        rename fails against the existing directory and is discarded: the
        content address guarantees both wrote the same artifact).
        """
        final = self.model_dir(model_hash_)
        if final.is_dir():
            return final
        final.parent.mkdir(parents=True, exist_ok=True)
        staging = final.parent / f".tmp-{model_hash_}-{os.getpid()}"
        try:
            staging.mkdir(parents=True, exist_ok=True)
            write(staging)
            atomic_publish(
                staging / "registry.json",
                lambda handle: handle.write(
                    json.dumps(
                        {"schema": SCHEMA_VERSION, "model_hash": model_hash_, **metadata},
                        indent=2,
                    ).encode("utf-8")
                ),
                durable=True,
            )
            try:
                os.replace(staging, final)
            except OSError:
                if not final.is_dir():
                    raise
        finally:
            if staging.is_dir():
                shutil.rmtree(staging, ignore_errors=True)
        return final

    def load_model_metadata(self, model_hash_: str) -> Dict[str, object]:
        """The registry document published next to a model's artifact files."""
        with (self.model_dir(model_hash_) / "registry.json").open(
            "r", encoding="utf-8"
        ) as handle:
            return json.load(handle)

    def register_model_spec(
        self, spec_hash_: str, model_hash_: str, metadata: Optional[Dict[str, object]] = None
    ) -> None:
        """Map a training-spec hash to a published model (last write wins)."""
        payload = {
            "schema": SCHEMA_VERSION,
            "spec_hash": spec_hash_,
            "model_hash": model_hash_,
            **(metadata or {}),
        }
        atomic_publish(
            self._model_index_path(spec_hash_),
            lambda handle: handle.write(json.dumps(payload, indent=2).encode("utf-8")),
            durable=True,
        )

    def resolve_model_spec(self, spec_hash_: str) -> Optional[str]:
        """The model hash registered for a training spec, if any."""
        path = self._model_index_path(spec_hash_)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            return str(json.load(handle)["model_hash"])

    def model_hashes(self) -> List[str]:
        """Every fully published model hash in the registry."""
        directory = self.root / "models"
        if not directory.exists():
            return []
        return sorted(
            path.name
            for path in directory.iterdir()
            if path.is_dir() and path.name != "index" and not path.name.startswith(".")
        )

    # ------------------------------------------------------------------ #
    # Search records — falsification-loop checkpoints and reports
    # ------------------------------------------------------------------ #

    def write_search_manifest(self, search_hash_: str, payload: Dict[str, object]) -> None:
        """Record a search's specification (idempotent, content-addressed).

        The manifest is what makes ``repro-campaign search`` auto-resume
        possible: the same spec hashes to the same directory, so a restarted
        search finds its own checkpoint without re-specifying anything.
        """
        path = self._search_manifest_path(search_hash_)
        if path.exists():
            return
        document = {"schema": SCHEMA_VERSION, "search_hash": search_hash_, **payload}
        atomic_publish(
            path,
            lambda handle: handle.write(json.dumps(document, indent=2).encode("utf-8")),
            durable=True,
        )

    def load_search_manifest(self, search_hash_: str) -> Dict[str, object]:
        """The specification document of a stored search."""
        with self._search_manifest_path(search_hash_).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def save_search_state(self, search_hash_: str, payload: Dict[str, object]) -> None:
        """Atomically checkpoint a search's sampler/loop state (last write wins).

        Same durability discipline as the model registry: temp file + fsynced
        rename, so a SIGKILL mid-write leaves the previous checkpoint intact,
        never a torn one.
        """
        document = {"schema": SCHEMA_VERSION, "search_hash": search_hash_, **payload}
        atomic_publish(
            self._search_state_path(search_hash_),
            lambda handle: handle.write(json.dumps(document, indent=2).encode("utf-8")),
            durable=True,
        )

    def load_search_state(self, search_hash_: str) -> Optional[Dict[str, object]]:
        """The latest checkpoint of a search, or ``None`` if never saved."""
        path = self._search_state_path(search_hash_)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = int(payload.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"search state written by a newer schema ({schema} > {SCHEMA_VERSION})"
            )
        return payload

    def append_search_iteration(
        self, search_hash_: str, payload: Dict[str, object]
    ) -> None:
        """Durably record one completed search iteration (multi-process safe)."""
        document = {"schema": SCHEMA_VERSION, **payload}
        self._append_jsonl(self._search_iterations_path(search_hash_), document)

    def load_search_iterations(self, search_hash_: str) -> List[Dict[str, object]]:
        """All recorded iterations of a search, sorted (last write wins)."""
        by_index = self._scan_jsonl(self._search_iterations_path(search_hash_), "iteration")
        return [by_index[index] for index in sorted(by_index)]

    def search_hashes(self) -> List[str]:
        """Every search recorded in the store (manifest present)."""
        directory = self.root / "searches"
        if not directory.exists():
            return []
        return sorted(
            path.name
            for path in directory.iterdir()
            if path.is_dir() and (path / "manifest.json").exists()
        )

    # ------------------------------------------------------------------ #
    # Aggregation — what results/tables/figures consume
    # ------------------------------------------------------------------ #

    def aggregate(
        self,
        config_hashes: Optional[Sequence[str]] = None,
        since: Optional[Dict[str, int]] = None,
    ) -> AggregateBatch:
        """Scan run outcomes incrementally, filtered to a config-hash set.

        ``config_hashes`` restricts the scan to those campaigns (the search
        loop passes exactly the hashes of the iteration it just executed);
        ``None`` scans every log in the store.  ``since`` maps config hash ->
        byte offset already consumed (the ``cursor`` of a previous batch):
        only complete lines appended past the offset are parsed, so polling a
        growing store costs the new bytes, not a full re-read.  A torn tail
        line (a writer crashed or is mid-append) is *not* consumed — its
        offset stays before the tear, and the next call picks the line up
        once its newline lands.
        """
        runs_dir = self.root / "runs"
        if config_hashes is None:
            hashes = (
                sorted(path.stem for path in runs_dir.glob("*.jsonl"))
                if runs_dir.exists()
                else []
            )
        else:
            hashes = list(config_hashes)
        since = since or {}
        outcomes: Dict[str, Dict[int, RunOutcome]] = {}
        cursor: Dict[str, int] = {}
        for config_hash_ in hashes:
            payloads, offset = self._scan_outcome_lines(
                self._runs_path(config_hash_), since.get(config_hash_, 0)
            )
            by_index = outcomes.setdefault(config_hash_, {})
            for payload in payloads:
                outcome = RunOutcome.from_json_dict(payload)
                by_index[outcome.run_index] = outcome
            cursor[config_hash_] = offset
        return AggregateBatch(outcomes=outcomes, cursor=cursor)

    @staticmethod
    def _scan_outcome_lines(
        path: Path, offset: int
    ) -> Tuple[List[Dict[str, object]], int]:
        """Parse complete JSONL lines from ``offset``; return the new offset.

        The returned offset always sits just past the last byte consumed, and
        only newline-terminated lines are consumed — a torn tail is left for
        the next scan rather than being half-parsed (or skipped forever).
        """
        if not path.exists():
            return [], offset
        payloads: List[Dict[str, object]] = []
        with path.open("rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return [], offset
        for raw in chunk[: end + 1].splitlines():
            line = raw.strip()
            if not line:
                continue
            try:
                payloads.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # An interior torn line (a writer crashed mid-append before a
                # later writer healed the log with a fresh newline) carries no
                # recoverable record; skip it like _scan_jsonl does.
                continue
        return payloads, offset + end + 1

    def campaign_result(
        self, config: "CampaignConfig", allow_partial: bool = False
    ) -> CampaignResult:
        """Assemble the stored runs of a campaign into a :class:`CampaignResult`.

        An incomplete (interrupted, not yet resumed) campaign raises by
        default — statistics over a partial run set are silently wrong.
        ``allow_partial=True`` opts into partial assembly (how the resume
        machinery inspects in-flight campaigns).
        """
        records = self.load_records(config_hash(config), with_traces=False)
        if not allow_partial and len(records) != config.n_runs:
            raise ValueError(
                f"campaign {config.campaign_id!r} is incomplete: "
                f"{len(records)} of {config.n_runs} runs stored — finish it "
                f"with `repro-campaign resume --store {self.root}` or pass "
                "allow_partial=True"
            )
        return CampaignResult(
            campaign_id=config.campaign_id,
            scenario_id=config.scenario_id,
            attacker_kind=config.attacker.value,
            vector=config.vector,
            runs=[record.result for record in records],
        )

    def campaign_results(
        self,
        config_hashes: Optional[Sequence[str]] = None,
        allow_partial: bool = False,
    ) -> List[CampaignResult]:
        """Stored campaigns as :class:`CampaignResult` objects (all by default).

        Raises on incomplete campaigns unless ``allow_partial=True`` — an
        aggregate built over a partial run set is a silently wrong statistic —
        and on explicitly requested hashes with no stored manifest (a missing
        campaign must not silently vanish from a table).
        """
        manifests = self.manifests()
        if config_hashes is None:
            hashes = sorted(manifests)
        else:
            hashes = list(config_hashes)
            unknown = [h for h in hashes if h not in manifests]
            if unknown:
                raise KeyError(
                    f"no manifest stored for config hash(es) {unknown}; "
                    "was the campaign ever started with this store?"
                )
        return [
            self.campaign_result(manifests[h], allow_partial=allow_partial)
            for h in hashes
        ]

    def incomplete_campaigns(self) -> List[Tuple["CampaignConfig", Set[int]]]:
        """Stored campaigns with missing run indices — the resume worklist."""
        incomplete = []
        for config_hash_, config in sorted(self.manifests().items()):
            missing = set(range(config.n_runs)) - self.run_indices(config_hash_)
            if missing:
                incomplete.append((config, missing))
        return incomplete

    def summaries(self, allow_partial: bool = False) -> List["CampaignSummary"]:  # noqa: F821
        """Per-campaign summary rows (EB/crash rates) over every stored campaign."""
        from repro.experiments.metrics import summarize_campaign

        return [
            summarize_campaign(result)
            for result in self.campaign_results(allow_partial=allow_partial)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ExperimentStore({str(self.root)!r})"

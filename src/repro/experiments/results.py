"""Per-run and per-campaign result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.attack_vectors import AttackVector
from repro.sim.actors import ActorKind

__all__ = ["RunResult", "CampaignResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation run within a campaign."""

    run_index: int
    seed: int
    scenario_id: str
    attacker_kind: str
    vector: Optional[AttackVector]
    target_kind: Optional[ActorKind]
    #: Whether the attack was actually launched during the run.
    attack_launched: bool
    #: Whether the ADS engaged emergency braking at any point.
    emergency_braking: bool
    #: Whether a physical collision occurred (the simulation halts on it).
    collision: bool
    #: Paper accident criterion: min ground-truth δ after attack start below 4 m.
    accident: bool
    #: Minimum ground-truth safety potential from the attack start to run end.
    min_true_delta_m: float
    #: Ground-truth safety potential at the end of the attack window.
    true_delta_at_attack_end_m: float
    #: Safety potential predicted by the safety hijacker at launch (NaN if unused).
    predicted_delta_m: float
    #: Attack window K decided by the attacker (frames).
    planned_k_frames: int
    #: Number of frames actually perturbed.
    frames_perturbed: int
    #: Frames spent actively shifting the perceived position (K').
    k_prime_frames: int
    #: Safety potential estimated by the malware at launch time.
    delta_at_launch_m: float


@dataclass
class CampaignResult:
    """All runs of one experimental campaign (same scenario + attack vector)."""

    campaign_id: str
    scenario_id: str
    attacker_kind: str
    vector: Optional[AttackVector]
    runs: List[RunResult] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def launched_runs(self) -> List[RunResult]:
        """Runs where the attacker actually fired."""
        return [r for r in self.runs if r.attack_launched]

    @property
    def emergency_braking_count(self) -> int:
        return sum(1 for r in self.runs if r.emergency_braking)

    @property
    def accident_count(self) -> int:
        return sum(1 for r in self.runs if r.accident)

    @property
    def collision_count(self) -> int:
        return sum(1 for r in self.runs if r.collision)

    @property
    def emergency_braking_rate(self) -> float:
        return self.emergency_braking_count / self.n_runs if self.n_runs else 0.0

    @property
    def accident_rate(self) -> float:
        return self.accident_count / self.n_runs if self.n_runs else 0.0

    def median_planned_k(self) -> float:
        """Median attack window K over the runs that launched an attack."""
        launched = [r.planned_k_frames for r in self.launched_runs]
        return float(np.median(launched)) if launched else 0.0

    def median_k_prime(self) -> float:
        """Median number of shift frames K' over the runs that launched."""
        launched = [r.k_prime_frames for r in self.launched_runs]
        return float(np.median(launched)) if launched else 0.0

    def min_delta_values(self) -> List[float]:
        """Per-run minimum ground-truth safety potential (finite values only)."""
        return [
            r.min_true_delta_m for r in self.runs if np.isfinite(r.min_true_delta_m)
        ]

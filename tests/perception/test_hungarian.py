"""Tests for the Hungarian assignment algorithm."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.hungarian import assignment_total_cost, hungarian_assignment


def brute_force_minimum(cost: np.ndarray) -> float:
    """Reference minimum assignment cost by enumerating permutations."""
    n_rows, n_cols = cost.shape
    k = min(n_rows, n_cols)
    best = float("inf")
    if n_rows <= n_cols:
        for cols in itertools.permutations(range(n_cols), k):
            best = min(best, sum(cost[i, c] for i, c in enumerate(cols)))
    else:
        for rows in itertools.permutations(range(n_rows), k):
            best = min(best, sum(cost[r, j] for j, r in enumerate(rows)))
    return best


class TestHungarianBasics:
    def test_identity_matrix_prefers_diagonal_zeros(self):
        cost = 1.0 - np.eye(3)
        pairs = hungarian_assignment(cost)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_simple_known_case(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        pairs = hungarian_assignment(cost)
        assert assignment_total_cost(cost, pairs) == pytest.approx(5.0)

    def test_rectangular_more_columns(self):
        cost = np.array([[10.0, 1.0, 8.0], [7.0, 9.0, 2.0]])
        pairs = hungarian_assignment(cost)
        assert len(pairs) == 2
        assert assignment_total_cost(cost, pairs) == pytest.approx(3.0)

    def test_rectangular_more_rows(self):
        cost = np.array([[10.0, 1.0], [1.0, 10.0], [5.0, 5.0]])
        pairs = hungarian_assignment(cost)
        assert len(pairs) == 2
        assert assignment_total_cost(cost, pairs) == pytest.approx(2.0)

    def test_empty_matrix(self):
        assert hungarian_assignment(np.zeros((0, 3))) == []
        assert hungarian_assignment(np.zeros((3, 0))) == []

    def test_single_element(self):
        assert hungarian_assignment(np.array([[7.0]])) == [(0, 0)]

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            hungarian_assignment(np.zeros(3))

    def test_assignment_is_one_to_one(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 6))
        pairs = hungarian_assignment(cost)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)


class TestHungarianOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_square(self, seed):
        rng = np.random.default_rng(seed)
        cost = rng.random((5, 5))
        pairs = hungarian_assignment(cost)
        assert assignment_total_cost(cost, pairs) == pytest.approx(brute_force_minimum(cost))

    @pytest.mark.parametrize("shape", [(3, 5), (5, 3), (2, 6), (6, 2)])
    def test_matches_brute_force_rectangular(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**32)
        cost = rng.random(shape)
        pairs = hungarian_assignment(cost)
        assert len(pairs) == min(shape)
        assert assignment_total_cost(cost, pairs) == pytest.approx(brute_force_minimum(cost))

    def test_matches_scipy(self):
        from scipy.optimize import linear_sum_assignment

        rng = np.random.default_rng(42)
        for _ in range(10):
            cost = rng.random((7, 7))
            ours = assignment_total_cost(cost, hungarian_assignment(cost))
            rows, cols = linear_sum_assignment(cost)
            assert ours == pytest.approx(cost[rows, cols].sum())

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_greedy(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        cost = rng.random((n_rows, n_cols))
        pairs = hungarian_assignment(cost)
        optimal = assignment_total_cost(cost, pairs)
        # Greedy row-by-row assignment is an upper bound on the optimum.
        taken = set()
        greedy = 0.0
        for row in range(min(n_rows, n_cols)):
            candidates = [(cost[row, c], c) for c in range(n_cols) if c not in taken]
            value, col = min(candidates)
            taken.add(col)
            greedy += value
        assert optimal <= greedy + 1e-9

"""Figure data generators (paper Figs. 6, 7, and 8).

Each generator returns the plotted *data* (five-number summaries, binned
success probabilities, prediction/ground-truth pairs), which is what the
benchmark harness prints and what EXPERIMENTS.md records.  Fig. 5 lives in
:mod:`repro.experiments.characterization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.attack_vectors import AttackVector
from repro.core.safety_hijacker import NeuralSafetyPredictor, SafetyPredictor
from repro.core.training import SafetyDataset
from repro.experiments.campaign import CampaignConfig, run_campaigns
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.store import ExperimentStore
from repro.runtime import ExecutorLike
from repro.sim.actors import ActorKind
from repro.utils.stats import BoxplotStats, boxplot_stats

__all__ = [
    "Fig6Panel",
    "Fig7Panel",
    "Fig8Data",
    "fig6_panels",
    "fig6_panels_from_configs",
    "fig6_panels_from_store",
    "fig7_panels",
    "fig7_panels_from_configs",
    "fig7_panels_from_store",
    "fig8_data",
]


@dataclass(frozen=True)
class Fig6Panel:
    """One panel of paper Fig. 6: min-δ distributions with and without the SH."""

    panel_id: str
    with_sh: BoxplotStats
    without_sh: BoxplotStats
    accident_threshold_m: float = 4.0

    @property
    def median_improvement_m(self) -> float:
        """How much lower the median min-δ is with the safety hijacker."""
        return self.without_sh.median - self.with_sh.median


@dataclass(frozen=True)
class Fig7Panel:
    """One panel of paper Fig. 7: K' distributions per attack vector."""

    panel_id: str
    target_kind: ActorKind
    k_prime_by_vector: Dict[str, BoxplotStats]


@dataclass(frozen=True)
class Fig8Data:
    """Paper Fig. 8: safety-hijacker prediction quality vs. attack success."""

    #: (bin centre of |prediction error| in metres, success probability, count).
    binned_success: List[tuple[float, float, int]]
    #: (k, ground-truth delta, predicted delta) triples for the Fig. 8b curve.
    prediction_curve: List[tuple[int, float, float]]
    mean_absolute_error_m: float


def _finite_min_deltas(campaign: CampaignResult) -> List[float]:
    values = [r.min_true_delta_m for r in campaign.runs if np.isfinite(r.min_true_delta_m)]
    return values or [float(campaign.n_runs and 0.0)]


def fig6_panels(
    with_sh: Sequence[CampaignResult], without_sh: Sequence[CampaignResult]
) -> List[Fig6Panel]:
    """Pair up campaigns with and without the safety hijacker into Fig. 6 panels."""
    without_by_key = {
        (c.scenario_id, c.vector): c for c in without_sh
    }
    panels: List[Fig6Panel] = []
    for campaign in with_sh:
        key = (campaign.scenario_id, campaign.vector)
        counterpart = without_by_key.get(key)
        if counterpart is None:
            continue
        vector_name = campaign.vector.name.title() if campaign.vector else "Random"
        panels.append(
            Fig6Panel(
                panel_id=f"{campaign.scenario_id}-{vector_name}",
                with_sh=boxplot_stats(_finite_min_deltas(campaign)),
                without_sh=boxplot_stats(_finite_min_deltas(counterpart)),
            )
        )
    return panels


def fig6_panels_from_configs(
    with_sh: Sequence[CampaignConfig],
    without_sh: Sequence[CampaignConfig],
    executor: ExecutorLike = None,
    use_cache: bool = True,
) -> List[Fig6Panel]:
    """Execute the paired campaigns (optionally in parallel) and build Fig. 6.

    ``executor`` is shared across all campaigns of both arms, so one worker
    pool serves the entire figure.
    """
    configs = list(with_sh) + list(without_sh)
    results = run_campaigns(configs, use_cache=use_cache, executor=executor)
    return fig6_panels(results[: len(with_sh)], results[len(with_sh):])


def fig6_panels_from_store(
    store: ExperimentStore,
    with_sh: Sequence[CampaignConfig],
    without_sh: Sequence[CampaignConfig],
    allow_partial: bool = False,
) -> List[Fig6Panel]:
    """Build Fig. 6 panels from durably stored runs — no re-simulation.

    Incomplete campaigns raise unless ``allow_partial=True`` (a min-δ
    distribution over a partial run set is a silently skewed boxplot).
    """
    return fig6_panels(
        [store.campaign_result(c, allow_partial=allow_partial) for c in with_sh],
        [store.campaign_result(c, allow_partial=allow_partial) for c in without_sh],
    )


def fig7_panels(campaigns: Sequence[CampaignResult]) -> List[Fig7Panel]:
    """Group per-run K' values by target class and attack vector (Fig. 7)."""
    by_kind: Dict[ActorKind, Dict[str, List[float]]] = {
        ActorKind.VEHICLE: {},
        ActorKind.PEDESTRIAN: {},
    }
    for campaign in campaigns:
        for run in campaign.runs:
            if not run.attack_launched or run.vector is None or run.target_kind is None:
                continue
            by_kind[run.target_kind].setdefault(run.vector.name.title(), []).append(
                float(run.k_prime_frames)
            )
    panels: List[Fig7Panel] = []
    for kind, per_vector in by_kind.items():
        if not per_vector:
            continue
        panels.append(
            Fig7Panel(
                panel_id=f"K-prime-{kind.value}",
                target_kind=kind,
                k_prime_by_vector={
                    vector: boxplot_stats(values) for vector, values in per_vector.items()
                },
            )
        )
    return panels


def fig7_panels_from_configs(
    configs: Sequence[CampaignConfig],
    executor: ExecutorLike = None,
    use_cache: bool = True,
) -> List[Fig7Panel]:
    """Execute the campaigns (optionally in parallel) and build Fig. 7."""
    return fig7_panels(run_campaigns(configs, use_cache=use_cache, executor=executor))


def fig7_panels_from_store(
    store: ExperimentStore,
    configs: Optional[Sequence[CampaignConfig]] = None,
    allow_partial: bool = False,
) -> List[Fig7Panel]:
    """Build Fig. 7 panels from durably stored runs — no re-simulation.

    By default every campaign recorded in the store contributes its launched
    runs; ``configs`` narrows the selection.  Incomplete campaigns raise
    unless ``allow_partial=True``.
    """
    if configs is None:
        results = store.campaign_results(allow_partial=allow_partial)
    else:
        results = [
            store.campaign_result(config, allow_partial=allow_partial)
            for config in configs
        ]
    return fig7_panels(results)


def fig8_data(
    campaigns: Sequence[CampaignResult],
    predictor: Optional[SafetyPredictor] = None,
    dataset: Optional[SafetyDataset] = None,
    n_bins: int = 8,
) -> Fig8Data:
    """Prediction-error vs. success probability (8a) and the prediction curve (8b).

    Panel (a) uses the attacked runs of the provided campaigns: the prediction
    error is |predicted δ - ground-truth δ at the end of the attack window|
    and success is the paper's accident criterion.  Panel (b) evaluates the
    predictor on the collected training dataset, grouped by k.
    """
    errors: List[float] = []
    successes: List[bool] = []
    for campaign in campaigns:
        for run in campaign.runs:
            if not _usable_for_error(run):
                continue
            errors.append(abs(run.predicted_delta_m - run.true_delta_at_attack_end_m))
            successes.append(run.accident or run.emergency_braking)

    binned: List[tuple[float, float, int]] = []
    mae = float("nan")
    if errors:
        errors_arr = np.asarray(errors)
        successes_arr = np.asarray(successes, dtype=float)
        mae = float(np.mean(errors_arr))
        edges = np.linspace(0.0, max(errors_arr.max(), 1e-6), n_bins + 1)
        for low, high in zip(edges[:-1], edges[1:]):
            mask = (errors_arr >= low) & (errors_arr < high if high < edges[-1] else errors_arr <= high)
            count = int(mask.sum())
            if count == 0:
                continue
            binned.append(((low + high) / 2.0, float(successes_arr[mask].mean()), count))

    curve: List[tuple[int, float, float]] = []
    if predictor is not None and dataset is not None:
        for row, target in zip(dataset.inputs, dataset.targets):
            k = int(row[3])
            if isinstance(predictor, NeuralSafetyPredictor):
                predicted = float(predictor.predict_batch(row.reshape(1, -1))[0])
            else:
                from repro.core.safety_hijacker import AttackFeatures

                predicted = predictor.predict_delta(
                    AttackFeatures(
                        delta_m=float(row[0]),
                        relative_velocity_mps=float(row[1]),
                        relative_acceleration_mps2=float(row[2]),
                    ),
                    k,
                )
            curve.append((k, float(target[0]), predicted))
        curve.sort(key=lambda item: item[0])

    return Fig8Data(binned_success=binned, prediction_curve=curve, mean_absolute_error_m=mae)


def _usable_for_error(run: RunResult) -> bool:
    return (
        run.attack_launched
        and np.isfinite(run.predicted_delta_m)
        and np.isfinite(run.true_delta_at_attack_end_m)
    )

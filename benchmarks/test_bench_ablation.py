"""Ablation benches for the design choices called out in DESIGN.md.

* safety hijacker ON vs OFF (attack timing) — the paper's central claim;
* neural oracle vs closed-form kinematic oracle;
* stealth bound: the per-frame shift stays within the detector noise, and the
  attack window stays within the characterized misdetection bound Kmax.
"""

import numpy as np

from repro.core.safety_hijacker import SafetyHijackerConfig
from repro.experiments.metrics import summarize_campaign
from repro.sim.actors import ActorKind


def _rates(campaigns):
    runs = [run for campaign in campaigns for run in campaign.runs]
    if not runs:
        return 0.0, 0.0
    eb = sum(run.emergency_braking for run in runs) / len(runs)
    crash_runs = [run for run in runs if run.vector is None or run.vector.value != "move_in"]
    crash = (
        sum(run.accident for run in crash_runs) / len(crash_runs) if crash_runs else 0.0
    )
    return eb, crash


def test_ablation_safety_hijacker_timing(benchmark, robotack_campaigns, no_sh_campaigns):
    """Paper §VI-D: the safety hijacker's timing multiplies the success rates."""
    result = benchmark.pedantic(
        lambda: (_rates(robotack_campaigns), _rates(no_sh_campaigns)), rounds=1, iterations=1
    )
    (eb_with, crash_with), (eb_without, crash_without) = result

    print("\n=== Ablation: safety hijacker ON vs OFF (all campaigns pooled) ===")
    print(f"with SH    : EB {eb_with:.1%}  crashes {crash_with:.1%}   (paper 75.2% / 52.6%)")
    print(f"without SH : EB {eb_without:.1%}  crashes {crash_without:.1%}   (paper 27.0% / 5.1%)")
    if eb_without > 0:
        print(f"EB improvement    : {eb_with / eb_without:.1f}x (paper ~2.8x)")
    if crash_without > 0:
        print(f"crash improvement : {crash_with / crash_without:.1f}x (paper ~10x)")

    assert eb_with > eb_without
    assert crash_with >= crash_without


def test_ablation_neural_vs_kinematic_oracle(benchmark, robotack_campaigns, kinematic_campaign):
    """The learned oracle should time attacks at least as well as the closed-form one."""
    neural = next(c for c in robotack_campaigns if c.campaign_id == "DS-2-Disappear-R")
    summary_neural, summary_kinematic = benchmark.pedantic(
        lambda: (summarize_campaign(neural), summarize_campaign(kinematic_campaign)),
        rounds=1,
        iterations=1,
    )

    print("\n=== Ablation: neural vs kinematic safety-potential oracle (DS-2 Disappear) ===")
    print(
        f"neural    : EB {summary_neural.emergency_braking_rate:.1%} "
        f"crashes {summary_neural.accident_rate:.1%} K={summary_neural.median_k_frames:.0f}"
    )
    print(
        f"kinematic : EB {summary_kinematic.emergency_braking_rate:.1%} "
        f"crashes {summary_kinematic.accident_rate:.1%} K={summary_kinematic.median_k_frames:.0f}"
    )
    assert summary_neural.accident_rate >= summary_kinematic.accident_rate - 0.15


def test_ablation_stealth_bounds_respected(benchmark, robotack_campaigns):
    """RoboTack stays inside the characterized detector-noise envelope.

    The attack window K never exceeds the per-class 99th-percentile
    misdetection bound, which is what keeps the perturbation indistinguishable
    from natural detector behaviour (paper §VI-E).
    """
    config = SafetyHijackerConfig()

    def collect_violations():
        violations = 0
        checked = 0
        for campaign in robotack_campaigns:
            for run in campaign.launched_runs:
                if run.target_kind is None:
                    continue
                checked += 1
                if run.planned_k_frames > config.k_max_for(run.target_kind):
                    violations += 1
        return checked, violations

    checked, violations = benchmark.pedantic(collect_violations, rounds=1, iterations=1)
    k_by_kind = {
        kind: [
            run.planned_k_frames
            for campaign in robotack_campaigns
            for run in campaign.launched_runs
            if run.target_kind is kind
        ]
        for kind in ActorKind
    }

    print("\n=== Ablation: stealth bound Kmax (99th pct of misdetection bursts) ===")
    for kind, values in k_by_kind.items():
        if values:
            print(
                f"{kind.value:<11s} attack windows: median {np.median(values):.0f}, "
                f"max {max(values)} <= Kmax {config.k_max_for(kind)}"
            )
    print(f"launched attacks checked: {checked}, stealth violations: {violations}")

    assert checked > 0
    assert violations == 0

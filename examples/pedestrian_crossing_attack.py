#!/usr/bin/env python3
"""DS-2 deep dive: trace a Disappear attack on the crossing pedestrian frame by frame.

This example mirrors the attack walk-through of paper §III-E / Fig. 3: it runs
the simulation loop manually so it can print, for the interesting frames, what
the world actually looks like, what the ADS believes, and what the malware is
doing.

Run with:  python examples/pedestrian_crossing_attack.py
"""

from __future__ import annotations

import numpy as np

from repro.ads.safety import SafetyModel, ground_truth_delta
from repro.core import AttackVector
from repro.core.training import ScriptedAttacker
from repro.experiments.campaign import build_ads_agent
from repro.sensors.camera import CameraSensor
from repro.sensors.gps_imu import GpsImuSensor
from repro.sensors.lidar import LidarSensor
from repro.sim.config import SimulationConfig
from repro.sim.scenarios import ScenarioVariation, build_scenario


def main() -> None:
    scenario = build_scenario("DS-2", ScenarioVariation.nominal())
    config = SimulationConfig()
    ads = build_ads_agent(scenario, np.random.default_rng(1))
    # A scripted attacker reproduces the paper's data-collection setup: attack
    # as soon as the malware's own safety-potential estimate drops to 36 m and
    # keep perturbing for 28 consecutive camera frames (within the pedestrian
    # stealth bound of 31 frames).
    attacker = ScriptedAttacker(
        scenario.road,
        AttackVector.DISAPPEAR,
        delta_inject_m=36.0,
        k_frames=28,
        rng=np.random.default_rng(2),
    )

    camera = CameraSensor()
    lidar = LidarSensor(rng=np.random.default_rng(3))
    gps = GpsImuSensor(rng=np.random.default_rng(4))
    safety = SafetyModel()
    world = scenario.world
    last_scan = None

    print("frame |  ego x   v  | ped lateral | true δ | perceived δ | attack | EB")
    print("-" * 78)
    for step in range(int(scenario.duration_s * config.camera_rate_hz)):
        snapshot = world.snapshot()
        frame = camera.capture(snapshot)
        if config.lidar_due(step):
            last_scan = lidar.scan(snapshot)
        pose = gps.measure(snapshot)

        delivered = attacker.process_frame(frame, pose.speed_mps, config.dt)
        decision = ads.step(delivered, last_scan, pose, config.dt)

        true_delta = ground_truth_delta(
            snapshot, scenario.road, safety, target_actor_id=scenario.target_actor_id
        )
        pedestrian = snapshot.actor_by_id(scenario.target_actor_id)
        attacking = attacker.attack_active

        if step % 15 == 0 or attacking or decision.emergency_brake:
            perceived = (
                f"{decision.perceived_delta_m:7.1f}"
                if decision.perceived_delta_m != float("inf")
                else "  clear"
            )
            true_text = f"{true_delta:6.1f}" if true_delta != float("inf") else " clear"
            print(
                f"{step:5d} | {snapshot.ego.position.x:6.1f} {snapshot.ego.speed:4.1f} | "
                f"{pedestrian.position.y:11.2f} | {true_text} | {perceived:>11s} | "
                f"{'ACTIVE' if attacking else '      '} | {'EB' if decision.emergency_brake else ''}"
            )

        world.step(config.dt, decision.acceleration_mps2)
        collision = any(world.snapshot().ego.overlaps(actor) for actor in world.snapshot().actors)
        if collision:
            print(f"{step:5d} | COLLISION with the pedestrian — simulation halted")
            break

    record = attacker.record
    print("-" * 78)
    print(
        f"attack summary: launched={record.launched} start_frame={record.start_frame} "
        f"K={record.planned_k_frames} frames perturbed={record.frames_perturbed}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Train the safety hijacker's neural oracle for one <scenario, vector> pair.

Reproduces the training procedure of paper §IV-B: scripted attack simulations
with predefined (delta_inject, k) pairs provide the dataset of ADS responses;
a 100-100-50 ReLU network with dropout 0.1 is trained with Adam on an L2 loss
using a 60/40 train/validation split.  The trained oracle is then plugged into
a RoboTack attacker and evaluated on a few held-out attacked runs.

Collection fans out over worker processes (``--jobs``), and with ``--store``
the collected grid points stream into an experiment store (resumable on
restart) and the trained oracle is published into its model registry — the
pipeline behind ``repro-campaign train``.

Run with:  python examples/train_safety_hijacker.py --scenario DS-2 --vector disappear --jobs -1
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import AttackVector
from repro.core.training import train_and_register_predictor
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    run_single_experiment,
    training_grid_for,
)
from repro.sim.scenarios import list_scenario_ids


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="DS-2", choices=list_scenario_ids())
    parser.add_argument("--vector", default="disappear")
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--eval-runs", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for collection (0/1 serial, -1 all CPUs)")
    parser.add_argument("--store", default=None,
                        help="experiment-store root: make collection resumable and "
                        "register the trained oracle for campaign reuse")
    args = parser.parse_args()

    vector = AttackVector.from_string(args.vector)
    delta_grid, k_grid = training_grid_for(args.scenario)

    print(f"collecting attack-response dataset for {args.scenario} / {vector.name} "
          f"(jobs={args.jobs}) ...")
    artifact = train_and_register_predictor(
        args.scenario,
        vector,
        delta_grid,
        k_grid,
        seed=args.seed,
        repeats=2,
        epochs=args.epochs,
        executor=args.jobs,
        store=args.store,
    )
    dataset, predictor, result = artifact.dataset, artifact.predictor, artifact.training
    print(f"collected {dataset.n_samples} samples "
          f"(labels range {dataset.targets.min():.1f} .. {dataset.targets.max():.1f} m, "
          f"dataset hash {artifact.dataset_hash[:12]})")
    print(
        f"trained {predictor.network.num_parameters()} parameters for {args.epochs} epochs: "
        f"train loss {result.history.final_train_loss:.3f}, "
        f"validation loss {result.history.final_validation_loss:.3f} "
        f"({result.n_train_samples}/{result.n_validation_samples} split)"
    )
    if artifact.model_hash is not None:
        print(f"registered model {artifact.model_hash[:12]} at {artifact.model_dir}")

    errors = np.abs(predictor.predict_batch(dataset.inputs) - dataset.targets.reshape(-1))
    print(f"mean absolute error on the dataset: {errors.mean():.2f} m")

    # Evaluate the freshly trained oracle end-to-end: run_single_experiment
    # accepts the predictor directly, bypassing the trained-artifact cache.
    config = CampaignConfig(
        campaign_id=f"{args.scenario}-{vector.name.title()}-eval",
        scenario_id=args.scenario,
        attacker=AttackerKind.ROBOTACK,
        vector=vector,
        n_runs=args.eval_runs,
        seed=args.seed + 1,
    )
    print(f"\nevaluating the trained oracle on {args.eval_runs} attacked runs ...")
    hazards = 0
    for run_index in range(args.eval_runs):
        run = run_single_experiment(config, run_index, predictor=predictor)
        hazard = run.emergency_braking or run.accident
        hazards += hazard
        print(
            f"  run {run_index}: launched={run.attack_launched} K={run.planned_k_frames:2d} "
            f"min delta={run.min_true_delta_m:5.1f} m EB={run.emergency_braking} "
            f"accident={run.accident}"
        )
    print(f"\nsafety hazards in {hazards}/{args.eval_runs} attacked runs")


if __name__ == "__main__":
    main()

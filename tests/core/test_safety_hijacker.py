"""Tests for the safety hijacker (when to attack) and its predictors."""

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.safety_hijacker import (
    AttackFeatures,
    KinematicSafetyPredictor,
    NeuralSafetyPredictor,
    SafetyHijacker,
    SafetyHijackerConfig,
)
from repro.sim.actors import ActorKind


def features(delta=20.0, v_rel=-5.0, a_rel=0.0):
    return AttackFeatures(
        delta_m=delta, relative_velocity_mps=v_rel, relative_acceleration_mps2=a_rel
    )


class TestAttackFeatures:
    def test_as_array_layout(self):
        array = features(10.0, -3.0, 0.5).as_array(k=25)
        np.testing.assert_allclose(array, [10.0, -3.0, 0.5, 25.0])


class TestKinematicPredictor:
    def test_delta_decreases_with_longer_attack_when_closing(self):
        predictor = KinematicSafetyPredictor(AttackVector.DISAPPEAR)
        short = predictor.predict_delta(features(delta=20, v_rel=-5), k=10)
        long = predictor.predict_delta(features(delta=20, v_rel=-5), k=50)
        assert long < short < 20

    def test_move_in_ignores_free_acceleration_term(self):
        move_in = KinematicSafetyPredictor(AttackVector.MOVE_IN)
        disappear = KinematicSafetyPredictor(AttackVector.DISAPPEAR)
        f = features(delta=20, v_rel=-5)
        assert move_in.predict_delta(f, 30) > disappear.predict_delta(f, 30)

    def test_zero_k_returns_current_delta(self):
        predictor = KinematicSafetyPredictor(AttackVector.MOVE_OUT)
        assert predictor.predict_delta(features(delta=17.0), k=0) == pytest.approx(17.0)


class TestNeuralPredictor:
    def test_untrained_predictor_has_paper_architecture(self, rng):
        predictor = NeuralSafetyPredictor.untrained(rng=rng)
        sizes = [
            (layer.in_features, layer.out_features)
            for layer in predictor.network.trainable_layers()
        ]
        assert sizes == [(4, 100), (100, 100), (100, 50), (50, 1)]

    def test_normalization_round_trip(self, rng):
        predictor = NeuralSafetyPredictor(
            NeuralSafetyPredictor.untrained(rng=rng).network,
            feature_means=np.array([10.0, -5.0, 0.0, 30.0]),
            feature_stds=np.array([5.0, 2.0, 1.0, 15.0]),
        )
        normalized = predictor.normalize(np.array([10.0, -5.0, 0.0, 30.0]))
        np.testing.assert_allclose(normalized, np.zeros((1, 4)))

    def test_target_denormalization_applied(self, rng):
        base = NeuralSafetyPredictor.untrained(rng=rng)
        shifted = NeuralSafetyPredictor(
            base.network,
            base.feature_means,
            base.feature_stds,
            target_mean=100.0,
            target_std=1.0,
        )
        raw = base.predict_delta(features(), 10)
        assert shifted.predict_delta(features(), 10) == pytest.approx(raw + 100.0)

    def test_invalid_normalization_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            NeuralSafetyPredictor(
                NeuralSafetyPredictor.untrained(rng=rng).network,
                feature_means=np.zeros(3),
                feature_stds=np.ones(3),
            )

    def test_predict_batch_matches_scalar_prediction(self, rng):
        predictor = NeuralSafetyPredictor.untrained(rng=rng)
        f = features(15.0, -4.0, 0.2)
        batch = predictor.predict_batch(f.as_array(20).reshape(1, -1))
        assert batch[0] == pytest.approx(predictor.predict_delta(f, 20))


class _StepPredictor:
    """Deterministic test oracle: delta drops below the threshold at k >= k_effective."""

    def __init__(self, k_effective: int, low: float = 2.0, high: float = 30.0):
        self.k_effective = k_effective
        self.low = low
        self.high = high

    def predict_delta(self, features, k):
        return self.low if k >= self.k_effective else self.high


class TestSafetyHijackerDecision:
    def test_no_attack_when_even_kmax_is_safe(self):
        hijacker = SafetyHijacker(_StepPredictor(k_effective=10_000))
        decision = hijacker.decide(features(), AttackVector.MOVE_OUT, ActorKind.VEHICLE)
        assert not decision.attack
        assert decision.k_frames == 0

    def test_attack_uses_minimal_sufficient_window(self):
        hijacker = SafetyHijacker(_StepPredictor(k_effective=30))
        decision = hijacker.decide(features(), AttackVector.MOVE_OUT, ActorKind.VEHICLE)
        assert decision.attack
        assert 30 <= decision.k_frames <= 33

    def test_binary_search_matches_scan_for_monotone_oracle(self):
        scan = SafetyHijacker(_StepPredictor(k_effective=24), SafetyHijackerConfig(search_method="scan"))
        binary = SafetyHijacker(
            _StepPredictor(k_effective=24), SafetyHijackerConfig(search_method="binary")
        )
        k_scan = scan.decide(features(), AttackVector.DISAPPEAR, ActorKind.VEHICLE).k_frames
        k_binary = binary.decide(features(), AttackVector.DISAPPEAR, ActorKind.VEHICLE).k_frames
        assert abs(k_scan - k_binary) <= SafetyHijackerConfig().scan_step_frames

    def test_k_never_exceeds_stealth_bound(self):
        config = SafetyHijackerConfig()
        hijacker = SafetyHijacker(_StepPredictor(k_effective=1), config)
        for kind in ActorKind:
            decision = hijacker.decide(features(), AttackVector.DISAPPEAR, kind)
            assert decision.k_frames <= config.k_max_for(kind)

    def test_pedestrian_stealth_bound_smaller_than_vehicle(self):
        config = SafetyHijackerConfig()
        assert config.k_max_for(ActorKind.PEDESTRIAN) < config.k_max_for(ActorKind.VEHICLE)
        # The defaults follow the characterized 99th percentiles of Fig. 5.
        assert config.k_max_for(ActorKind.PEDESTRIAN) == 31
        assert config.k_max_for(ActorKind.VEHICLE) == 59

    def test_launch_thresholds_per_vector(self):
        config = SafetyHijackerConfig()
        assert config.threshold_for(AttackVector.MOVE_OUT) == config.threshold_for(
            AttackVector.DISAPPEAR
        )
        assert config.threshold_for(AttackVector.MOVE_IN) != config.threshold_for(
            AttackVector.MOVE_OUT
        )

    def test_kinematic_predictor_end_to_end_decision(self):
        hijacker = SafetyHijacker(KinematicSafetyPredictor(AttackVector.DISAPPEAR))
        far = hijacker.decide(features(delta=60.0, v_rel=-1.0), AttackVector.DISAPPEAR, ActorKind.VEHICLE)
        near = hijacker.decide(features(delta=8.0, v_rel=-5.0), AttackVector.DISAPPEAR, ActorKind.VEHICLE)
        assert not far.attack
        assert near.attack

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SafetyHijackerConfig(search_method="magic")
        with pytest.raises(ValueError):
            SafetyHijackerConfig(k_min_frames=0)

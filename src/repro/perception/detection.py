"""The simulated object detector (stand-in for YOLOv3).

Paper §VI-A characterizes YOLOv3 on simulated driving video and finds that

* objects are continuously misdetected for bursts whose lengths follow an
  exponential distribution (different parameters for vehicles and
  pedestrians), and
* the predicted bounding-box centres deviate from the ground truth by a
  Gaussian-distributed error when normalized by the box size.

The :class:`SimulatedDetector` is a statistical model with exactly these two
behaviours.  The attack's stealth bounds are derived from the same noise model
(the trajectory hijacker limits its per-frame shift to one standard deviation
of the centre noise, and the safety hijacker caps the attack window at the
99th percentile of the misdetection-burst distribution), so the detector and
the attacker remain mutually consistent by construction — the property the
paper relies on for evading the intrusion-detection system.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.geometry import BoundingBox
from repro.sensors.camera import CameraFrame
from repro.sim.actors import ActorKind

__all__ = [
    "Detection",
    "DetectorNoiseModel",
    "DetectorConfig",
    "DetectorDegradation",
    "SimulatedDetector",
]


@dataclass(frozen=True)
class Detection:
    """One detector output: a class label, a bounding box, and a confidence.

    ``actor_id`` records which simulated actor generated the detection.  It is
    simulation bookkeeping used by the noise model and the metrics; the
    perception pipeline's association logic never reads it.
    """

    kind: ActorKind
    bbox: BoundingBox
    confidence: float
    actor_id: int


@dataclass(frozen=True)
class DetectorNoiseModel:
    """Per-class statistical behaviour of the detector.

    ``center_noise_sigma_x`` / ``center_noise_sigma_y`` are the standard
    deviations of the bounding-box centre error normalized by the box width /
    height (the quantity plotted in paper Fig. 5c-f).  ``misdetection_*``
    parameterize the burst model: each frame a detected object starts a
    misdetection burst with probability ``misdetection_start_probability``;
    burst lengths follow a shifted exponential with the given 99th percentile.
    """

    center_noise_mu_x: float
    center_noise_sigma_x: float
    center_noise_mu_y: float
    center_noise_sigma_y: float
    misdetection_start_probability: float
    misdetection_burst_p99_frames: float

    def __post_init__(self) -> None:
        if self.center_noise_sigma_x < 0 or self.center_noise_sigma_y < 0:
            raise ValueError("noise sigmas must be non-negative")
        if not 0.0 <= self.misdetection_start_probability < 1.0:
            raise ValueError("misdetection start probability must be in [0, 1)")
        if self.misdetection_burst_p99_frames < 1.0:
            raise ValueError("burst 99th percentile must be at least one frame")

    @property
    def burst_rate(self) -> float:
        """Rate of the shifted exponential burst-length distribution.

        Solved from ``p99 = loc + ln(100) / rate`` with ``loc = 1`` (a burst is
        at least one frame long).
        """
        return float(np.log(100.0) / max(self.misdetection_burst_p99_frames - 1.0, 1e-6))

    @staticmethod
    def vehicle_default() -> "DetectorNoiseModel":
        """Default vehicle noise model.

        The misdetection 99th percentile (59 frames) matches paper Fig. 5b; the
        centre-noise sigmas keep the mean/std ordering of Fig. 5c-d (vehicles
        are localized more precisely than pedestrians) at a magnitude the
        Kalman tracker can smooth.
        """
        return DetectorNoiseModel(
            center_noise_mu_x=0.02,
            center_noise_sigma_x=0.12,
            center_noise_mu_y=0.03,
            center_noise_sigma_y=0.10,
            misdetection_start_probability=0.004,
            misdetection_burst_p99_frames=59.0,
        )

    @staticmethod
    def pedestrian_default() -> "DetectorNoiseModel":
        """Default pedestrian noise model (wider centre noise, shorter bursts).

        The misdetection 99th percentile (31 frames) matches paper Fig. 5a; the
        centre noise is wider than for vehicles, matching the ordering of
        Fig. 5e-f.
        """
        return DetectorNoiseModel(
            center_noise_mu_x=0.04,
            center_noise_sigma_x=0.28,
            center_noise_mu_y=0.03,
            center_noise_sigma_y=0.12,
            misdetection_start_probability=0.006,
            misdetection_burst_p99_frames=31.0,
        )


@dataclass(frozen=True)
class DetectorConfig:
    """Noise models per object class plus global detector parameters."""

    vehicle_noise: DetectorNoiseModel = field(default_factory=DetectorNoiseModel.vehicle_default)
    pedestrian_noise: DetectorNoiseModel = field(
        default_factory=DetectorNoiseModel.pedestrian_default
    )
    #: Boxes smaller than this many pixels in height are below the detector's
    #: resolution and are never reported (objects very far away).
    min_bbox_height_px: float = 8.0

    def noise_for(self, kind: ActorKind) -> DetectorNoiseModel:
        """Noise model for an object class."""
        return self.vehicle_noise if kind is ActorKind.VEHICLE else self.pedestrian_noise


@dataclass(frozen=True)
class DetectorDegradation:
    """A parametric weather/visibility degradation applied to a detector.

    Each factor scales one aspect of the base :class:`DetectorConfig` (both
    object classes degrade together, as fog or low light affects the whole
    image).  The identity degradation (all factors 1.0) returns a config equal
    to the base, so sweep axes can include the undegraded detector.

    * ``sigma_scale`` widens the bounding-box centre noise;
    * ``misdetection_scale`` multiplies the per-frame burst start probability;
    * ``burst_scale`` stretches the 99th percentile of burst lengths;
    * ``range_scale`` divides the usable detection range: boxes must be
      ``range_scale`` times taller before the detector reports them.
    """

    sigma_scale: float = 1.0
    misdetection_scale: float = 1.0
    burst_scale: float = 1.0
    range_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("sigma_scale", "misdetection_scale", "burst_scale", "range_scale"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def is_identity(self) -> bool:
        return self == DetectorDegradation()

    def _degrade_noise(self, noise: DetectorNoiseModel) -> DetectorNoiseModel:
        # dataclasses.replace keeps any fields this degradation does not
        # touch (including ones added later) at the base model's values.
        return dataclasses.replace(
            noise,
            center_noise_sigma_x=noise.center_noise_sigma_x * self.sigma_scale,
            center_noise_sigma_y=noise.center_noise_sigma_y * self.sigma_scale,
            misdetection_start_probability=min(
                0.99, noise.misdetection_start_probability * self.misdetection_scale
            ),
            misdetection_burst_p99_frames=max(
                1.0, noise.misdetection_burst_p99_frames * self.burst_scale
            ),
        )

    def apply(self, base: "DetectorConfig | None" = None) -> DetectorConfig:
        """Degrade ``base`` (the default detector when ``None``)."""
        base = base or DetectorConfig()
        return dataclasses.replace(
            base,
            vehicle_noise=self._degrade_noise(base.vehicle_noise),
            pedestrian_noise=self._degrade_noise(base.pedestrian_noise),
            min_bbox_height_px=base.min_bbox_height_px * self.range_scale,
        )


class SimulatedDetector:
    """Statistical stand-in for the YOLOv3 object detector.

    The detector is stateful: each visible object carries a misdetection-burst
    counter so that misdetections are *continuous* runs of frames, matching the
    characterization of paper Fig. 5a-b.
    """

    def __init__(self, config: DetectorConfig | None = None, rng: np.random.Generator | None = None):
        self.config = config or DetectorConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        #: Remaining burst length (frames) per actor id; 0 means detecting.
        self._burst_remaining: Dict[int, int] = {}

    def reset(self) -> None:
        """Clear all per-object burst state."""
        self._burst_remaining.clear()

    def detect(self, frame: CameraFrame) -> List[Detection]:
        """Run the detector on one camera frame."""
        detections: List[Detection] = []
        visible_ids = set()
        for obj in frame.objects:
            visible_ids.add(obj.actor_id)
            noise = self.config.noise_for(obj.kind)
            if obj.bbox.height < self.config.min_bbox_height_px:
                continue
            if self._in_misdetection_burst(obj.actor_id, noise):
                continue
            detections.append(self._noisy_detection(obj.actor_id, obj.kind, obj.bbox, noise))
        # Forget burst state for objects that left the field of view so the
        # state does not grow unboundedly over a long drive.
        for actor_id in list(self._burst_remaining):
            if actor_id not in visible_ids:
                del self._burst_remaining[actor_id]
        return detections

    def _in_misdetection_burst(self, actor_id: int, noise: DetectorNoiseModel) -> bool:
        remaining = self._burst_remaining.get(actor_id, 0)
        if remaining > 0:
            self._burst_remaining[actor_id] = remaining - 1
            return True
        if self._rng.random() < noise.misdetection_start_probability:
            burst_length = 1 + int(self._rng.exponential(1.0 / noise.burst_rate))
            # The current frame consumes one frame of the burst.
            self._burst_remaining[actor_id] = max(0, burst_length - 1)
            return True
        return False

    def _noisy_detection(
        self, actor_id: int, kind: ActorKind, bbox: BoundingBox, noise: DetectorNoiseModel
    ) -> Detection:
        dx = self._rng.normal(noise.center_noise_mu_x, noise.center_noise_sigma_x) * bbox.width
        dy = self._rng.normal(noise.center_noise_mu_y, noise.center_noise_sigma_y) * bbox.height
        size_jitter = float(np.clip(self._rng.normal(1.0, 0.03), 0.85, 1.15))
        noisy_bbox = BoundingBox(
            cx=bbox.cx + dx,
            cy=bbox.cy + dy,
            width=bbox.width * size_jitter,
            height=bbox.height * size_jitter,
        )
        confidence = float(np.clip(self._rng.normal(0.85, 0.08), 0.3, 1.0))
        return Detection(kind=kind, bbox=noisy_bbox, confidence=confidence, actor_id=actor_id)

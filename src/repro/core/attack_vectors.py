"""The three attack vectors of paper §III-C.

* ``MOVE_OUT`` — fool the EV into believing the in-path target object is
  moving out of the ego lane (the EV then accelerates into it);
* ``MOVE_IN`` — fool the EV into believing an off-path target object is moving
  into the ego lane (forcing an emergency brake);
* ``DISAPPEAR`` — fool the EV into believing the target object has vanished
  (same downstream effect as ``MOVE_OUT``).
"""

from __future__ import annotations

import enum

__all__ = ["AttackVector"]


class AttackVector(enum.Enum):
    """Trajectory-hijacking attack vectors."""

    MOVE_OUT = "move_out"
    MOVE_IN = "move_in"
    DISAPPEAR = "disappear"

    @property
    def perturbs_lateral_position(self) -> bool:
        """Whether the vector works by shifting the perceived lateral position."""
        return self in (AttackVector.MOVE_OUT, AttackVector.MOVE_IN)

    @property
    def suppresses_detections(self) -> bool:
        """Whether the vector works by suppressing the object's detections."""
        return self is AttackVector.DISAPPEAR

    @property
    def expected_hazard(self) -> str:
        """The safety hazard the vector is designed to cause."""
        if self is AttackVector.MOVE_IN:
            return "forced emergency braking"
        return "collision with the target object"

    @staticmethod
    def from_string(name: str) -> "AttackVector":
        """Parse a vector from a case-insensitive name such as ``"Move_Out"``."""
        normalized = name.strip().lower()
        for vector in AttackVector:
            if vector.value == normalized or vector.name.lower() == normalized:
                return vector
        raise ValueError(f"unknown attack vector {name!r}")

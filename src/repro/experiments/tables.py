"""Table generators.

* :func:`table1_rows` regenerates the scenario-matching map of paper Table I
  directly from the implemented :class:`ScenarioMatcher` rules.
* :func:`table2_rows` turns a set of campaign results into the rows of paper
  Table II (median attack window K, run counts, emergency-braking and crash
  rates), and :func:`headline_findings` computes the paper's §I headline
  comparisons (RoboTack vs. random baseline, pedestrians vs. vehicles).
* :func:`fusion_defense_rows` / :func:`fusion_defense_from_store` build the
  defense-evaluation table beyond the paper: attack-success rate per
  (scenario, fusion policy) cell, comparing how each fusion-policy victim
  variant degrades the attack (the ROADMAP's fusion-defense workload).
* :func:`search_report_rows` / :func:`search_report_from_store` render a
  falsification search's per-iteration trajectory (best score, elite
  threshold, budget spent) from its durable ``iterations.jsonl`` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attack_vectors import AttackVector
from repro.core.scenario_matcher import ScenarioMatcher
from repro.experiments.campaign import CampaignConfig, run_campaigns
from repro.experiments.metrics import (
    CampaignSummary,
    attack_succeeded,
    combined_rates,
    summarize_campaign,
)
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.store import ExperimentStore
from repro.perception.transforms import WorldObjectEstimate
from repro.runtime import ExecutorLike
from repro.sim.actors import ActorKind
from repro.sim.road import Road

__all__ = [
    "Table1Row",
    "Table2Row",
    "FusionDefenseRow",
    "table1_rows",
    "table2_rows",
    "table2_from_configs",
    "table2_from_store",
    "fusion_defense_rows",
    "fusion_defense_from_store",
    "SearchReportRow",
    "search_report_rows",
    "search_report_from_store",
    "headline_findings",
]


@dataclass(frozen=True)
class Table1Row:
    """One cell row of paper Table I."""

    trajectory: str
    in_ev_lane: bool
    vectors: tuple[str, ...]


@dataclass(frozen=True)
class Table2Row:
    """One row of paper Table II."""

    campaign_id: str
    median_k: float
    n_runs: int
    emergency_braking_count: int
    emergency_braking_rate: float
    crash_count: Optional[int]
    crash_rate: Optional[float]


def _estimate(kind: ActorKind, lateral_m: float, lateral_velocity_mps: float) -> WorldObjectEstimate:
    return WorldObjectEstimate(
        track_id=1,
        actor_id=1,
        kind=kind,
        distance_m=30.0,
        lateral_m=lateral_m,
        relative_longitudinal_velocity_mps=-2.0,
        relative_longitudinal_acceleration_mps2=0.0,
        lateral_velocity_mps=lateral_velocity_mps,
        age_frames=10,
    )


def table1_rows(road: Road | None = None) -> List[Table1Row]:
    """Regenerate the scenario-matching map of paper Table I."""
    road = road or Road()
    matcher = ScenarioMatcher(road)
    rows: List[Table1Row] = []
    # (trajectory label, in-lane lateral, out-of-lane lateral, lateral velocity sign)
    # The in-lane probe sits slightly off the lane centre so that "towards the
    # lane centre" (moving in) versus "away from it" (moving out) is well defined.
    cases = [
        ("Moving In", 0.8, 3.5, -1.0),
        ("Keep", 0.8, 3.5, 0.0),
        ("Moving Out", 0.8, 3.5, 1.0),
    ]
    for label, in_lane_lateral, out_lane_lateral, velocity_sign in cases:
        for in_lane, lateral in ((True, in_lane_lateral), (False, out_lane_lateral)):
            # Lateral velocity towards the lane centre is "moving in".
            if velocity_sign == 0.0:
                lateral_velocity = 0.0
            else:
                towards_center = -1.0 if lateral >= 0 else 1.0
                lateral_velocity = towards_center if velocity_sign < 0 else -towards_center
            estimate = _estimate(ActorKind.VEHICLE, lateral, lateral_velocity)
            vectors = matcher.candidate_vectors(estimate)
            rows.append(
                Table1Row(
                    trajectory=label,
                    in_ev_lane=in_lane,
                    vectors=tuple(v.name for v in vectors),
                )
            )
    return rows


def table2_rows(campaigns: Sequence[CampaignResult]) -> List[Table2Row]:
    """Build the rows of paper Table II from campaign results."""
    rows: List[Table2Row] = []
    for campaign in campaigns:
        summary: CampaignSummary = summarize_campaign(campaign)
        is_move_in = campaign.vector is AttackVector.MOVE_IN
        rows.append(
            Table2Row(
                campaign_id=summary.campaign_id,
                median_k=summary.median_k_frames,
                n_runs=summary.n_runs,
                emergency_braking_count=summary.emergency_braking_count,
                emergency_braking_rate=summary.emergency_braking_rate,
                crash_count=None if is_move_in else summary.accident_count,
                crash_rate=None if is_move_in else summary.accident_rate,
            )
        )
    return rows


def table2_from_configs(
    configs: Sequence[CampaignConfig],
    executor: ExecutorLike = None,
    use_cache: bool = True,
) -> List[Table2Row]:
    """Execute the campaigns (optionally in parallel) and build Table II rows.

    One executor (and thus one worker pool) is shared across every campaign in
    ``configs`` — the parallel path for regenerating the whole table.
    """
    return table2_rows(run_campaigns(configs, use_cache=use_cache, executor=executor))


def table2_from_store(
    store: ExperimentStore,
    configs: Optional[Sequence[CampaignConfig]] = None,
    allow_partial: bool = False,
) -> List[Table2Row]:
    """Build Table II rows from durably stored runs — no re-simulation.

    ``configs`` selects (and orders) specific campaigns; by default every
    campaign recorded in the store contributes a row.  Campaigns whose runs
    were produced by ``repro-campaign`` with ``--store`` (or any
    ``run_campaign(..., store=...)`` call) are read back from JSONL instead
    of being recomputed from in-memory lists or opaque pickles.  Incomplete
    (interrupted, not yet resumed) campaigns raise rather than contributing
    rates computed over a partial run set, unless ``allow_partial=True``.
    """
    if configs is None:
        results = store.campaign_results(allow_partial=allow_partial)
    else:
        results = [
            store.campaign_result(config, allow_partial=allow_partial)
            for config in configs
        ]
    return table2_rows(results)


@dataclass(frozen=True)
class FusionDefenseRow:
    """One (scenario, fusion policy) cell of the defense-evaluation table."""

    scenario_id: str
    fusion_policy: str
    n_campaigns: int
    n_runs: int
    attack_success_count: int
    attack_success_rate: float
    emergency_braking_rate: float

    def format_row(self) -> str:
        """A fixed-width text rendering (one line of the printed table)."""
        return (
            f"{self.scenario_id:<8s} {self.fusion_policy:<18s} "
            f"{self.n_campaigns:>4d} {self.n_runs:>6d} "
            f"{self.attack_success_rate:>8.1%} {self.emergency_braking_rate:>8.1%}"
        )


# The per-run success rule lives in repro.experiments.metrics.attack_succeeded
# (shared with the falsification objectives).


def fusion_defense_rows(
    campaigns: Sequence[Tuple[CampaignConfig, CampaignResult]],
) -> List[FusionDefenseRow]:
    """Aggregate attack success per (scenario, fusion policy) cell.

    Takes (config, result) pairs — the config carries the effective fusion
    policy (``CampaignConfig.fusion_policy``; defaulted configs count as
    ``late``), the result carries the runs.  Rows are sorted by scenario then
    policy, so a sweep over ``fusion.policy`` renders as a compact
    defense-comparison table: which policy degrades attack success, on which
    scenario, at what spurious-braking cost.
    """
    groups: Dict[Tuple[str, str], List[RunResult]] = {}
    campaign_counts: Dict[Tuple[str, str], int] = {}
    for config, result in campaigns:
        key = (config.scenario_id, config.fusion_policy)
        groups.setdefault(key, []).extend(result.runs)
        campaign_counts[key] = campaign_counts.get(key, 0) + 1
    rows: List[FusionDefenseRow] = []
    for scenario_id, policy in sorted(groups):
        runs = groups[(scenario_id, policy)]
        n_runs = len(runs)
        successes = sum(attack_succeeded(run) for run in runs)
        braking = sum(bool(run.emergency_braking) for run in runs)
        rows.append(
            FusionDefenseRow(
                scenario_id=scenario_id,
                fusion_policy=policy,
                n_campaigns=campaign_counts[(scenario_id, policy)],
                n_runs=n_runs,
                attack_success_count=successes,
                attack_success_rate=successes / n_runs if n_runs else 0.0,
                emergency_braking_rate=braking / n_runs if n_runs else 0.0,
            )
        )
    return rows


def fusion_defense_from_store(
    store: ExperimentStore, allow_partial: bool = False
) -> List[FusionDefenseRow]:
    """Build the fusion-defense table from every campaign recorded in a store.

    Reads the store's manifests (which round-trip ``CampaignConfig.fusion``)
    so each stored campaign lands in its (scenario, policy) cell — pre-refactor
    manifests carry no fusion entry and count as the ``late`` default.  Like
    :func:`table2_from_store`, incomplete campaigns raise unless
    ``allow_partial=True``.
    """
    pairs = [
        (config, store.campaign_result(config, allow_partial=allow_partial))
        for _, config in sorted(store.manifests().items())
    ]
    return fusion_defense_rows(pairs)


@dataclass(frozen=True)
class SearchReportRow:
    """One iteration of a falsification search, as recorded in the store."""

    iteration: int
    sampler: str
    objective: str
    n_points: int
    n_runs: int
    runs_spent_after: int
    elite_threshold: float
    best_score: float
    best_score_so_far: float
    reached_target: bool
    best_assignment: Dict[str, object]

    def format_row(self) -> str:
        """A fixed-width text rendering (one line of the printed table)."""
        marker = " *" if self.reached_target else ""
        return (
            f"{self.iteration:>4d} {self.n_points:>6d} {self.runs_spent_after:>10d} "
            f"{self.elite_threshold:>8.3f} {self.best_score:>8.3f} "
            f"{self.best_score_so_far:>8.3f}{marker}"
        )


def search_report_rows(records: Sequence[Dict[str, object]]) -> List[SearchReportRow]:
    """Turn a search's iteration records into report rows.

    ``records`` is what :meth:`ExperimentStore.load_search_iterations`
    returns — already iteration-sorted and deduplicated (last write wins), so
    a search that replayed an iteration after a crash still yields one row
    per iteration.
    """
    rows: List[SearchReportRow] = []
    for record in records:
        points = record.get("points", [])
        best_assignment: Dict[str, object] = {}
        if points:
            best_point = max(points, key=lambda p: (p["score"], -p["point_index"]))
            best_assignment = dict(best_point["assignment"])
        rows.append(
            SearchReportRow(
                iteration=int(record["iteration"]),
                sampler=str(record["sampler"]),
                objective=str(record["objective"]),
                n_points=int(record["n_points"]),
                n_runs=int(record["n_runs"]),
                runs_spent_after=int(record["runs_spent_after"]),
                elite_threshold=float(record["elite_threshold"]),
                best_score=float(record["best_score"]),
                best_score_so_far=float(record["best_score_so_far"]),
                reached_target=bool(record["reached_target"]),
                best_assignment=best_assignment,
            )
        )
    return rows


def search_report_from_store(
    store: ExperimentStore, search_hash: str
) -> List[SearchReportRow]:
    """Build the search-report table for one stored search, by its hash."""
    return search_report_rows(store.load_search_iterations(search_hash))


def headline_findings(
    robotack_campaigns: Sequence[CampaignResult],
    random_campaign: CampaignResult,
) -> Dict[str, float]:
    """Compute the paper's §I headline comparisons from campaign results.

    Keys:

    * ``robotack_eb_rate`` / ``random_eb_rate`` and their ratio
      (paper: 75.2 % vs 2.3 %, a 33x improvement);
    * ``robotack_crash_rate`` / ``random_crash_rate`` (paper: 52.6 % vs 0 %);
    * ``pedestrian_success_rate`` / ``vehicle_success_rate``
      (paper: 84.1 % vs 31.7 %).
    """
    eb_rate, crash_rate = combined_rates(robotack_campaigns)
    random_eb = random_campaign.emergency_braking_rate
    random_crash = random_campaign.accident_rate

    pedestrian_runs = [
        r
        for c in robotack_campaigns
        for r in c.runs
        if r.target_kind is ActorKind.PEDESTRIAN
    ]
    vehicle_runs = [
        r for c in robotack_campaigns for r in c.runs if r.target_kind is ActorKind.VEHICLE
    ]

    def success_rate(runs) -> float:
        if not runs:
            return 0.0
        # A run counts as a success when it produced the hazard the vector
        # aims for: an accident for Move_Out/Disappear, emergency braking for
        # Move_In (paper §VI-C) — the shared attack_succeeded rule.
        return sum(attack_succeeded(run) for run in runs) / len(runs)

    eb_ratio = eb_rate / random_eb if random_eb > 0 else float("inf")
    return {
        "robotack_eb_rate": eb_rate,
        "robotack_crash_rate": crash_rate,
        "random_eb_rate": random_eb,
        "random_crash_rate": random_crash,
        "eb_improvement_ratio": eb_ratio,
        "pedestrian_success_rate": success_rate(pedestrian_runs),
        "vehicle_success_rate": success_rate(vehicle_runs),
    }

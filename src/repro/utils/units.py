"""Unit conversion helpers.

All internal quantities are SI (metres, seconds, m/s, m/s^2).  The driving
scenarios in the paper quote speeds in km/h (e.g. the 45 kph cruise speed on
Borregas Avenue), so scenario builders convert at the boundary.
"""

from __future__ import annotations

__all__ = ["kph_to_mps", "mps_to_kph"]

_KPH_PER_MPS = 3.6


def kph_to_mps(kph: float) -> float:
    """Convert kilometres-per-hour to metres-per-second."""
    return kph / _KPH_PER_MPS


def mps_to_kph(mps: float) -> float:
    """Convert metres-per-second to kilometres-per-hour."""
    return mps * _KPH_PER_MPS

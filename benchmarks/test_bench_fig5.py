"""Paper Fig. 5: characterization of the object detector.

Panels (a-b): distribution of continuous misdetection bursts per class
(exponential; the 99th percentile is the attack's stealth bound Kmax).
Panels (c-f): normalized bounding-box centre errors per class (Gaussian).
"""

import pytest

from repro.experiments.characterization import characterize_detector
from repro.sim.actors import ActorKind

#: Paper Fig. 5 reference values.
PAPER_P99_FRAMES = {ActorKind.PEDESTRIAN: 31.0, ActorKind.VEHICLE: 59.4}


@pytest.fixture(scope="module")
def characterization_report():
    return characterize_detector(duration_s=240.0, seed=99)


def test_fig5_detector_characterization(benchmark, characterization_report):
    # The heavy drive is computed once (module fixture); the benchmark times a
    # shorter characterization pass so the figure remains cheap to regenerate.
    benchmark.pedantic(
        characterize_detector, kwargs={"duration_s": 30.0, "seed": 7}, rounds=1, iterations=1
    )
    report = characterization_report

    print("\n=== Fig. 5: detector characterization (reproduced vs paper) ===")
    for kind in (ActorKind.PEDESTRIAN, ActorKind.VEHICLE):
        c = report.per_class[kind]
        print(
            f"{kind.value:<11s} misdetection bursts: Exp(loc=1, rate={c.misdetection_burst_fit.rate:.3f}) "
            f"p99={c.misdetection_burst_p99:5.1f} frames (paper p99={PAPER_P99_FRAMES[kind]:.1f}) "
            f"| bbox centre dx: N({c.center_error_x_fit.mu:+.3f}, {c.center_error_x_fit.sigma:.3f}) "
            f"dy: N({c.center_error_y_fit.mu:+.3f}, {c.center_error_y_fit.sigma:.3f})"
        )
        print(
            f"{'':<11s} implied Kmax = {report.k_max_frames(kind)} frames "
            f"(frames observed: {c.n_frames_observed})"
        )

    vehicle = report.per_class[ActorKind.VEHICLE]
    pedestrian = report.per_class[ActorKind.PEDESTRIAN]
    # Shape checks against the paper: pedestrian centre noise is wider, and the
    # pedestrian stealth window (burst p99) is shorter than the vehicle one.
    assert pedestrian.center_error_x_fit.sigma > vehicle.center_error_x_fit.sigma
    assert report.k_max_frames(ActorKind.PEDESTRIAN) <= report.k_max_frames(ActorKind.VEHICLE)
    # Both classes are detected most of the time (misdetections are bursts, not the norm).
    assert vehicle.misdetection_burst_fit.n_samples > 0
    assert pedestrian.misdetection_burst_fit.n_samples > 0

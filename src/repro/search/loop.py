"""The closed-loop falsification driver.

:class:`FalsificationLoop` turns the repo from a replay harness into an
attack-discovery system: each iteration it asks an
:class:`~repro.search.samplers.AdaptiveSampler` for a batch of parameter
assignments, expands them into campaigns (one per point, exactly like the
sweep engine), executes them through the ordinary runtime — serial or
parallel executors, scalar or vectorized batch engine — scores the stored
outcomes with an :class:`~repro.search.objectives.Objective`, and feeds the
scores back so the next proposal moves toward the attack-success boundary.

Durability mirrors the model registry's content-addressed discipline.  A
search is addressed by the SHA-256 of its complete specification
(:func:`search_spec_hash`), and everything lives under the store root at
``searches/<search_hash>/``:

* ``manifest.json`` — the spec, written once;
* ``state.json`` — the resume checkpoint, atomically rewritten at two points
  per iteration: right *after* proposing (phase ``"proposed"``, carrying the
  pending assignments and the sampler state with its RNG already advanced)
  and right *after* observing (phase ``"observed"``);
* ``iterations.jsonl`` — one appended record per completed iteration (the
  material behind the ``search_report`` table).

Because the checkpoint is written before any simulation of an iteration
starts, a search killed mid-iteration — even with SIGKILL — resumes *without
re-proposing*: the pending batch is replayed verbatim, the store skips every
run already on disk, and the final sampler state is bit-identical to an
uninterrupted search.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.campaign import (
    DEFAULT_BATCH_SIZE,
    CampaignConfig,
    StoreLike,
    resolve_store,
    run_campaigns,
)
from repro.experiments.store import (
    ExperimentStore,
    OutcomeSummary,
    RunOutcome,
    config_hash,
)
from repro.runtime import ExecutorLike, resolve_executor
from repro.runtime.cache import encode_key
from repro.search.objectives import Objective, build_objective
from repro.search.samplers import AdaptiveSampler, build_search_sampler
from repro.sim.sweeps import Assignment, Choice, ParameterSpace, Uniform, expand_campaigns

__all__ = [
    "SearchSpec",
    "SearchResult",
    "FalsificationLoop",
    "search_spec_hash",
    "axes_to_json",
    "axes_from_json",
    "run_falsification_search",
]


def axes_to_json(space: ParameterSpace) -> Dict[str, Dict[str, object]]:
    """A JSON-safe rendering of a space's axes (search-manifest provenance)."""
    payload: Dict[str, Dict[str, object]] = {}
    for path in space.paths():
        spec = space.spec(path)
        if isinstance(spec, Uniform):
            payload[path] = {
                "kind": "uniform",
                "low": spec.low,
                "high": spec.high,
                "grid_points": spec.grid_points,
            }
        else:
            payload[path] = {"kind": "choice", "values": list(spec.values)}
    return payload


def axes_from_json(payload: Mapping[str, Mapping[str, object]]) -> ParameterSpace:
    """Invert :func:`axes_to_json` (how stored searches rebuild their space)."""
    axes: Dict[str, object] = {}
    for path, spec in payload.items():
        if spec["kind"] == "uniform":
            axes[path] = Uniform(
                float(spec["low"]), float(spec["high"]), int(spec["grid_points"])
            )
        elif spec["kind"] == "choice":
            axes[path] = Choice(tuple(spec["values"]))
        else:
            raise ValueError(f"unknown axis kind {spec['kind']!r} for {path!r}")
    return ParameterSpace(axes)


@dataclass(frozen=True)
class SearchSpec:
    """The complete, content-addressable specification of one search.

    ``base`` is the campaign template every proposed point clones
    (``base.n_runs`` seeded runs per point — the per-point sample size);
    ``budget_runs`` caps the *total* number of simulation runs the search may
    spend; ``batch_points`` is the proposal batch per iteration;
    ``target_score`` stops the search early once any point scores at or above
    it (``None`` = spend the whole budget).
    """

    base: CampaignConfig
    space: ParameterSpace
    sampler: str = "ce"
    objective: str = "attack_success"
    budget_runs: int = 300
    batch_points: int = 8
    seed: int = 0
    target_score: Optional[float] = None
    sampler_options: Mapping[str, object] = field(default_factory=dict)
    objective_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_points < 1:
            raise ValueError("batch_points must be positive")
        if self.budget_runs < self.base.n_runs:
            raise ValueError(
                f"budget_runs={self.budget_runs} cannot fund a single point "
                f"({self.base.n_runs} runs per point)"
            )
        if self.target_score is not None and not 0.0 <= self.target_score <= 1.0:
            raise ValueError("target_score must lie in [0, 1]")

    def to_json_dict(self) -> Dict[str, object]:
        """The manifest payload (provenance; resume keys off the hash)."""
        return {
            "base": self.base.to_json_dict(),
            "base_config_hash": config_hash(self.base),
            "axes": axes_to_json(self.space),
            "sampler": self.sampler,
            "objective": self.objective,
            "budget_runs": self.budget_runs,
            "batch_points": self.batch_points,
            "seed": self.seed,
            "target_score": self.target_score,
            "sampler_options": dict(self.sampler_options),
            "objective_options": dict(self.objective_options),
        }


def search_spec_hash(spec: SearchSpec) -> str:
    """Content address of a search: SHA-256 over its canonical spec encoding.

    Two specs that could search differently never share a hash; the same
    logical spec hashes identically in every process — which is what lets
    ``repro-campaign search`` auto-resume by simply re-deriving the address.
    """
    key = (
        config_hash(spec.base),
        dict(spec.space.axes),
        spec.sampler,
        spec.objective,
        spec.budget_runs,
        spec.batch_points,
        spec.seed,
        spec.target_score,
        dict(spec.sampler_options),
        dict(spec.objective_options),
    )
    return hashlib.sha256(encode_key(key).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated point: the assignment, its campaign, and its score."""

    iteration: int
    point_index: int
    assignment: Assignment
    campaign_id: str
    config_hash: str
    n_runs: int
    score: float
    summary: OutcomeSummary


@dataclass
class SearchResult:
    """What a finished (or budget-exhausted) search found."""

    search_hash: str
    spec: SearchSpec
    iterations_completed: int
    runs_spent: int
    reached_target: bool
    best_score: float
    best_assignment: Optional[Assignment]
    best_config_hash: Optional[str]
    #: Every point of the final iteration at or above the elite threshold —
    #: the current estimate of the attack-success boundary region.
    elite_front: List[SearchPoint] = field(default_factory=list)
    points: List[SearchPoint] = field(default_factory=list)


class FalsificationLoop:
    """Drive one search spec to completion against an experiment store.

    ``executor`` / ``engine`` / ``batch_size`` pass straight through to
    :func:`~repro.experiments.campaign.run_campaigns`, so a search fans out
    over worker processes and lockstep batch-simulator lanes exactly like a
    sweep does.  Construction is cheap; :meth:`run` does the work and may be
    called again after an interruption (it reloads the checkpoint).
    """

    def __init__(
        self,
        spec: SearchSpec,
        store: StoreLike,
        executor: ExecutorLike = None,
        engine: str = "scalar",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        resolved = resolve_store(store)
        if resolved is None:
            raise ValueError(
                "a falsification search needs an experiment store: the store "
                "carries its outcome feedback, checkpoints, and report"
            )
        self.spec = spec
        self.store: ExperimentStore = resolved
        self.executor = executor
        self.engine = engine
        self.batch_size = batch_size
        self.search_hash = search_spec_hash(spec)
        self._elite_frac = float(
            spec.sampler_options.get("elite_frac", 0.25)  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #

    def _configs_for(
        self, iteration: int, assignments: Sequence[Assignment]
    ) -> List[CampaignConfig]:
        base = dataclasses.replace(
            self.spec.base,
            campaign_id=f"{self.spec.base.campaign_id}-i{iteration:03d}",
        )
        return expand_campaigns(base, assignments)

    def _save_state(
        self,
        phase: str,
        sampler: AdaptiveSampler,
        iteration: int,
        runs_spent: int,
        best: Dict[str, object],
        pending: Optional[Dict[str, object]],
        reached_target: bool,
    ) -> None:
        self.store.save_search_state(
            self.search_hash,
            {
                "phase": phase,
                "iteration": iteration,
                "runs_spent": runs_spent,
                "reached_target": reached_target,
                "best": best,
                "sampler": sampler.state_dict(),
                "pending": pending,
            },
        )

    def _score_points(
        self,
        objective: Objective,
        iteration: int,
        assignments: Sequence[Assignment],
        configs: Sequence[CampaignConfig],
    ) -> List[SearchPoint]:
        hashes = [config_hash(config) for config in configs]
        # Filtered aggregation: only this iteration's logs are scanned, not
        # the whole store — the incremental-query contract of aggregate().
        batch = self.store.aggregate(config_hashes=hashes)
        points: List[SearchPoint] = []
        for index, (assignment, config, hash_) in enumerate(
            zip(assignments, configs, hashes)
        ):
            by_index = batch.outcomes.get(hash_, {})
            outcomes: List[RunOutcome] = [by_index[i] for i in sorted(by_index)]
            points.append(
                SearchPoint(
                    iteration=iteration,
                    point_index=index,
                    assignment=dict(assignment),
                    campaign_id=config.campaign_id,
                    config_hash=hash_,
                    n_runs=len(outcomes),
                    score=float(objective.score(outcomes)),
                    summary=batch.summary(hash_),
                )
            )
        return points

    def _elite_threshold(self, scores: Sequence[float]) -> float:
        n_elite = max(1, int(round(self._elite_frac * len(scores))))
        ordered = sorted(scores, reverse=True)
        return float(ordered[n_elite - 1])

    # ------------------------------------------------------------------ #

    def run(self, max_iterations: Optional[int] = None) -> SearchResult:
        """Execute (or resume) the search until budget, target, or cap.

        ``max_iterations`` bounds how many iterations *this call* executes
        (``None`` = until the budget or target stops the search) — the knob
        tests and step-wise drivers use.
        """
        spec = self.spec
        self.store.write_search_manifest(self.search_hash, {"spec": spec.to_json_dict()})
        objective = build_objective(spec.objective, **dict(spec.objective_options))
        sampler = build_search_sampler(
            spec.sampler, spec.space, seed=spec.seed, **dict(spec.sampler_options)
        )

        iteration = 0
        runs_spent = 0
        reached_target = False
        best: Dict[str, object] = {"score": None, "assignment": None, "config_hash": None}
        pending: Optional[Dict[str, object]] = None
        state = self.store.load_search_state(self.search_hash)
        if state is not None:
            sampler.load_state_dict(state["sampler"])  # type: ignore[arg-type]
            iteration = int(state["iteration"])
            runs_spent = int(state["runs_spent"])
            reached_target = bool(state["reached_target"])
            best = dict(state["best"])  # type: ignore[arg-type]
            pending = state["pending"]  # type: ignore[assignment]

        all_points: List[SearchPoint] = []
        last_iteration_points: List[SearchPoint] = []
        iterations_this_call = 0
        executor = resolve_executor(self.executor)
        try:
            while True:
                if reached_target and pending is None:
                    break
                if max_iterations is not None and iterations_this_call >= max_iterations:
                    break
                if pending is None:
                    n_points = min(
                        spec.batch_points,
                        (spec.budget_runs - runs_spent) // spec.base.n_runs,
                    )
                    if n_points < 1:
                        break
                    assignments = sampler.propose(n_points)
                    pending = {"iteration": iteration, "assignments": assignments}
                    # Checkpoint *before* simulating: the sampler state already
                    # carries the advanced RNG and the pending units, so a kill
                    # anywhere past this line resumes without re-proposing.
                    self._save_state(
                        "proposed", sampler, iteration, runs_spent, best,
                        pending, reached_target,
                    )
                else:
                    iteration = int(pending["iteration"])
                    assignments = [
                        dict(assignment) for assignment in pending["assignments"]  # type: ignore[union-attr]
                    ]
                configs = self._configs_for(iteration, assignments)
                run_campaigns(
                    configs,
                    use_cache=False,
                    executor=executor,
                    store=self.store,
                    engine=self.engine,
                    batch_size=self.batch_size,
                )
                points = self._score_points(objective, iteration, assignments, configs)
                scores = [point.score for point in points]
                sampler.observe(assignments, scores)
                runs_spent += sum(config.n_runs for config in configs)

                best_index = int(np.argmax(scores))
                if best["score"] is None or scores[best_index] > float(best["score"]):  # type: ignore[arg-type]
                    best = {
                        "score": scores[best_index],
                        "assignment": dict(assignments[best_index]),
                        "config_hash": points[best_index].config_hash,
                    }
                if spec.target_score is not None and float(best["score"]) >= spec.target_score:  # type: ignore[arg-type]
                    reached_target = True

                elite_threshold = self._elite_threshold(scores)
                self.store.append_search_iteration(
                    self.search_hash,
                    {
                        "iteration": iteration,
                        "sampler": spec.sampler,
                        "objective": spec.objective,
                        "n_points": len(points),
                        "n_runs": sum(config.n_runs for config in configs),
                        "runs_spent_after": runs_spent,
                        "elite_threshold": elite_threshold,
                        "best_score": scores[best_index],
                        "best_score_so_far": best["score"],
                        "reached_target": reached_target,
                        "points": [
                            {
                                "point_index": point.point_index,
                                "assignment": point.assignment,
                                "campaign_id": point.campaign_id,
                                "config_hash": point.config_hash,
                                "n_runs": point.n_runs,
                                "score": point.score,
                                "success_rate": point.summary.success_rate,
                            }
                            for point in points
                        ],
                    },
                )
                # Observed-phase checkpoint lands *after* the iteration record:
                # a kill between the two replays the iteration idempotently
                # (same record content, last write wins on the iteration key).
                iteration += 1
                pending = None
                self._save_state(
                    "observed", sampler, iteration, runs_spent, best, None,
                    reached_target,
                )
                all_points.extend(points)
                last_iteration_points = points
                iterations_this_call += 1
        finally:
            if executor is not self.executor:
                executor.close()

        elite_front: List[SearchPoint] = []
        if last_iteration_points:
            threshold = self._elite_threshold(
                [point.score for point in last_iteration_points]
            )
            elite_front = [
                point for point in last_iteration_points if point.score >= threshold
            ]
        return SearchResult(
            search_hash=self.search_hash,
            spec=spec,
            iterations_completed=iteration,
            runs_spent=runs_spent,
            reached_target=reached_target,
            best_score=float(best["score"]) if best["score"] is not None else float("nan"),  # type: ignore[arg-type]
            best_assignment=best["assignment"],  # type: ignore[arg-type]
            best_config_hash=best["config_hash"],  # type: ignore[arg-type]
            elite_front=elite_front,
            points=all_points,
        )


def run_falsification_search(
    spec: SearchSpec,
    store: StoreLike,
    executor: ExecutorLike = None,
    engine: str = "scalar",
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_iterations: Optional[int] = None,
) -> SearchResult:
    """One-call convenience wrapper around :class:`FalsificationLoop`."""
    loop = FalsificationLoop(
        spec, store, executor=executor, engine=engine, batch_size=batch_size
    )
    return loop.run(max_iterations=max_iterations)

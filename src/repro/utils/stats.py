"""Distribution fitting and summary statistics for the evaluation harness.

The paper characterizes the YOLOv3 detector with two families of
distributions (Fig. 5):

* continuous misdetection burst lengths -> shifted exponential
  ``Exp(loc=1, lambda)``;
* normalized bounding-box centre errors -> Gaussian ``Normal(mu, sigma)``.

This module provides the fitting routines used to regenerate those panels,
plus boxplot summaries used for Fig. 6 / Fig. 7 style results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ExponentialFit",
    "NormalFit",
    "BoxplotStats",
    "fit_exponential",
    "fit_normal",
    "boxplot_stats",
    "percentile",
]


@dataclass(frozen=True)
class ExponentialFit:
    """Maximum-likelihood fit of a shifted exponential distribution.

    The density is ``lambda * exp(-lambda * (x - loc))`` for ``x >= loc``.
    """

    loc: float
    rate: float
    n_samples: int

    @property
    def mean(self) -> float:
        """Mean of the fitted distribution."""
        return self.loc + 1.0 / self.rate

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        p = q / 100.0
        return self.loc - np.log(1.0 - p) / self.rate

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted density at ``x``."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        mask = x >= self.loc
        out[mask] = self.rate * np.exp(-self.rate * (x[mask] - self.loc))
        return out


@dataclass(frozen=True)
class NormalFit:
    """Moment fit of a univariate Gaussian."""

    mu: float
    sigma: float
    n_samples: int

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        from scipy.stats import norm

        return float(norm.ppf(q / 100.0, loc=self.mu, scale=self.sigma))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted density at ``x``."""
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2.0 * np.pi))


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number summary used to report Fig. 6 / Fig. 7 distributions."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n_samples: int


def fit_exponential(samples: Sequence[float], loc: float | None = None) -> ExponentialFit:
    """Fit a shifted exponential distribution to ``samples``.

    When ``loc`` is ``None`` the minimum of the samples is used as the shift,
    matching the ``loc=1`` convention of the paper (burst lengths are >= 1
    frame).
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit an exponential distribution to zero samples")
    if loc is None:
        loc = float(data.min())
    excess = data - loc
    if np.any(excess < -1e-9):
        raise ValueError("samples fall below the provided loc")
    mean_excess = float(np.mean(np.maximum(excess, 0.0)))
    if mean_excess <= 0.0:
        # Degenerate data (all samples equal to loc); use a very high rate.
        rate = 1e6
    else:
        rate = 1.0 / mean_excess
    return ExponentialFit(loc=float(loc), rate=float(rate), n_samples=int(data.size))


def fit_normal(samples: Sequence[float]) -> NormalFit:
    """Fit a Gaussian to ``samples`` by the method of moments."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit a normal distribution to zero samples")
    mu = float(np.mean(data))
    sigma = float(np.std(data))
    if sigma <= 0.0:
        sigma = 1e-9
    return NormalFit(mu=mu, sigma=sigma, n_samples=int(data.size))


def boxplot_stats(samples: Sequence[float]) -> BoxplotStats:
    """Compute the five-number summary (plus mean) of ``samples``."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize zero samples")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    return BoxplotStats(
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
        mean=float(data.mean()),
        n_samples=int(data.size),
    )


def percentile(samples: Sequence[float], q: float) -> float:
    """Empirical percentile of ``samples`` (``q`` in [0, 100])."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute percentile of zero samples")
    return float(np.percentile(data, q))

"""Micro-benchmarks for the computational substrates.

These are conventional pytest-benchmark measurements (many rounds) of the
hot inner loops: the perception pipeline step, Hungarian matching, the safety
hijacker's NN inference, and a full golden simulation run.  The paper stresses
that RoboTack's footprint must stay small to evade resource monitoring
(§IV-D), so the attacker-side reconstruction step is measured as well.
"""

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.robotack import RoboTackConfig
from repro.core.safety_hijacker import (
    AttackFeatures,
    NeuralSafetyPredictor,
    SafetyHijacker,
)
from repro.core.robotack import RoboTack
from repro.experiments.campaign import build_ads_agent
from repro.perception.hungarian import hungarian_assignment
from repro.perception.pipeline import PerceptionSystem
from repro.sensors.camera import CameraSensor
from repro.sensors.lidar import LidarSensor
from repro.sim.scenarios import ScenarioVariation, build_scenario
from repro.sim.simulator import Simulator


def test_bench_perception_pipeline_step(benchmark):
    scenario = build_scenario("DS-5", ScenarioVariation.nominal())
    camera, lidar = CameraSensor(), LidarSensor(rng=np.random.default_rng(0))
    system = PerceptionSystem(rng=np.random.default_rng(1))
    snapshot = scenario.world.snapshot()
    frame, scan = camera.capture(snapshot), lidar.scan(snapshot)

    benchmark(system.process, frame, scan, 12.5)


def test_bench_hungarian_assignment_10x10(benchmark):
    rng = np.random.default_rng(2)
    cost = rng.random((10, 10))
    benchmark(hungarian_assignment, cost)


def test_bench_safety_hijacker_decision(benchmark):
    predictor = NeuralSafetyPredictor.untrained(rng=np.random.default_rng(3))
    hijacker = SafetyHijacker(predictor)
    features = AttackFeatures(delta_m=15.0, relative_velocity_mps=-4.0, relative_acceleration_mps2=0.0)

    from repro.sim.actors import ActorKind

    benchmark(hijacker.decide, features, AttackVector.DISAPPEAR, ActorKind.VEHICLE)


def test_bench_robotack_frame_processing(benchmark):
    scenario = build_scenario("DS-1", ScenarioVariation.nominal())
    predictor = NeuralSafetyPredictor.untrained(rng=np.random.default_rng(4))
    attacker = RoboTack(
        scenario.road,
        SafetyHijacker(predictor),
        RoboTackConfig(allowed_vectors=(AttackVector.DISAPPEAR,)),
        rng=np.random.default_rng(5),
    )
    camera = CameraSensor()
    frame = camera.capture(scenario.world.snapshot())

    benchmark(attacker.process_frame, frame, 12.5, 1.0 / 15.0)


def test_bench_world_snapshot_ds5(benchmark):
    """The per-step ground-truth snapshot (the call the step loop now makes once)."""
    scenario = build_scenario("DS-5", ScenarioVariation.nominal())
    benchmark(scenario.world.snapshot)


def test_bench_simulation_step_loop(benchmark):
    """Guards the step-loop optimisation: one ``world.snapshot`` per step.

    A short fixed-length DS-1 run (60 steps, no attacker) dominated by the
    per-step loop body; regressions here mean someone re-introduced redundant
    snapshotting (the loop used to build three snapshots per step) or another
    per-step cost.
    """
    from repro.sim.config import SimulationConfig

    def run_short():
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        ads = build_ads_agent(scenario, np.random.default_rng(8))
        simulator = Simulator(
            scenario,
            ads,
            config=SimulationConfig(max_duration_s=4.0),
            rng=np.random.default_rng(9),
        )
        return simulator.run()

    result = benchmark.pedantic(run_short, rounds=3, iterations=1)
    assert result.steps_executed == 60


@pytest.mark.parametrize("scenario_id", ["DS-1", "DS-2"])
def test_bench_full_golden_simulation(benchmark, scenario_id):
    def run_once():
        scenario = build_scenario(scenario_id, ScenarioVariation.nominal())
        ads = build_ads_agent(scenario, np.random.default_rng(6))
        simulator = Simulator(scenario, ads, rng=np.random.default_rng(7))
        return simulator.run()

    result = benchmark.pedantic(run_once, rounds=2, iterations=1)
    assert not result.collision_occurred

"""Tests for the RoboTack orchestrator (Algorithm 1) and the baseline attackers."""

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.baselines import RandomAttacker, RoboTackWithoutSafetyHijacker
from repro.core.robotack import RoboTack, RoboTackConfig
from repro.core.safety_hijacker import KinematicSafetyPredictor, SafetyHijacker
from repro.perception.detection import DetectorConfig, DetectorNoiseModel
from repro.perception.pipeline import PerceptionConfig
from repro.sensors.camera import CameraSensor
from repro.sim.scenarios import ScenarioVariation, build_scenario

FRAME_DT = 1.0 / 15.0


def quiet_noise(base: DetectorNoiseModel) -> DetectorNoiseModel:
    """A nearly noise-free detector model (for deterministic matcher tests)."""
    return DetectorNoiseModel(
        center_noise_mu_x=0.0,
        center_noise_sigma_x=0.005,
        center_noise_mu_y=0.0,
        center_noise_sigma_y=0.005,
        misdetection_start_probability=1e-9,
        misdetection_burst_p99_frames=base.misdetection_burst_p99_frames,
    )


def quiet_config(vector: AttackVector) -> RoboTackConfig:
    """RoboTack configuration whose own perception is essentially noise-free."""
    detector = DetectorConfig(
        vehicle_noise=quiet_noise(DetectorNoiseModel.vehicle_default()),
        pedestrian_noise=quiet_noise(DetectorNoiseModel.pedestrian_default()),
    )
    return RoboTackConfig(
        allowed_vectors=(vector,),
        perception=PerceptionConfig(detector=detector, use_lidar=False),
    )


class _NeverAttackPredictor:
    def predict_delta(self, features, k):
        return 1000.0


def drive_with_attacker(scenario, attacker, n_frames=260, ego_speed=12.5):
    """Feed clean camera frames of a constant-speed drive to the attacker."""
    camera = CameraSensor()
    delivered_frames = []
    for _ in range(n_frames):
        snapshot = scenario.world.snapshot()
        frame = camera.capture(snapshot)
        delivered_frames.append(attacker.process_frame(frame, ego_speed_mps=ego_speed, dt=FRAME_DT))
        scenario.world.step(FRAME_DT, ego_acceleration_mps2=0.0)
    return delivered_frames


def make_robotack(scenario, vector, rng_seed=0):
    predictor = KinematicSafetyPredictor(vector)
    hijacker = SafetyHijacker(predictor)
    config = RoboTackConfig(allowed_vectors=(vector,))
    return RoboTack(scenario.road, hijacker, config, rng=np.random.default_rng(rng_seed))


class TestRoboTack:
    def test_never_attacks_when_oracle_predicts_no_benefit(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        hijacker = SafetyHijacker(_NeverAttackPredictor())
        attacker = RoboTack(
            scenario.road,
            hijacker,
            RoboTackConfig(allowed_vectors=(AttackVector.DISAPPEAR,)),
            rng=np.random.default_rng(0),
        )
        drive_with_attacker(scenario, attacker, n_frames=200)
        assert not attacker.record.launched

    def test_attacks_when_target_close_enough(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = make_robotack(scenario, AttackVector.DISAPPEAR)
        # Driving at constant speed closes the gap until the oracle fires.
        frames = drive_with_attacker(scenario, attacker, n_frames=260)
        assert attacker.record.launched
        assert attacker.record.vector is AttackVector.DISAPPEAR
        assert attacker.record.target_actor_id == scenario.target_actor_id
        assert attacker.record.planned_k_frames > 0
        # During the attack the delivered frames omit the target.
        start = attacker.record.start_frame - 1
        attacked_frame = frames[start]
        assert attacked_frame.object_for_actor(scenario.target_actor_id) is None

    def test_single_episode_per_run(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = make_robotack(scenario, AttackVector.DISAPPEAR)
        drive_with_attacker(scenario, attacker, n_frames=350)
        assert attacker.record.frames_perturbed <= attacker.record.planned_k_frames
        assert not attacker.attack_active
        assert attacker._attack_completed

    def test_respects_scenario_matcher_rules(self):
        # Move_In is not applicable to an in-path lead vehicle that keeps its lane.
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        predictor = KinematicSafetyPredictor(AttackVector.MOVE_IN)
        attacker = RoboTack(
            scenario.road,
            SafetyHijacker(predictor),
            quiet_config(AttackVector.MOVE_IN),
            rng=np.random.default_rng(1),
        )
        drive_with_attacker(scenario, attacker, n_frames=200)
        assert not attacker.record.launched

    def test_attack_record_features_captured(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = make_robotack(scenario, AttackVector.DISAPPEAR)
        drive_with_attacker(scenario, attacker, n_frames=260)
        record = attacker.record
        assert record.features_at_launch is not None
        assert record.features_at_launch.delta_m > 0
        assert np.isfinite(record.predicted_delta_m)


class TestRandomAttacker:
    def test_attacks_at_random_time_with_random_duration(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = RandomAttacker(
            scenario.road,
            RoboTackConfig(allowed_vectors=(AttackVector.DISAPPEAR,)),
            rng=np.random.default_rng(3),
            start_window_frames=(10, 30),
            candidate_target_actor_ids=[scenario.target_actor_id],
        )
        drive_with_attacker(scenario, attacker, n_frames=150)
        assert attacker.record.launched
        assert attacker.record.start_frame >= 10
        assert 15 <= attacker.record.planned_k_frames <= 85

    def test_fizzles_when_chosen_target_not_visible(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = RandomAttacker(
            scenario.road,
            rng=np.random.default_rng(4),
            start_window_frames=(5, 10),
            candidate_target_actor_ids=[10**9],
        )
        drive_with_attacker(scenario, attacker, n_frames=80)
        assert not attacker.record.launched

    def test_invalid_start_window_rejected(self, road):
        with pytest.raises(ValueError):
            RandomAttacker(road, start_window_frames=(50, 10))


class TestRoboTackWithoutSafetyHijacker:
    def test_uses_matcher_but_random_timing(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        attacker = RoboTackWithoutSafetyHijacker(
            scenario.road,
            RoboTackConfig(allowed_vectors=(AttackVector.DISAPPEAR,)),
            rng=np.random.default_rng(5),
            start_window_frames=(20, 40),
        )
        drive_with_attacker(scenario, attacker, n_frames=200)
        assert attacker.record.launched
        assert attacker.record.vector is AttackVector.DISAPPEAR
        # The random timing ignores the safety potential entirely.
        assert np.isnan(attacker.record.predicted_delta_m)

    def test_matcher_blocks_inapplicable_vector(self):
        scenario = build_scenario("DS-3", ScenarioVariation.nominal())
        attacker = RoboTackWithoutSafetyHijacker(
            scenario.road,
            quiet_config(AttackVector.MOVE_OUT),
            rng=np.random.default_rng(6),
            start_window_frames=(20, 40),
        )
        drive_with_attacker(scenario, attacker, n_frames=200)
        # A parked car outside the ego lane cannot be "moved out".
        assert not attacker.record.launched

"""Round-trip tests for network and predictor serialization.

The contract: a saved network (architecture JSON + weights NPZ) reloads to
bit-identical predictions, and a saved :class:`NeuralSafetyPredictor` carries
its input/target standardization with it.
"""

import json

import numpy as np
import pytest

from repro.core.safety_hijacker import AttackFeatures, NeuralSafetyPredictor
from repro.nn import (
    FeedForwardNetwork,
    load_network,
    network_from_spec,
    network_to_spec,
    save_network,
)
from repro.nn.layers import Layer
from repro.nn.serialization import NETWORK_FORMAT


class TestNetworkSpec:
    def test_spec_describes_every_layer(self):
        network = FeedForwardNetwork.safety_hijacker_architecture(
            4, rng=np.random.default_rng(0)
        )
        spec = network_to_spec(network)
        kinds = [entry["kind"] for entry in spec["layers"]]
        assert kinds == [
            "dense", "relu", "dropout",
            "dense", "relu", "dropout",
            "dense", "relu", "dropout",
            "dense",
        ]
        assert spec["layers"][0] == {"kind": "dense", "in_features": 4, "out_features": 100}
        assert spec["layers"][2] == {"kind": "dropout", "rate": 0.1}

    def test_spec_rebuilds_matching_architecture(self):
        network = FeedForwardNetwork.mlp(3, (8, 5), 2, rng=np.random.default_rng(1))
        rebuilt = network_from_spec(network_to_spec(network))
        assert [type(layer) for layer in rebuilt.layers] == [
            type(layer) for layer in network.layers
        ]
        assert rebuilt.num_parameters() == network.num_parameters()

    def test_unknown_layer_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown layer kind"):
            network_from_spec(
                {"format": NETWORK_FORMAT, "version": 1, "layers": [{"kind": "conv"}]}
            )

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="not a serialized network"):
            network_from_spec({"format": "something-else", "layers": []})

    def test_newer_version_rejected(self):
        with pytest.raises(ValueError, match="newer serialization version"):
            network_from_spec({"format": NETWORK_FORMAT, "version": 999, "layers": []})

    def test_unserializable_layer_rejected(self):
        class Custom(Layer):
            pass

        network = FeedForwardNetwork([Custom()])
        with pytest.raises(TypeError, match="cannot serialize layer"):
            network_to_spec(network)


class TestNetworkRoundTrip:
    def test_save_load_predictions_bit_identical(self, tmp_path):
        rng = np.random.default_rng(7)
        network = FeedForwardNetwork.safety_hijacker_architecture(4, rng=rng)
        inputs = rng.normal(size=(32, 4))
        expected = network.predict(inputs)

        save_network(network, tmp_path / "model")
        loaded = load_network(tmp_path / "model")
        np.testing.assert_array_equal(loaded.predict(inputs), expected)

    def test_methods_on_network_delegate(self, tmp_path):
        rng = np.random.default_rng(9)
        network = FeedForwardNetwork.mlp(2, (6,), 1, dropout_rate=0.2, rng=rng)
        inputs = rng.normal(size=(10, 2))
        network.save(tmp_path / "net")
        loaded = FeedForwardNetwork.load(tmp_path / "net")
        np.testing.assert_array_equal(loaded.predict(inputs), network.predict(inputs))

    def test_architecture_file_is_readable_json(self, tmp_path):
        network = FeedForwardNetwork.mlp(2, (3,), 1, rng=np.random.default_rng(0))
        save_network(network, tmp_path / "net")
        with (tmp_path / "net" / "architecture.json").open() as handle:
            spec = json.load(handle)
        assert spec["format"] == NETWORK_FORMAT

    def test_save_is_idempotent_overwrite(self, tmp_path):
        rng = np.random.default_rng(3)
        network = FeedForwardNetwork.mlp(2, (4,), 1, rng=rng)
        save_network(network, tmp_path / "net")
        # Mutate, re-save over the same path: the reload sees the new weights.
        network.layers[0].weights += 1.0
        save_network(network, tmp_path / "net")
        loaded = load_network(tmp_path / "net")
        np.testing.assert_array_equal(
            loaded.layers[0].weights, network.layers[0].weights
        )


class TestPredictorRoundTrip:
    def _trained_like_predictor(self) -> NeuralSafetyPredictor:
        rng = np.random.default_rng(11)
        network = FeedForwardNetwork.safety_hijacker_architecture(4, rng=rng)
        means = np.array([20.0, -3.0, 0.5, 30.0])
        stds = np.array([6.0, 1.5, 0.7, 12.0])
        return NeuralSafetyPredictor(
            network, means, stds, target_mean=14.2, target_std=9.7
        )

    def test_save_load_predict_bit_identical(self, tmp_path):
        predictor = self._trained_like_predictor()
        features = AttackFeatures(
            delta_m=18.0, relative_velocity_mps=-2.5, relative_acceleration_mps2=0.3
        )
        expected = [predictor.predict_delta(features, k) for k in (10, 25, 50)]

        predictor.save(tmp_path / "oracle")
        loaded = NeuralSafetyPredictor.load(tmp_path / "oracle")
        assert [loaded.predict_delta(features, k) for k in (10, 25, 50)] == expected

        raw = np.random.default_rng(2).normal(size=(16, 4)) * 10.0
        np.testing.assert_array_equal(loaded.predict_batch(raw), predictor.predict_batch(raw))

    def test_normalization_survives_round_trip(self, tmp_path):
        predictor = self._trained_like_predictor()
        predictor.save(tmp_path / "oracle")
        loaded = NeuralSafetyPredictor.load(tmp_path / "oracle")
        np.testing.assert_array_equal(loaded.feature_means, predictor.feature_means)
        np.testing.assert_array_equal(loaded.feature_stds, predictor.feature_stds)
        assert loaded.target_mean == predictor.target_mean
        assert loaded.target_std == predictor.target_std

    def test_foreign_document_rejected(self, tmp_path):
        directory = tmp_path / "oracle"
        directory.mkdir()
        (directory / "predictor.json").write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a serialized predictor"):
            NeuralSafetyPredictor.load(directory)

    def test_newer_version_rejected(self, tmp_path):
        predictor = self._trained_like_predictor()
        predictor.save(tmp_path / "oracle")
        path = tmp_path / "oracle" / "predictor.json"
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="newer serialization version"):
            NeuralSafetyPredictor.load(tmp_path / "oracle")

"""Camera/LiDAR sensor fusion.

Sensor fusion provides the spatial redundancy that defends the AV against
single-sensor attacks (paper §III-B): the camera-based estimates are blended
with LiDAR detections, and obstacles are only *registered* in the world model
once enough consistent evidence has accumulated.  Three behaviours matter for
reproducing the paper's findings:

* camera+LiDAR agreement registers an obstacle almost immediately;
* camera-only objects (e.g. pedestrians beyond the LiDAR's effective
  pedestrian range) register after a short persistence window — this is the
  "sensor fusion delays the object registration" effect of §VI-C that makes
  pedestrians the easier target;
* an obstacle whose camera evidence disappears survives for a bounded number
  of frames on LiDAR alone before the fusion drops it (classification and
  association in Apollo are camera-driven); a persistent LiDAR-only return
  will eventually re-register, but slowly.

The fused lateral position is a confidence-weighted blend of the camera and
LiDAR estimates, which is why hijacking the camera trajectory of a vehicle
(still confirmed by LiDAR) needs a larger accumulated shift — and therefore a
longer attack window — than hijacking a pedestrian seen only by the camera.

Fusion policies
---------------

The fusion stage is pluggable: a *fusion policy* is anything with the
``reset()`` / ``step(camera_estimates, lidar_scan, ego_speed_mps,
frame_dt_s) -> List[FusedObstacle]`` interface, registered by name in
:data:`FUSION_POLICIES` and selected through ``FusionConfig.policy``.  Four
built-ins ship as first-class victim variants for defense evaluation:

* ``late`` — the confidence-weighted camera/LiDAR fusion described above
  (:class:`SensorFusion`); the default victim, bit-identical to the
  pre-registry behaviour;
* ``camera_only`` — the camera estimates pass straight through
  (:class:`CameraOnlyFusion`); also what ``use_lidar=False`` resolves to,
  and the pipeline RoboTack runs internally to reconstruct world state;
* ``lidar_only`` — obstacles come from LiDAR returns alone
  (:class:`LidarOnlyFusion`); immune to camera perturbation but blind to
  camera-only objects (distant pedestrians) and classification-poor;
* ``consistency_gated`` — late fusion that down-weights the camera while
  the two modalities disagree laterally (:class:`ConsistencyGatedFusion`),
  a sparse-fusion-style defense whose arbitration is itself an attack
  surface (perturb one modality, exploit the gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.perception.transforms import WorldObjectEstimate
from repro.runtime.registry import Registry
from repro.sensors.lidar import LidarScan
from repro.sim.actors import ActorKind

__all__ = [
    "FusionConfig",
    "FusedObstacle",
    "FusionPolicy",
    "SensorFusion",
    "CameraOnlyFusion",
    "LidarOnlyFusion",
    "ConsistencyGatedFusion",
    "FUSION_POLICIES",
    "DEFAULT_FUSION_POLICY",
    "build_fusion_policy",
    "list_fusion_policies",
]

#: The policy a defaulted :class:`FusionConfig` resolves to — the paper's
#: camera-driven late-fusion victim.
DEFAULT_FUSION_POLICY = "late"


@dataclass(frozen=True)
class FusionConfig:
    """Registration, timeout, and blending parameters of the fusion stage."""

    #: Weight of the camera *lateral* estimate when LiDAR also confirms.  The
    #: camera dominates lateral localization and classification (Apollo-style
    #: camera-first fusion), which is what the trajectory hijacker exploits.
    camera_weight: float = 0.65
    #: Weight of the camera *distance* estimate when LiDAR also confirms.
    #: Monocular ranging is biased/noisy, so range is LiDAR-dominated.
    camera_distance_weight: float = 0.25
    #: Camera frames of persistence required to register a camera+LiDAR object.
    fused_registration_frames: int = 2
    #: Camera frames of persistence required to register a camera-only object.
    camera_only_registration_frames: int = 8
    #: LiDAR scans of persistence required to register a LiDAR-only object.
    #: Apollo-style fusion is camera-driven: an unclassified LiDAR-only return
    #: takes much longer to be promoted to a planning obstacle, which is the
    #: registration delay the paper's §VI-C analysis points to.
    lidar_only_registration_scans: int = 30
    #: Frames without camera evidence after which a camera-only obstacle is dropped.
    camera_only_timeout_frames: int = 10
    #: Frames without camera evidence after which even a LiDAR-backed obstacle is
    #: dropped (camera-driven classification/association expires).
    lidar_backed_timeout_frames: int = 12
    #: LiDAR scans without evidence after which a LiDAR-only obstacle is dropped.
    lidar_only_timeout_scans: int = 5
    #: Maximum world-frame distance between a camera estimate and a LiDAR
    #: detection for them to be considered the same object (at zero range).
    association_gate_m: float = 3.5
    #: Range-dependent widening of the association gate: monocular distance
    #: estimates degrade with range, so the gate grows by this fraction of the
    #: object distance.
    association_gate_range_factor: float = 0.12
    #: Exponential smoothing factor for the fused lateral velocity.
    lateral_velocity_smoothing: float = 0.3
    #: Number of frames over which the fused lateral velocity is differenced.
    #: A longer baseline suppresses detector noise while still capturing real
    #: lateral motion (a crossing pedestrian, or an attack-induced drift).
    lateral_velocity_baseline_frames: int = 10
    #: Camera/LiDAR lateral disagreement (m) beyond which the
    #: ``consistency_gated`` policy treats the modalities as inconsistent and
    #: penalizes the camera.  Ignored by the other policies.
    consistency_gate_m: float = 1.2
    #: Multiplier applied to both camera blend weights while the modalities
    #: disagree (``consistency_gated`` policy only).
    consistency_camera_penalty: float = 0.25
    #: Which registered fusion policy the perception pipeline instantiates.
    #: See :data:`FUSION_POLICIES` for the built-ins.
    policy: str = DEFAULT_FUSION_POLICY

    _UNIT_INTERVAL_FIELDS = (
        "camera_weight",
        "camera_distance_weight",
        "lateral_velocity_smoothing",
        "consistency_camera_penalty",
    )
    _POSITIVE_COUNT_FIELDS = (
        "fused_registration_frames",
        "camera_only_registration_frames",
        "lidar_only_registration_scans",
        "camera_only_timeout_frames",
        "lidar_backed_timeout_frames",
        "lidar_only_timeout_scans",
        "lateral_velocity_baseline_frames",
    )

    def __post_init__(self) -> None:
        for name in self._UNIT_INTERVAL_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in self._POSITIVE_COUNT_FIELDS:
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.association_gate_m <= 0:
            raise ValueError("association gate must be positive")
        if self.association_gate_range_factor < 0:
            raise ValueError("association_gate_range_factor must be non-negative")
        if self.consistency_gate_m <= 0:
            raise ValueError("consistency_gate_m must be positive")
        if self.policy not in FUSION_POLICIES:
            raise ValueError(
                f"unknown fusion policy {self.policy!r}; "
                f"available: {', '.join(FUSION_POLICIES.keys())}"
            )


@dataclass(frozen=True)
class FusedObstacle:
    """One obstacle in the ADS world model."""

    obstacle_id: str
    kind: ActorKind
    #: Longitudinal distance from the ego front bumper to the obstacle centre.
    distance_m: float
    #: Lateral offset relative to the ego centreline (positive left).
    lateral_m: float
    #: Absolute longitudinal speed of the obstacle (m/s, ego direction).
    longitudinal_speed_mps: float
    #: Rate of change of the lateral offset (m/s).
    lateral_velocity_mps: float
    #: Which sensors currently support this obstacle ("camera", "lidar").
    sources: tuple[str, ...]
    #: Bookkeeping id of the underlying simulated actor (for metrics only).
    actor_id: Optional[int] = None


@dataclass
class _FusedTrack:
    key: str
    kind: ActorKind
    actor_id: Optional[int]
    lateral_history: List[float] = field(default_factory=list)
    camera_frames_seen: int = 0
    lidar_scans_seen: int = 0
    frames_since_camera: int = 10_000
    scans_since_lidar: int = 10_000
    camera_distance_m: float = 0.0
    camera_lateral_m: float = 0.0
    camera_rel_velocity_mps: float = 0.0
    lidar_distance_m: float = 0.0
    lidar_lateral_m: float = 0.0
    lidar_speed_mps: float = 0.0
    fused_lateral_m: float = 0.0
    fused_distance_m: float = 0.0
    lateral_velocity_mps: float = 0.0
    registered: bool = False
    camera_track_id: Optional[int] = None
    has_camera_history: bool = field(default=False)

    @property
    def camera_recent(self) -> bool:
        return self.frames_since_camera == 0

    @property
    def lidar_recent(self) -> bool:
        return self.scans_since_lidar <= 2


class SensorFusion:
    """Blends camera world estimates and LiDAR scans into the ADS world model.

    This is the ``late`` fusion policy — the paper's default victim.  The
    camera/LiDAR blend weights are factored into :meth:`_blend_weights` so
    that :class:`ConsistencyGatedFusion` can override the arbitration without
    duplicating the track lifecycle; with the base weights the arithmetic is
    bit-identical to the pre-policy implementation.
    """

    def __init__(self, config: FusionConfig | None = None):
        self.config = config or FusionConfig()
        self._tracks: Dict[str, _FusedTrack] = {}

    def _blend_weights(self, track: _FusedTrack) -> Tuple[float, float]:
        """(lateral, distance) camera weights for a camera+LiDAR-fresh track."""
        return (self.config.camera_weight, self.config.camera_distance_weight)

    def reset(self) -> None:
        """Drop all fused tracks."""
        self._tracks.clear()

    def step(
        self,
        camera_estimates: List[WorldObjectEstimate],
        lidar_scan: Optional[LidarScan],
        ego_speed_mps: float,
        frame_dt_s: float,
    ) -> List[FusedObstacle]:
        """Fuse one frame of camera estimates with the latest LiDAR scan."""
        for track in self._tracks.values():
            track.frames_since_camera += 1
            if lidar_scan is not None:
                track.scans_since_lidar += 1

        self._ingest_camera(camera_estimates)
        if lidar_scan is not None:
            self._ingest_lidar(lidar_scan)

        self._update_registration()
        self._drop_stale_tracks()
        return self._build_obstacles(ego_speed_mps, frame_dt_s)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def _ingest_camera(self, estimates: List[WorldObjectEstimate]) -> None:
        for estimate in estimates:
            track = self._find_or_create_camera_track(estimate)
            track.camera_frames_seen += 1
            track.frames_since_camera = 0
            track.camera_distance_m = estimate.distance_m
            track.camera_lateral_m = estimate.lateral_m
            track.camera_rel_velocity_mps = estimate.relative_longitudinal_velocity_mps
            track.camera_track_id = estimate.track_id
            track.actor_id = estimate.actor_id
            track.kind = estimate.kind
            track.has_camera_history = True

    def _find_or_create_camera_track(self, estimate: WorldObjectEstimate) -> _FusedTrack:
        key = f"cam-{estimate.track_id}"
        if key in self._tracks:
            return self._tracks[key]
        # A new camera track may correspond to an existing fused track (for
        # example a LiDAR-only object, or a camera track that was re-created
        # after a misdetection burst); associate by spatial proximity so the
        # evidence accumulates in one place instead of spawning duplicates.
        nearest = self._nearest_track(
            estimate.distance_m, estimate.lateral_m, require_lidar=False
        )
        if nearest is not None:
            return nearest
        track = _FusedTrack(
            key=key,
            kind=estimate.kind,
            actor_id=estimate.actor_id,
            fused_lateral_m=estimate.lateral_m,
            fused_distance_m=estimate.distance_m,
        )
        self._tracks[key] = track
        return track

    def _ingest_lidar(self, scan: LidarScan) -> None:
        for detection in scan.detections:
            track = self._nearest_track(
                detection.distance_m, detection.lateral_m, require_lidar=False
            )
            if track is None:
                key = f"lidar-{detection.actor_id}"
                track = self._tracks.get(key)
                if track is None:
                    track = _FusedTrack(
                        key=key,
                        kind=detection.kind,
                        actor_id=detection.actor_id,
                        fused_lateral_m=detection.lateral_m,
                        fused_distance_m=detection.distance_m,
                    )
                    self._tracks[key] = track
            track.lidar_scans_seen += 1
            track.scans_since_lidar = 0
            track.lidar_distance_m = detection.distance_m
            track.lidar_lateral_m = detection.lateral_m
            track.lidar_speed_mps = detection.velocity.x
            if track.actor_id is None:
                track.actor_id = detection.actor_id

    def _nearest_track(
        self, distance_m: float, lateral_m: float, require_lidar: bool
    ) -> Optional[_FusedTrack]:
        best: Optional[_FusedTrack] = None
        best_distance = (
            self.config.association_gate_m
            + self.config.association_gate_range_factor * max(0.0, distance_m)
        )
        for track in self._tracks.values():
            if require_lidar and track.lidar_scans_seen == 0:
                continue
            if not require_lidar and not track.has_camera_history and not track.lidar_recent:
                continue
            ref_distance = track.fused_distance_m
            ref_lateral = track.fused_lateral_m
            # Lateral disagreement is weighted heavily: a one-lane lateral
            # offset means a different object even when the ranges are close
            # (e.g. an oncoming vehicle passing the lead vehicle).
            separation = abs(ref_distance - distance_m) + 2.5 * abs(ref_lateral - lateral_m)
            if separation < best_distance:
                best_distance = separation
                best = track
        return best

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _update_registration(self) -> None:
        cfg = self.config
        for track in self._tracks.values():
            if track.registered:
                continue
            if track.camera_frames_seen > 0 and track.lidar_scans_seen > 0:
                if track.camera_frames_seen >= cfg.fused_registration_frames:
                    track.registered = True
            elif track.camera_frames_seen > 0:
                if track.camera_frames_seen >= cfg.camera_only_registration_frames:
                    track.registered = True
            elif track.lidar_scans_seen >= cfg.lidar_only_registration_scans:
                track.registered = True

    def _drop_stale_tracks(self) -> None:
        cfg = self.config
        stale: List[str] = []
        for key, track in self._tracks.items():
            if track.has_camera_history:
                if track.lidar_recent:
                    if track.frames_since_camera > cfg.lidar_backed_timeout_frames:
                        stale.append(key)
                elif track.frames_since_camera > cfg.camera_only_timeout_frames:
                    stale.append(key)
            elif track.scans_since_lidar > cfg.lidar_only_timeout_scans:
                stale.append(key)
        for key in stale:
            del self._tracks[key]

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #

    def _build_obstacles(self, ego_speed_mps: float, frame_dt_s: float) -> List[FusedObstacle]:
        cfg = self.config
        obstacles: List[FusedObstacle] = []
        for track in self._tracks.values():
            sources: List[str] = []
            camera_fresh = track.frames_since_camera <= 2 and track.camera_frames_seen > 0
            lidar_fresh = track.lidar_recent and track.lidar_scans_seen > 0
            if camera_fresh:
                sources.append("camera")
            if lidar_fresh:
                sources.append("lidar")

            if camera_fresh and lidar_fresh:
                lateral_weight, distance_weight = self._blend_weights(track)
                lateral = (
                    lateral_weight * track.camera_lateral_m
                    + (1.0 - lateral_weight) * track.lidar_lateral_m
                )
                distance = (
                    distance_weight * track.camera_distance_m
                    + (1.0 - distance_weight) * track.lidar_distance_m
                )
                speed = track.lidar_speed_mps
            elif camera_fresh:
                lateral = track.camera_lateral_m
                distance = track.camera_distance_m
                speed = max(0.0, ego_speed_mps + track.camera_rel_velocity_mps)
            elif lidar_fresh:
                lateral = track.lidar_lateral_m
                distance = track.lidar_distance_m
                speed = track.lidar_speed_mps
            else:
                # Coast on the last fused state while the track is kept alive.
                lateral = track.fused_lateral_m
                distance = track.fused_distance_m
                speed = track.lidar_speed_mps if track.lidar_scans_seen else max(
                    0.0, ego_speed_mps + track.camera_rel_velocity_mps
                )

            alpha = cfg.lateral_velocity_smoothing
            baseline = cfg.lateral_velocity_baseline_frames
            if not camera_fresh and not lidar_fresh:
                # Coasting: no new measurement, so the lateral velocity decays
                # instead of being re-estimated from stale data.
                track.lateral_velocity_mps *= 0.8
            else:
                if (
                    track.lateral_history
                    and abs(lateral - track.lateral_history[-1]) > 1.0
                ):
                    # A jump this large within one frame is an association or
                    # source switch, not physical motion; restart the baseline
                    # so it does not masquerade as lateral velocity.
                    track.lateral_history.clear()
                    track.lateral_velocity_mps = 0.0
                track.lateral_history.append(lateral)
                if len(track.lateral_history) > baseline + 1:
                    del track.lateral_history[: -(baseline + 1)]
                if len(track.lateral_history) >= 2:
                    span = len(track.lateral_history) - 1
                    raw_lateral_velocity = (
                        track.lateral_history[-1] - track.lateral_history[0]
                    ) / (span * frame_dt_s)
                else:
                    raw_lateral_velocity = 0.0
                track.lateral_velocity_mps = (
                    (1 - alpha) * track.lateral_velocity_mps + alpha * raw_lateral_velocity
                )
            track.fused_lateral_m = lateral
            track.fused_distance_m = distance

            if not track.registered:
                continue
            obstacles.append(
                FusedObstacle(
                    obstacle_id=track.key,
                    kind=track.kind,
                    distance_m=distance,
                    lateral_m=lateral,
                    longitudinal_speed_mps=speed,
                    lateral_velocity_mps=track.lateral_velocity_mps,
                    sources=tuple(sources),
                    actor_id=track.actor_id,
                )
            )
        obstacles.sort(key=lambda o: o.distance_m)
        return obstacles


class ConsistencyGatedFusion(SensorFusion):
    """Late fusion that distrusts the camera while the modalities disagree.

    A sparse-fusion-style defense: when the camera and LiDAR lateral
    estimates of one track diverge by more than ``consistency_gate_m``, both
    camera blend weights are scaled by ``consistency_camera_penalty``, so the
    (harder-to-spoof) LiDAR dominates until the modalities agree again.  The
    gate is per-frame and per-track — it is also an attack surface, since a
    hijacker that perturbs one modality controls when the gate trips.
    """

    def _blend_weights(self, track: _FusedTrack) -> Tuple[float, float]:
        cfg = self.config
        if abs(track.camera_lateral_m - track.lidar_lateral_m) > cfg.consistency_gate_m:
            return (
                cfg.camera_weight * cfg.consistency_camera_penalty,
                cfg.camera_distance_weight * cfg.consistency_camera_penalty,
            )
        return (cfg.camera_weight, cfg.camera_distance_weight)


class CameraOnlyFusion:
    """Pass the camera world estimates straight through as the world model.

    Bit-identical to the camera-only branch `PerceptionSystem` used to inline
    for ``use_lidar=False`` (which now resolves to this policy): one obstacle
    per camera estimate, in estimate order (already distance-sorted by the
    transform stage), with the ego-relative velocity re-absolutized.  This is
    also the reconstruction pipeline RoboTack runs inside the attacked
    process, so it sits on the attacked golden-trace path.
    """

    def __init__(self, config: FusionConfig | None = None):
        self.config = config or FusionConfig()

    def reset(self) -> None:
        """Stateless: nothing to drop."""

    def step(
        self,
        camera_estimates: List[WorldObjectEstimate],
        lidar_scan: Optional[LidarScan],
        ego_speed_mps: float,
        frame_dt_s: float,
    ) -> List[FusedObstacle]:
        return [
            FusedObstacle(
                obstacle_id=f"cam-{estimate.track_id}",
                kind=estimate.kind,
                distance_m=estimate.distance_m,
                lateral_m=estimate.lateral_m,
                longitudinal_speed_mps=max(
                    0.0, ego_speed_mps + estimate.relative_longitudinal_velocity_mps
                ),
                lateral_velocity_mps=estimate.lateral_velocity_mps,
                sources=("camera",),
                actor_id=estimate.actor_id,
            )
            for estimate in camera_estimates
        ]


@dataclass
class _LidarOnlyTrack:
    kind: ActorKind
    actor_id: int
    distance_m: float = 0.0
    lateral_m: float = 0.0
    speed_mps: float = 0.0
    scans_seen: int = 0
    scans_since: int = 10_000
    lateral_history: List[float] = field(default_factory=list)
    lateral_velocity_mps: float = 0.0
    registered: bool = False


class LidarOnlyFusion:
    """Build the world model from LiDAR returns alone.

    Immune to camera-channel perturbation, but blind to camera-only objects
    (distant pedestrians never enter the world model) and stuck with the
    LiDAR's coarse classification.  Association is trivial — LiDAR detections
    carry the simulated actor id — so the interesting dynamics are the
    registration persistence (``fused_registration_frames`` scans: LiDAR-only
    here is the *primary* channel, not an unclassified residue, so it
    registers at the fused cadence) and the scan-domain timeout
    (``lidar_only_timeout_scans``).  The lateral-velocity estimator reuses the
    late policy's jump-reset + differenced-baseline + exponential smoothing,
    evaluated only on frames that carry a scan.
    """

    def __init__(self, config: FusionConfig | None = None):
        self.config = config or FusionConfig()
        self._tracks: Dict[int, _LidarOnlyTrack] = {}

    def reset(self) -> None:
        """Drop all LiDAR tracks."""
        self._tracks.clear()

    def step(
        self,
        camera_estimates: List[WorldObjectEstimate],
        lidar_scan: Optional[LidarScan],
        ego_speed_mps: float,
        frame_dt_s: float,
    ) -> List[FusedObstacle]:
        cfg = self.config
        tracks = self._tracks
        if lidar_scan is not None:
            for track in tracks.values():
                track.scans_since += 1
            for detection in lidar_scan.detections:
                track = tracks.get(detection.actor_id)
                if track is None:
                    track = _LidarOnlyTrack(kind=detection.kind, actor_id=detection.actor_id)
                    tracks[detection.actor_id] = track
                track.scans_seen += 1
                track.scans_since = 0
                track.distance_m = detection.distance_m
                track.lateral_m = detection.lateral_m
                track.speed_mps = detection.velocity.x
                track.kind = detection.kind
                if not track.registered and track.scans_seen >= cfg.fused_registration_frames:
                    track.registered = True
            stale = [
                actor_id
                for actor_id, track in tracks.items()
                if track.scans_since > cfg.lidar_only_timeout_scans
            ]
            for actor_id in stale:
                del tracks[actor_id]

        obstacles: List[FusedObstacle] = []
        alpha = cfg.lateral_velocity_smoothing
        baseline = cfg.lateral_velocity_baseline_frames
        for track in tracks.values():
            if track.scans_since == 0:
                history = track.lateral_history
                if history and abs(track.lateral_m - history[-1]) > 1.0:
                    history.clear()
                    track.lateral_velocity_mps = 0.0
                history.append(track.lateral_m)
                if len(history) > baseline + 1:
                    del history[: -(baseline + 1)]
                if len(history) >= 2:
                    span = len(history) - 1
                    raw_lateral_velocity = (history[-1] - history[0]) / (span * frame_dt_s)
                else:
                    raw_lateral_velocity = 0.0
                track.lateral_velocity_mps = (
                    (1 - alpha) * track.lateral_velocity_mps + alpha * raw_lateral_velocity
                )
            else:
                track.lateral_velocity_mps *= 0.8
            if not track.registered:
                continue
            obstacles.append(
                FusedObstacle(
                    obstacle_id=f"lidar-{track.actor_id}",
                    kind=track.kind,
                    distance_m=track.distance_m,
                    lateral_m=track.lateral_m,
                    longitudinal_speed_mps=track.speed_mps,
                    lateral_velocity_mps=track.lateral_velocity_mps,
                    sources=("lidar",),
                    actor_id=track.actor_id,
                )
            )
        obstacles.sort(key=lambda o: o.distance_m)
        return obstacles


class FusionPolicy(Protocol):
    """Structural interface every fusion policy satisfies."""

    config: FusionConfig

    def reset(self) -> None: ...

    def step(
        self,
        camera_estimates: List[WorldObjectEstimate],
        lidar_scan: Optional[LidarScan],
        ego_speed_mps: float,
        frame_dt_s: float,
    ) -> List[FusedObstacle]: ...


#: Registry of fusion-policy factories (``FusionConfig -> FusionPolicy``).
#: Third-party policies register here and become sweepable/CLI-selectable;
#: the batch engine only ports the built-ins and rejects anything else.
FUSION_POLICIES: Registry[Callable[[FusionConfig], "FusionPolicy"]] = Registry(
    "fusion policy"
)

FUSION_POLICIES.register(
    "late",
    SensorFusion,
    description="confidence-weighted camera/LiDAR late fusion (paper default victim)",
)
FUSION_POLICIES.register(
    "camera_only",
    CameraOnlyFusion,
    description="camera estimates pass through; use_lidar=False alias",
)
FUSION_POLICIES.register(
    "lidar_only",
    LidarOnlyFusion,
    description="world model from LiDAR returns alone",
)
FUSION_POLICIES.register(
    "consistency_gated",
    ConsistencyGatedFusion,
    description="late fusion that down-weights the camera on modality disagreement",
)


def build_fusion_policy(
    name: str, config: FusionConfig | None = None
) -> "FusionPolicy":
    """Instantiate the registered fusion policy ``name`` with ``config``."""
    factory = FUSION_POLICIES.get(name)
    return factory(config or FusionConfig())


def list_fusion_policies() -> List[str]:
    """Registered fusion-policy names, sorted."""
    return sorted(FUSION_POLICIES.keys())

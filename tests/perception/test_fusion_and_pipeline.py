"""Tests for camera/LiDAR fusion and the full perception pipeline."""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.perception.fusion import FusionConfig, SensorFusion
from repro.perception.pipeline import PerceptionConfig, PerceptionSystem
from repro.perception.transforms import WorldObjectEstimate
from repro.sensors.camera import CameraSensor
from repro.sensors.lidar import LidarDetection, LidarScan, LidarSensor
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation, build_scenario

FRAME_DT = 1.0 / 15.0


def camera_estimate(distance, lateral, kind=ActorKind.VEHICLE, track_id=1, actor_id=1, v_rel=0.0):
    return WorldObjectEstimate(
        track_id=track_id,
        actor_id=actor_id,
        kind=kind,
        distance_m=distance,
        lateral_m=lateral,
        relative_longitudinal_velocity_mps=v_rel,
        relative_longitudinal_acceleration_mps2=0.0,
        lateral_velocity_mps=0.0,
        age_frames=5,
    )


def lidar_scan(step, detections):
    return LidarScan(time_s=step * FRAME_DT, frame_index=step, detections=tuple(detections))


def lidar_detection(distance, lateral, kind=ActorKind.VEHICLE, actor_id=1, speed=5.0):
    return LidarDetection(
        actor_id=actor_id,
        kind=kind,
        relative_position=Vec2(distance, lateral),
        velocity=Vec2(speed, 0.0),
    )


class TestRegistration:
    def test_camera_plus_lidar_registers_quickly(self):
        fusion = SensorFusion()
        obstacles = []
        for step in range(4):
            obstacles = fusion.step(
                [camera_estimate(30.0, 0.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert len(obstacles) == 1
        assert set(obstacles[0].sources) == {"camera", "lidar"}

    def test_camera_only_registration_is_delayed(self):
        config = FusionConfig(camera_only_registration_frames=8)
        fusion = SensorFusion(config)
        for step in range(5):
            obstacles = fusion.step(
                [camera_estimate(50.0, 0.0, kind=ActorKind.PEDESTRIAN)],
                None,
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert obstacles == []
        for step in range(5, 12):
            obstacles = fusion.step(
                [camera_estimate(50.0, 0.0, kind=ActorKind.PEDESTRIAN)],
                None,
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert len(obstacles) == 1

    def test_lidar_only_registration_is_much_slower(self):
        config = FusionConfig(lidar_only_registration_scans=30)
        fusion = SensorFusion(config)
        obstacles = []
        for step in range(25):
            obstacles = fusion.step(
                [], lidar_scan(step, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert obstacles == []


class TestLateralBlending:
    def test_fused_lateral_between_camera_and_lidar(self):
        fusion = SensorFusion(FusionConfig(camera_weight=0.65))
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(30.0, 2.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert 0.5 < obstacles[0].lateral_m < 2.0

    def test_camera_only_lateral_passes_through(self):
        fusion = SensorFusion()
        obstacles = []
        for step in range(12):
            obstacles = fusion.step(
                [camera_estimate(40.0, -2.5, kind=ActorKind.PEDESTRIAN)], None, 10.0, FRAME_DT
            )
        assert obstacles[0].lateral_m == pytest.approx(-2.5, abs=0.01)

    def test_distance_is_lidar_dominated(self):
        fusion = SensorFusion(FusionConfig(camera_distance_weight=0.25))
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(26.0, 0.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert obstacles[0].distance_m == pytest.approx(29.0, abs=0.3)


class TestDropBehaviour:
    def _register_fused_track(self, fusion):
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(25.0, 0.0)],
                lidar_scan(step, [lidar_detection(25.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert obstacles
        return 6

    def test_lidar_backed_obstacle_survives_brief_camera_loss(self):
        fusion = SensorFusion()
        step = self._register_fused_track(fusion)
        for offset in range(5):
            obstacles = fusion.step(
                [], lidar_scan(step + offset, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert len(obstacles) == 1

    def test_lidar_backed_obstacle_dropped_after_sustained_camera_loss(self):
        config = FusionConfig(lidar_backed_timeout_frames=12)
        fusion = SensorFusion(config)
        step = self._register_fused_track(fusion)
        for offset in range(config.lidar_backed_timeout_frames + 3):
            obstacles = fusion.step(
                [], lidar_scan(step + offset, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert obstacles == []

    def test_camera_only_obstacle_dropped_after_timeout(self):
        config = FusionConfig(camera_only_timeout_frames=10)
        fusion = SensorFusion(config)
        for _ in range(12):
            fusion.step([camera_estimate(40.0, 0.0, kind=ActorKind.PEDESTRIAN)], None, 10.0, FRAME_DT)
        for _ in range(config.camera_only_timeout_frames + 2):
            obstacles = fusion.step([], None, 10.0, FRAME_DT)
        assert obstacles == []

    def test_reset_clears_state(self):
        fusion = SensorFusion()
        self._register_fused_track(fusion)
        fusion.reset()
        assert fusion.step([], None, 10.0, FRAME_DT) == []


class TestAssociation:
    def test_one_lane_apart_objects_stay_separate(self):
        fusion = SensorFusion()
        for step in range(8):
            obstacles = fusion.step(
                [camera_estimate(30.0, 0.0, track_id=1, actor_id=1)],
                lidar_scan(
                    step,
                    [
                        lidar_detection(30.0, 0.0, actor_id=1),
                        lidar_detection(31.0, 3.5, actor_id=2, speed=-10.0),
                    ],
                ),
                10.0,
                FRAME_DT,
            )
        # The in-lane fused obstacle keeps the in-lane lateral position; the
        # oncoming vehicle one lane over does not contaminate it.
        in_lane = [o for o in obstacles if abs(o.lateral_m) < 1.0]
        assert len(in_lane) == 1
        assert in_lane[0].longitudinal_speed_mps > 0

    def test_new_camera_track_reassociates_with_existing_object(self):
        fusion = SensorFusion()
        for step in range(6):
            fusion.step(
                [camera_estimate(30.0, 0.0, track_id=1)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        # The camera track id changes (e.g. after a misdetection burst); the
        # evidence must flow into the same fused track instead of duplicating.
        obstacles = fusion.step(
            [camera_estimate(30.0, 0.2, track_id=9)],
            lidar_scan(7, [lidar_detection(30.0, 0.0)]),
            10.0,
            FRAME_DT,
        )
        assert len(obstacles) == 1


class TestFusionConfigValidation:
    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(camera_weight=1.5)

    def test_invalid_gate_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(association_gate_m=0.0)


class TestPerceptionSystem:
    def test_full_pipeline_detects_lead_vehicle(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        lidar = LidarSensor(rng=np.random.default_rng(0))
        system = PerceptionSystem(rng=np.random.default_rng(1))
        output = None
        for _ in range(8):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), lidar.scan(snapshot), ego_speed_mps=12.5)
            scenario.world.step(FRAME_DT, 0.0)
        assert output.obstacles
        lead = output.obstacles[0]
        assert lead.kind is ActorKind.VEHICLE
        assert lead.distance_m == pytest.approx(58.0, abs=6.0)
        assert abs(lead.lateral_m) < 1.0

    def test_camera_only_mode_has_no_lidar_fusion(self):
        config = PerceptionConfig(use_lidar=False)
        system = PerceptionSystem(config, rng=np.random.default_rng(2))
        assert system.fusion is None
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        output = None
        for _ in range(6):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), None, ego_speed_mps=12.5)
            scenario.world.step(FRAME_DT, 0.0)
        assert output.obstacles
        assert output.obstacles[0].sources == ("camera",)

    def test_output_lookup_helpers(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        system = PerceptionSystem(rng=np.random.default_rng(3))
        camera = CameraSensor()
        lidar = LidarSensor(rng=np.random.default_rng(4))
        target_id = scenario.target_actor_id
        found = False
        output = None
        # Individual frames can fall inside a misdetection burst and obstacle
        # registration takes a few frames, so look for a frame where both the
        # camera estimate and the fused obstacle exist.
        for _ in range(25):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), lidar.scan(snapshot), 12.5)
            scenario.world.step(FRAME_DT, 0.0)
            if (
                output.estimate_for_actor(target_id) is not None
                and output.obstacle_for_actor(target_id) is not None
            ):
                found = True
                break
        assert found
        assert output.nearest_obstacle() is not None
        assert output.estimate_for_actor(10**9) is None

    def test_reset_restores_clean_state(self):
        system = PerceptionSystem(rng=np.random.default_rng(5))
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        for _ in range(5):
            system.process(camera.capture(scenario.world.snapshot()), None, 12.5)
        system.reset()
        assert system.tracker.tracks == {}

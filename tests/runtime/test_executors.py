"""Tests for the serial and process-parallel executors."""

import os

import pytest

from repro.runtime.executor import (
    Executor,
    FaultInjectingExecutor,
    InjectedFault,
    ParallelExecutor,
    SerialExecutor,
    available_cpus,
    resolve_executor,
)


def _square(x: int) -> int:
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert SerialExecutor().map(_square, []) == []

    def test_imap_streams_tagged_pairs_in_order(self):
        assert list(SerialExecutor().imap(_square, [3, 1, 2])) == [(0, 9), (1, 1), (2, 4)]

    def test_imap_is_lazy(self):
        seen = []

        def observe(x):
            seen.append(x)
            return x

        stream = SerialExecutor().imap(observe, [1, 2, 3])
        assert seen == []
        assert next(stream) == (0, 1)
        assert seen == [1]


class TestImapStreaming:
    def test_parallel_imap_tags_match_inputs(self):
        with ParallelExecutor(max_workers=2) as executor:
            pairs = list(executor.imap(_square, range(10)))
        # Completion order is backend-dependent; the tags are not.
        assert sorted(pairs) == [(i, i * i) for i in range(10)]

    def test_parallel_imap_single_item_runs_inline(self):
        executor = ParallelExecutor(max_workers=2)
        assert list(executor.imap(_square, [6])) == [(0, 36)]
        assert executor._pool is None

    def test_parallel_imap_empty(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert list(executor.imap(_square, [])) == []

    def test_default_imap_falls_back_to_map(self):
        class MapOnly(Executor):
            def map(self, fn, items):
                return [fn(item) for item in items]

        assert list(MapOnly().imap(_square, [2, 3])) == [(0, 4), (1, 9)]


class TestFaultInjectingExecutor:
    def test_completes_then_dies(self):
        executor = FaultInjectingExecutor(2)
        stream = executor.imap(_square, [1, 2, 3, 4])
        assert next(stream) == (0, 1)
        assert next(stream) == (1, 4)
        with pytest.raises(InjectedFault):
            next(stream)
        assert executor.completed == 2

    def test_zero_fail_after_dies_immediately(self):
        with pytest.raises(InjectedFault):
            list(FaultInjectingExecutor(0).imap(_square, [1]))

    def test_map_raises_at_the_fault_point(self):
        with pytest.raises(InjectedFault):
            FaultInjectingExecutor(1).map(_square, [1, 2])

    def test_survives_when_under_budget(self):
        executor = FaultInjectingExecutor(10)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_counter_spans_calls(self):
        executor = FaultInjectingExecutor(3)
        assert executor.map(_square, [1, 2]) == [1, 4]
        with pytest.raises(InjectedFault):
            executor.map(_square, [3, 4])

    def test_negative_fail_after_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingExecutor(-1)


class TestParallelExecutor:
    def test_map_matches_serial(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.map(_square, range(10)) == [x * x for x in range(10)]

    def test_single_item_runs_inline(self):
        executor = ParallelExecutor(max_workers=2)
        assert executor.map(_square, [5]) == [25]
        # No pool was ever created for a single item.
        assert executor._pool is None

    def test_empty_input(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.map(_square, []) == []

    def test_pool_reused_across_maps(self):
        with ParallelExecutor(max_workers=2) as executor:
            executor.map(_square, range(4))
            pool = executor._pool
            executor.map(_square, range(4))
            assert executor._pool is pool

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(max_workers=2)
        executor.map(_square, range(4))
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_worker_processes_are_real(self):
        with ParallelExecutor(max_workers=2) as executor:
            pids = set(executor.map(_pid, range(8)))
        assert os.getpid() not in pids

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=2, chunksize=0)


def _pid(_: int) -> int:
    return os.getpid()


class TestResolveExecutor:
    def test_none_and_small_counts_are_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(0), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_counts_above_one_are_parallel(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 3

    def test_minus_one_uses_all_cpus(self):
        executor = resolve_executor(-1)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == available_cpus()

    def test_executor_instances_pass_through(self):
        serial = SerialExecutor()
        assert resolve_executor(serial) is serial

    def test_invalid_specs_rejected(self):
        with pytest.raises(TypeError):
            resolve_executor("four")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            resolve_executor(True)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            resolve_executor(-2)

"""Integration tests for the falsification loop against the real simulator.

All campaigns here run the ``none`` attacker with very short simulations, so
each search point is cheap; the contracts under test are orchestration
contracts, not attack efficacy:

* golden regression — ``search --sampler random`` evaluates exactly the
  points (and produces bit-identical run results) of a plain ``sweep`` with
  the random sampler at the same seed;
* crash/resume — a search killed mid-iteration by a faulting executor
  resumes without re-proposing and finishes with a checkpoint bit-identical
  to an uninterrupted search;
* budget/target accounting, step-wise ``max_iterations`` resumes, and the
  store-backed ``search_report`` table.
"""

import dataclasses
import json
import math

import pytest

from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    clear_caches,
    run_campaigns,
)
from repro.experiments.store import ExperimentStore, config_hash
from repro.experiments.tables import search_report_from_store
from repro.runtime import FaultInjectingExecutor, InjectedFault
from repro.search import FalsificationLoop, SearchSpec, search_spec_hash
from repro.search.loop import axes_from_json, axes_to_json
from repro.search.objectives import OBJECTIVES
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import ParameterSpace, Uniform, expand_campaigns, sweep_campaigns

SPACE = ParameterSpace(
    {
        "variation.lead_gap_offset_m": Uniform(-8.0, 8.0),
        "variation.lead_speed_offset_mps": Uniform(-0.8, 0.8),
    }
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _base(n_runs: int = 2, seed: int = 11) -> CampaignConfig:
    # Short benign runs keep the loop fast; orchestration is length-agnostic.
    return CampaignConfig(
        campaign_id="search-ds1",
        scenario_id="DS-1",
        attacker=AttackerKind.NONE,
        n_runs=n_runs,
        seed=seed,
        simulation=SimulationConfig(max_duration_s=1.5),
    )


def _spec(**overrides) -> SearchSpec:
    options = dict(
        base=_base(),
        space=SPACE,
        sampler="ce",
        objective="min_delta_margin",
        budget_runs=12,
        batch_points=3,
        seed=5,
    )
    options.update(overrides)
    return SearchSpec(**options)


def assert_runs_identical(a, b) -> None:
    for name in type(a).__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if isinstance(left, float) and math.isnan(left):
            assert isinstance(right, float) and math.isnan(right), name
        else:
            assert left == right, (name, left, right)


class TestGoldenRandomEqualsSweep:
    def test_random_search_is_bit_identical_to_random_sweep(self, tmp_path):
        n_points, search_seed = 4, 9
        spec = _spec(
            sampler="random",
            seed=search_seed,
            batch_points=n_points,
            budget_runs=n_points * 2,
        )
        store = ExperimentStore(tmp_path / "search")
        result = FalsificationLoop(spec, store).run()
        assert result.iterations_completed == 1

        # The plain sweep at the same sampler seed over the same space.
        sweep_configs = sweep_campaigns(
            _base(), SPACE, sampler="random", n=n_points, seed=search_seed
        )
        sweep_results = run_campaigns(sweep_configs, use_cache=False)

        # Same points: reconstruct the search's configs from the sweep's
        # assignments (only the campaign-id prefix differs by design).
        searched = expand_campaigns(
            dataclasses.replace(_base(), campaign_id="search-ds1-i000"),
            SPACE.random(n_points, seed=search_seed),
        )
        for search_config, sweep_config, sweep_result in zip(
            searched, sweep_configs, sweep_results
        ):
            assert search_config.variation == sweep_config.variation
            stored = store.campaign_result(search_config)
            assert stored.n_runs == sweep_result.n_runs
            for left, right in zip(stored.runs, sweep_result.runs):
                assert_runs_identical(left, right)


class TestBudgetAndTarget:
    def test_budget_accounting_truncates_last_batch(self, tmp_path):
        # 12-run budget at 2 runs/point: 3 points, then only 3 more fit.
        spec = _spec(budget_runs=12, batch_points=3)
        result = FalsificationLoop(spec, ExperimentStore(tmp_path)).run()
        assert result.runs_spent == 12
        assert result.iterations_completed == 2
        assert [row.n_points for row in
                search_report_from_store(ExperimentStore(tmp_path), result.search_hash)] == [3, 3]

    def test_target_stops_early(self, tmp_path):
        OBJECTIVES.register(
            "const_one_for_tests",
            lambda: type("ConstOne", (), {
                "name": "const_one_for_tests",
                "score": staticmethod(lambda outcomes: 1.0),
            })(),
            description="test objective scoring every point 1.0",
            overwrite=True,
        )
        spec = _spec(objective="const_one_for_tests", target_score=0.5, budget_runs=30)
        result = FalsificationLoop(spec, ExperimentStore(tmp_path)).run()
        assert result.reached_target
        assert result.iterations_completed == 1
        assert result.runs_spent == 6
        assert result.best_score == 1.0

    def test_max_iterations_steps_then_resumes(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = _spec(budget_runs=12, batch_points=3)
        first = FalsificationLoop(spec, store).run(max_iterations=1)
        assert first.iterations_completed == 1
        assert first.runs_spent == 6
        second = FalsificationLoop(spec, store).run()
        assert second.iterations_completed == 2
        assert second.runs_spent == 12

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            _spec(budget_runs=1)  # cannot fund a single 2-run point
        with pytest.raises(ValueError):
            _spec(batch_points=0)
        with pytest.raises(ValueError):
            _spec(target_score=1.5)
        with pytest.raises(ValueError):
            FalsificationLoop(_spec(), store=None)


class TestCrashResume:
    def test_faulted_search_resumes_bit_identically(self, tmp_path):
        spec = _spec()
        clean_store = ExperimentStore(tmp_path / "clean")
        clean = FalsificationLoop(spec, clean_store).run()

        crash_store = ExperimentStore(tmp_path / "crash")
        # Die after 4 of the first iteration's 6 runs.
        with pytest.raises(InjectedFault):
            FalsificationLoop(
                spec, crash_store, executor=FaultInjectingExecutor(4)
            ).run()
        state = crash_store.load_search_state(clean.search_hash)
        assert state is not None and state["phase"] == "proposed"
        assert state["pending"] is not None

        resumed = FalsificationLoop(spec, crash_store).run()
        assert resumed.runs_spent == clean.runs_spent
        assert resumed.best_score == clean.best_score
        assert resumed.best_assignment == clean.best_assignment

        # The durable checkpoint — sampler RNG stream included — must be
        # bit-identical to the never-interrupted search's.
        clean_state = clean_store.load_search_state(clean.search_hash)
        crash_state = crash_store.load_search_state(clean.search_hash)
        assert json.dumps(crash_state, sort_keys=True) == json.dumps(
            clean_state, sort_keys=True
        )

        # And so must the iteration report.
        clean_rows = search_report_from_store(clean_store, clean.search_hash)
        crash_rows = search_report_from_store(crash_store, clean.search_hash)
        assert crash_rows == clean_rows

    def test_completed_search_rerun_is_a_no_op(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = _spec()
        first = FalsificationLoop(spec, store).run()
        before = store.load_search_state(first.search_hash)
        again = FalsificationLoop(spec, store).run()
        assert again.iterations_completed == first.iterations_completed
        assert again.runs_spent == first.runs_spent
        assert store.load_search_state(first.search_hash) == before


class TestSpecHashAndManifest:
    def test_hash_is_deterministic_and_spec_sensitive(self):
        assert search_spec_hash(_spec()) == search_spec_hash(_spec())
        assert search_spec_hash(_spec()) != search_spec_hash(_spec(sampler="random"))
        assert search_spec_hash(_spec()) != search_spec_hash(_spec(seed=6))
        assert search_spec_hash(_spec()) != search_spec_hash(_spec(budget_runs=14))
        other_space = ParameterSpace(
            {"variation.lead_gap_offset_m": Uniform(-4.0, 4.0)}
        )
        assert search_spec_hash(_spec()) != search_spec_hash(_spec(space=other_space))

    def test_axes_json_round_trip(self):
        assert axes_from_json(axes_to_json(SPACE)) == SPACE

    def test_manifest_records_spec(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = _spec(budget_runs=6, batch_points=3)
        result = FalsificationLoop(spec, store).run()
        manifest = store.load_search_manifest(result.search_hash)
        assert manifest["spec"]["sampler"] == "ce"
        assert manifest["spec"]["base_config_hash"] == config_hash(spec.base)
        assert axes_from_json(manifest["spec"]["axes"]) == SPACE
        assert store.search_hashes() == [result.search_hash]

"""The end-to-end ADS agent: perception -> world model -> planning -> control.

``AdsAgent`` is the victim software stack.  Each camera frame it runs the full
perception pipeline (with LiDAR fusion), plans a longitudinal acceleration, and
smooths it through the actuation controller.  The decision it returns carries
the emergency-braking flag and the perceived safety potential that the
evaluation harness records (paper §VI reads both directly from Apollo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ads.pid import ActuationSmoother, PIDController
from repro.ads.planning import LongitudinalPlanner, PlannerConfig, PlanningDecision
from repro.ads.world_model import WorldModel
from repro.perception.pipeline import PerceptionConfig, PerceptionOutput, PerceptionSystem
from repro.sensors.camera import CameraFrame
from repro.sensors.gps_imu import EgoPoseEstimate
from repro.sensors.lidar import LidarScan
from repro.sim.road import Road

__all__ = ["AdsDecision", "AdsAgent"]


@dataclass(frozen=True)
class AdsDecision:
    """Everything the ADS produced for one control cycle."""

    #: Final (smoothed) acceleration command sent to the vehicle.
    acceleration_mps2: float
    #: Whether emergency braking is engaged this cycle.
    emergency_brake: bool
    #: Safety potential perceived by the planner (inf when the road looks clear).
    perceived_delta_m: float
    #: The raw planning decision.
    planning: PlanningDecision
    #: The perception output used for this cycle.
    perception: PerceptionOutput
    #: The world model used for this cycle.
    world_model: WorldModel


class AdsAgent:
    """The Apollo-like autonomous driving agent."""

    def __init__(
        self,
        road: Road,
        planner_config: PlannerConfig | None = None,
        perception_config: PerceptionConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.road = road
        self.planner_config = planner_config or PlannerConfig()
        self.perception = PerceptionSystem(perception_config or PerceptionConfig(), rng=rng)
        self.planner = LongitudinalPlanner(road, self.planner_config)
        self.speed_pid = PIDController(kp=0.6, ki=0.05, output_min=-1.0, output_max=1.0)
        self.smoother = ActuationSmoother()

    def reset(self) -> None:
        """Reset all stateful components for a fresh run."""
        self.perception.reset()
        self.planner.reset()
        self.speed_pid.reset()
        self.smoother.reset()

    def step(
        self,
        camera_frame: CameraFrame,
        lidar_scan: Optional[LidarScan],
        ego_pose: EgoPoseEstimate,
        dt: float,
    ) -> AdsDecision:
        """Run one full perceive-plan-act cycle."""
        perception_output = self.perception.process(
            camera_frame, lidar_scan, ego_speed_mps=ego_pose.speed_mps
        )
        world_model = WorldModel(
            time_s=camera_frame.time_s,
            ego=ego_pose,
            obstacles=perception_output.obstacles,
        )
        planning = self.planner.plan(world_model)

        # PID speed trim: nudges the planned acceleration so the ego speed
        # converges on the planner's target speed without overshoot.
        speed_error = planning.target_speed_mps - ego_pose.speed_mps
        trim = self.speed_pid.update(speed_error, dt)
        desired = planning.desired_acceleration_mps2
        if not planning.emergency_brake and desired > -self.planner_config.comfortable_decel_mps2:
            desired = float(
                min(
                    max(desired + 0.2 * trim, -self.planner_config.comfortable_decel_mps2),
                    self.planner_config.max_accel_mps2,
                )
            )

        smoothed = self.smoother.smooth(desired, dt, emergency=planning.emergency_brake)
        return AdsDecision(
            acceleration_mps2=smoothed,
            emergency_brake=planning.emergency_brake,
            perceived_delta_m=planning.perceived_delta_m,
            planning=planning,
            perception=perception_output,
            world_model=world_model,
        )

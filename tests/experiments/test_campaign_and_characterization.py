"""Tests for the campaign runner, predictor training, and detector characterization.

These tests run real (but short) simulations, so they are the slowest part of
the unit suite; campaigns are kept to a handful of runs.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.safety_hijacker import KinematicSafetyPredictor, NeuralSafetyPredictor
from repro.core.training import collect_safety_dataset, train_neural_safety_predictor
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    PredictorKind,
    _run_batch_chunk,
    baseline_random_campaign,
    get_or_train_predictor,
    run_campaign,
    run_single_experiment,
    run_single_experiment_record,
    standard_campaigns,
)
from repro.experiments.store import ExperimentStore
from repro.experiments.characterization import characterize_detector
from repro.sim.actors import ActorKind


class TestCampaignConfig:
    def test_robotack_requires_vector(self):
        with pytest.raises(ValueError):
            CampaignConfig(
                campaign_id="x", scenario_id="DS-1", attacker=AttackerKind.ROBOTACK, vector=None
            )

    def test_positive_runs_required(self):
        with pytest.raises(ValueError):
            CampaignConfig(
                campaign_id="x",
                scenario_id="DS-5",
                attacker=AttackerKind.RANDOM,
                n_runs=0,
            )

    def test_standard_campaigns_cover_paper_table(self):
        campaigns = standard_campaigns(n_runs=5)
        assert len(campaigns) == 6
        scenario_vector_pairs = {(c.scenario_id, c.vector) for c in campaigns}
        assert ("DS-1", AttackVector.DISAPPEAR) in scenario_vector_pairs
        assert ("DS-4", AttackVector.MOVE_IN) in scenario_vector_pairs

    def test_baseline_random_campaign_is_ds5(self):
        config = baseline_random_campaign(n_runs=3)
        assert config.scenario_id == "DS-5"
        assert config.attacker is AttackerKind.RANDOM


class TestCampaignFusionConfig:
    """The fusion field's store-compat contract: defaulted configs hash as
    before the fusion-policy refactor, so existing stores stay addressable."""

    def _default_configs(self):
        return [
            CampaignConfig(campaign_id="pin-1", scenario_id="DS-1", attacker=AttackerKind.NONE),
            CampaignConfig(
                campaign_id="pin-2",
                scenario_id="DS-2",
                attacker=AttackerKind.ROBOTACK,
                vector=AttackVector.DISAPPEAR,
                n_runs=5,
                seed=11,
            ),
        ]

    def test_defaulted_config_hashes_are_pinned(self):
        # Captured from the pre-refactor cache_key(); a change here breaks
        # content-addressing of every store written before the refactor.
        from repro.experiments.store import config_hash

        c1, c2 = self._default_configs()
        assert config_hash(c1) == (
            "49cccc6f4125928c200b776a102bd1f9228b4fb25dc062e69ab7eb14e571e3da"
        )
        assert config_hash(c2) == (
            "54cbdcad3969285571d1ae77adb40891a5ea5eb5f4b28daac486c450e7fd7b3f"
        )

    def test_fusion_config_changes_hash(self):
        from repro.experiments.store import config_hash
        from repro.perception.fusion import FusionConfig

        base, _ = self._default_configs()
        with_fusion = dataclasses.replace(base, fusion=FusionConfig(policy="lidar_only"))
        assert config_hash(with_fusion) != config_hash(base)
        # Even an all-default FusionConfig is a distinct (explicit) choice.
        with_default_fusion = dataclasses.replace(base, fusion=FusionConfig())
        assert config_hash(with_default_fusion) != config_hash(base)

    def test_fusion_policy_property(self):
        from repro.perception.fusion import FusionConfig

        base, _ = self._default_configs()
        assert base.fusion_policy == "late"
        gated = dataclasses.replace(base, fusion=FusionConfig(policy="consistency_gated"))
        assert gated.fusion_policy == "consistency_gated"

    def test_json_round_trip_with_fusion(self):
        from repro.perception.fusion import FusionConfig

        base, _ = self._default_configs()
        config = dataclasses.replace(
            base, fusion=FusionConfig(policy="consistency_gated", camera_weight=0.4)
        )
        rebuilt = CampaignConfig.from_json_dict(config.to_json_dict())
        assert rebuilt == config
        assert rebuilt.fusion.policy == "consistency_gated"
        assert rebuilt.fusion.camera_weight == 0.4

    def test_legacy_manifest_without_fusion_key_round_trips(self):
        # Manifests written before the refactor have no "fusion" entry.
        base, _ = self._default_configs()
        payload = base.to_json_dict()
        assert payload["fusion"] is None
        del payload["fusion"]
        rebuilt = CampaignConfig.from_json_dict(payload)
        assert rebuilt == base
        assert rebuilt.fusion is None
        assert rebuilt.fusion_policy == "late"


class TestRunSingleExperiment:
    def test_golden_run_has_no_hazard(self):
        config = CampaignConfig(
            campaign_id="golden-ds1",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=1,
            seed=3,
        )
        result = run_single_experiment(config, run_index=0)
        assert not result.attack_launched
        assert not result.emergency_braking
        assert not result.collision
        assert not result.accident
        assert result.min_true_delta_m > 4.0

    def test_runs_are_reproducible_for_same_seed(self):
        config = CampaignConfig(
            campaign_id="repro-ds2",
            scenario_id="DS-2",
            attacker=AttackerKind.NONE,
            n_runs=1,
            seed=5,
        )
        a = run_single_experiment(config, run_index=0)
        b = run_single_experiment(config, run_index=0)
        assert a.min_true_delta_m == pytest.approx(b.min_true_delta_m)
        assert a.seed == b.seed

    def test_different_run_indices_vary_initial_conditions(self):
        config = CampaignConfig(
            campaign_id="vary-ds1",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=2,
            seed=5,
        )
        a = run_single_experiment(config, run_index=0)
        b = run_single_experiment(config, run_index=1)
        assert a.seed != b.seed

    def test_robotack_kinematic_run_records_attack_metadata(self):
        config = CampaignConfig(
            campaign_id="ds2-disappear-kin",
            scenario_id="DS-2",
            attacker=AttackerKind.ROBOTACK,
            vector=AttackVector.DISAPPEAR,
            n_runs=1,
            seed=9,
            predictor=PredictorKind.KINEMATIC,
        )
        result = run_single_experiment(config, run_index=0)
        if result.attack_launched:
            assert result.planned_k_frames > 0
            assert result.frames_perturbed > 0
            assert result.vector is AttackVector.DISAPPEAR


class TestRunCampaign:
    def test_campaign_caching(self):
        config = CampaignConfig(
            campaign_id="cache-ds1",
            scenario_id="DS-1",
            attacker=AttackerKind.NONE,
            n_runs=2,
            seed=13,
        )
        first = run_campaign(config)
        second = run_campaign(config)
        assert first is second
        uncached = run_campaign(config, use_cache=False)
        assert uncached is not first
        assert uncached.n_runs == first.n_runs

    def test_random_campaign_runs_end_to_end(self):
        config = CampaignConfig(
            campaign_id="random-ds5-smoke",
            scenario_id="DS-5",
            attacker=AttackerKind.RANDOM,
            n_runs=2,
            seed=21,
        )
        campaign = run_campaign(config, use_cache=False)
        assert campaign.n_runs == 2


def _results_equal(a, b) -> bool:
    """Field-wise RunResult equality that treats NaN == NaN (dataclass ``==``
    fails on the NaN-valued attack metrics even for identical runs)."""
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and isinstance(y, float) and math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


class TestBatchEngine:
    def _config(self, **overrides) -> CampaignConfig:
        defaults = dict(
            campaign_id="batch-engine-ds3",
            scenario_id="DS-3",
            attacker=AttackerKind.NONE,
            n_runs=5,
            seed=33,
        )
        defaults.update(overrides)
        return CampaignConfig(**defaults)

    def test_batch_records_match_scalar_records(self):
        config = self._config()
        scalar = [run_single_experiment_record(config, index) for index in range(3)]
        batch = _run_batch_chunk(config, [0, 1, 2])
        assert [record.run_index for record in batch] == [0, 1, 2]
        for a, b in zip(scalar, batch):
            assert a.seed == b.seed
            assert _results_equal(a.result, b.result)
            assert a.events == b.events
            assert np.array_equal(a.true_delta_trace, b.true_delta_trace)
            assert np.array_equal(a.perceived_delta_trace, b.perceived_delta_trace)
            assert np.array_equal(a.ego_speed_trace, b.ego_speed_trace)
            assert a.steps_executed == b.steps_executed
            assert a.halted_on_collision == b.halted_on_collision

    def test_batch_campaign_matches_scalar_campaign(self):
        config = self._config()
        scalar = run_campaign(config, use_cache=False, engine="scalar")
        batch = run_campaign(config, use_cache=False, engine="batch", batch_size=2)
        assert batch.n_runs == scalar.n_runs == config.n_runs
        assert all(
            _results_equal(a, b) for a, b in zip(scalar.runs, batch.runs)
        )

    def test_scalar_store_resumes_under_batch_engine(self, tmp_path):
        """Records are engine-independent, so a partially scalar-filled store
        is finished by the batch engine with identical merged results."""
        config = self._config(campaign_id="batch-resume-ds3", n_runs=4)
        store = ExperimentStore(tmp_path / "mixed")
        store.write_manifest(config)
        store.append(run_single_experiment_record(config, 2))
        mixed = run_campaign(config, store=store, engine="batch", batch_size=3)
        full = run_campaign(
            config, store=tmp_path / "batch-only", engine="batch", batch_size=3
        )
        assert mixed.n_runs == full.n_runs == config.n_runs
        assert all(_results_equal(a, b) for a, b in zip(mixed.runs, full.runs))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_campaign(self._config(), engine="vectorized")

    def test_non_positive_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            run_campaign(self._config(), engine="batch", batch_size=0)


class TestPredictorTraining:
    def test_kinematic_predictor_from_registry(self):
        predictor = get_or_train_predictor(
            "DS-1", AttackVector.DISAPPEAR, kind=PredictorKind.KINEMATIC
        )
        assert isinstance(predictor, KinematicSafetyPredictor)

    def test_collect_dataset_and_train_small(self):
        dataset = collect_safety_dataset(
            scenario_id="DS-2",
            vector=AttackVector.DISAPPEAR,
            delta_inject_values=(42.0, 36.0),
            k_values=(12, 24),
            seed=17,
        )
        assert dataset.n_samples >= 2
        assert dataset.inputs.shape[1] == 4
        predictor, result = train_neural_safety_predictor(dataset, epochs=20, seed=17)
        assert isinstance(predictor, NeuralSafetyPredictor)
        assert result.history.train_loss[-1] <= result.history.train_loss[0] * 1.5

    def test_dataset_merge(self):
        dataset = collect_safety_dataset(
            scenario_id="DS-2",
            vector=AttackVector.DISAPPEAR,
            delta_inject_values=(42.0,),
            k_values=(12,),
            seed=18,
        )
        merged = dataset.merged_with(dataset)
        assert merged.n_samples == 2 * dataset.n_samples

    def test_merge_different_vectors_rejected(self):
        dataset = collect_safety_dataset(
            scenario_id="DS-2",
            vector=AttackVector.DISAPPEAR,
            delta_inject_values=(42.0,),
            k_values=(12,),
            seed=19,
        )
        other = collect_safety_dataset(
            scenario_id="DS-2",
            vector=AttackVector.MOVE_OUT,
            delta_inject_values=(42.0,),
            k_values=(12,),
            seed=19,
        )
        with pytest.raises(ValueError):
            dataset.merged_with(other)


class TestStoreBackedPredictor:
    """The train-once/deploy-many path: campaigns load oracles from the store."""

    def test_predictor_loads_from_registry_instead_of_retraining(self, tmp_path, monkeypatch):
        from repro.experiments import campaign as campaign_module
        from repro.experiments.campaign import clear_caches
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path)
        clear_caches()
        trained = get_or_train_predictor(
            "DS-2", AttackVector.DISAPPEAR, seed=17, training_epochs=3, store=store
        )
        assert isinstance(trained, NeuralSafetyPredictor)
        assert store.model_hashes()  # the oracle was published

        # A "new process": wipe the in-memory cache and forbid retraining.
        clear_caches()

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("a registered oracle must be loaded, not retrained")

        monkeypatch.setattr(campaign_module, "train_and_register_predictor", forbidden)
        loaded = get_or_train_predictor(
            "DS-2", AttackVector.DISAPPEAR, seed=17, training_epochs=3, store=store
        )
        raw = np.random.default_rng(0).normal(size=(8, 4)) * 10.0
        np.testing.assert_array_equal(loaded.predict_batch(raw), trained.predict_batch(raw))
        clear_caches()

    def test_each_store_receives_its_own_published_model(self, tmp_path):
        # The predictor cache key includes the store root: a second store in
        # the same process must still get the publish-to-registry side effect.
        from repro.experiments.campaign import clear_caches
        from repro.experiments.store import ExperimentStore

        store_a = ExperimentStore(tmp_path / "a")
        store_b = ExperimentStore(tmp_path / "b")
        clear_caches()
        get_or_train_predictor(
            "DS-2", AttackVector.DISAPPEAR, seed=17, training_epochs=2, store=store_a
        )
        get_or_train_predictor(
            "DS-2", AttackVector.DISAPPEAR, seed=17, training_epochs=2, store=store_b
        )
        assert store_a.model_hashes() == store_b.model_hashes() != []
        clear_caches()

    def test_kinematic_predictor_ignores_the_store(self, tmp_path):
        from repro.experiments.store import ExperimentStore

        predictor = get_or_train_predictor(
            "DS-1", AttackVector.DISAPPEAR, kind=PredictorKind.KINEMATIC,
            store=ExperimentStore(tmp_path),
        )
        assert isinstance(predictor, KinematicSafetyPredictor)
        assert not (tmp_path / "models").exists()


class TestCharacterization:
    def test_fig5_report_structure(self):
        report = characterize_detector(duration_s=25.0, seed=3)
        assert set(report.per_class) == {ActorKind.VEHICLE, ActorKind.PEDESTRIAN}
        for characterization in report.per_class.values():
            assert characterization.n_frames_observed > 0
            assert characterization.misdetection_burst_fit.rate > 0
            assert characterization.center_error_x_fit.sigma > 0

    def test_kmax_derived_from_characterization(self):
        report = characterize_detector(duration_s=25.0, seed=3)
        assert report.k_max_frames(ActorKind.VEHICLE) >= 1
        assert report.k_max_frames(ActorKind.PEDESTRIAN) >= 1

    def test_pedestrian_center_noise_wider_than_vehicle(self):
        report = characterize_detector(duration_s=40.0, seed=4)
        vehicle = report.per_class[ActorKind.VEHICLE]
        pedestrian = report.per_class[ActorKind.PEDESTRIAN]
        assert pedestrian.center_error_x_fit.sigma > vehicle.center_error_x_fit.sigma

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            characterize_detector(duration_s=0.0)

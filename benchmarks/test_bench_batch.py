"""Micro-benchmark: scalar vs. vectorized batch simulation throughput.

Times the reference :class:`~repro.sim.simulator.Simulator` against the
lockstep :class:`~repro.sim.batch.BatchSimulator` on identically-seeded DS-1
runs, printing runs/sec at every batch width N in {1, 16, 64, 256} so the
perf trajectory is recorded in BENCH output.  The within-process speedup
comes from amortizing the per-step interpreter overhead (stacked Kalman
algebra, one lockstep loop) across lanes and is orthogonal to ``--jobs``
process fan-out: campaigns compose both (``engine="batch"`` + ``--jobs``).

The >= 5x assertion at N=64 is the ISSUE acceptance bound; like the other
benchmarks, ``REPRO_BENCH_STRICT=0`` demotes it to a recorded metric for
noisy shared runners.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

import numpy as np
import pytest

from repro.experiments.campaign import build_ads_agent
from repro.sim.batch import BatchRunSpec, BatchSimulator
from repro.sim.scenarios import build_scenario
from repro.sim.simulator import Simulator

_WIDTHS = (1, 16, 64, 256)
_GATED_WIDTH = 64
_MIN_SPEEDUP = 5.0
#: Scalar runs timed to estimate the baseline (full 256 would dominate wall time).
_SCALAR_SAMPLE = 8


def _run_setups(n: int) -> List[Tuple[object, object, np.random.Generator]]:
    """N independently-seeded DS-1 runs, seeded like a campaign would."""
    setups = []
    for index in range(n):
        rng = np.random.default_rng(
            np.random.SeedSequence([424242, index]).generate_state(1)[0]
        )
        scenario = build_scenario("DS-1")
        ads = build_ads_agent(
            scenario, np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        )
        int(rng.integers(0, 2**31 - 1))  # attacker-slot draw, campaign draw order
        sim_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        setups.append((scenario, ads, sim_rng))
    return setups


def test_bench_batch_engine_throughput():
    # Scalar baseline: best-of-two over a sample of runs, extrapolated to
    # runs/sec (every run is the same scenario and duration).
    scalar_s = float("inf")
    for _ in range(2):
        setups = _run_setups(_SCALAR_SAMPLE)
        start = time.perf_counter()
        for scenario, ads, rng in setups:
            Simulator(scenario, ads, rng=rng).run()
        scalar_s = min(scalar_s, time.perf_counter() - start)
    scalar_per_run = scalar_s / _SCALAR_SAMPLE
    print(f"\nscalar    : {1.0 / scalar_per_run:8.1f} runs/sec")

    speedups = {}
    for width in _WIDTHS:
        batch_s = float("inf")
        for _ in range(2):
            specs = [
                BatchRunSpec(scenario=scenario, ads=ads, rng=rng)
                for scenario, ads, rng in _run_setups(width)
            ]
            start = time.perf_counter()
            results = BatchSimulator(specs).run()
            batch_s = min(batch_s, time.perf_counter() - start)
        assert len(results) == width
        per_run = batch_s / width
        speedups[width] = scalar_per_run / per_run
        print(
            f"batch N={width:<4d}: {1.0 / per_run:8.1f} runs/sec "
            f"(speedup {speedups[width]:.2f}x)"
        )

    # REPRO_BENCH_STRICT=0 demotes the bound to a recorded metric.
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict:
        assert speedups[_GATED_WIDTH] >= _MIN_SPEEDUP, (
            f"expected >= {_MIN_SPEEDUP}x runs/sec over the scalar loop at "
            f"N={_GATED_WIDTH}, measured {speedups[_GATED_WIDTH]:.2f}x"
        )
    elif speedups[_GATED_WIDTH] < _MIN_SPEEDUP:
        pytest.skip(
            f"non-strict mode: measured {speedups[_GATED_WIDTH]:.2f}x "
            f"(< {_MIN_SPEEDUP}x) at N={_GATED_WIDTH}"
        )

"""Tests for distribution fitting and summary statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    boxplot_stats,
    fit_exponential,
    fit_normal,
    percentile,
)


class TestFitExponential:
    def test_recovers_rate_of_synthetic_data(self):
        rng = np.random.default_rng(0)
        samples = 1.0 + rng.exponential(scale=2.0, size=20_000)
        fit = fit_exponential(samples, loc=1.0)
        assert fit.loc == 1.0
        assert fit.rate == pytest.approx(0.5, rel=0.05)

    def test_mean_matches_loc_plus_inverse_rate(self):
        fit = fit_exponential([1.0, 2.0, 3.0, 4.0], loc=1.0)
        assert fit.mean == pytest.approx(1.0 + 1.0 / fit.rate)

    def test_loc_defaults_to_minimum(self):
        fit = fit_exponential([2.0, 3.0, 5.0])
        assert fit.loc == 2.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([])

    def test_samples_below_loc_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([0.5, 2.0], loc=1.0)

    def test_percentile_monotone(self):
        fit = fit_exponential([1, 2, 3, 4, 8], loc=1.0)
        assert fit.percentile(99) > fit.percentile(50)

    def test_percentile_out_of_range_rejected(self):
        fit = fit_exponential([1, 2, 3], loc=1.0)
        with pytest.raises(ValueError):
            fit.percentile(101)

    def test_pdf_zero_below_loc(self):
        fit = fit_exponential([1, 2, 3], loc=1.0)
        assert fit.pdf(np.array([0.0]))[0] == 0.0

    def test_degenerate_samples_handled(self):
        fit = fit_exponential([1.0, 1.0, 1.0], loc=1.0)
        assert fit.rate > 0


class TestFitNormal:
    def test_recovers_moments(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.2, 0.5, size=20_000)
        fit = fit_normal(samples)
        assert fit.mu == pytest.approx(0.2, abs=0.02)
        assert fit.sigma == pytest.approx(0.5, rel=0.05)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_normal([])

    def test_constant_samples_give_positive_sigma(self):
        fit = fit_normal([1.0, 1.0, 1.0])
        assert fit.sigma > 0

    def test_pdf_peaks_at_mean(self):
        fit = fit_normal([0.0, 1.0, 2.0])
        xs = np.array([fit.mu - 1.0, fit.mu, fit.mu + 1.0])
        densities = fit.pdf(xs)
        assert densities[1] == max(densities)

    def test_percentile_median_is_mu(self):
        fit = fit_normal([0.0, 2.0, 4.0, 6.0])
        assert fit.percentile(50) == pytest.approx(fit.mu, abs=1e-9)


class TestBoxplotStats:
    def test_five_number_summary_ordering(self):
        stats = boxplot_stats([5.0, 1.0, 3.0, 2.0, 4.0])
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum

    def test_median_of_known_data(self):
        assert boxplot_stats([1, 2, 3, 4, 5]).median == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_n_samples_recorded(self):
        assert boxplot_stats([1.0, 2.0]).n_samples == 2

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_summary_bounds_hold_for_arbitrary_data(self, values):
        stats = boxplot_stats(values)
        assert stats.minimum == pytest.approx(min(values))
        assert stats.maximum == pytest.approx(max(values))
        assert stats.minimum <= stats.median <= stats.maximum


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_extremes(self):
        data = [1, 2, 3]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

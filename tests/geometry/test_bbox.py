"""Tests for bounding boxes and IoU."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import BoundingBox, iou

coords = st.floats(-1e4, 1e4, allow_nan=False)
sizes = st.floats(0.1, 1e3, allow_nan=False)


def boxes():
    return st.builds(BoundingBox, cx=coords, cy=coords, width=sizes, height=sizes)


class TestBoundingBoxBasics:
    def test_corner_accessors(self):
        box = BoundingBox(cx=10, cy=20, width=4, height=6)
        assert box.x_min == 8 and box.x_max == 12
        assert box.y_min == 17 and box.y_max == 23

    def test_area(self):
        assert BoundingBox(0, 0, 4, 5).area == 20

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -1, 1)

    def test_translated(self):
        box = BoundingBox(0, 0, 2, 2).translated(3, -4)
        assert box.center == (3, -4)

    def test_scaled(self):
        box = BoundingBox(0, 0, 2, 4).scaled(2.0)
        assert box.width == 4 and box.height == 8

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 2, 2).scaled(-1)

    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(0.5, 0.5)
        assert not box.contains_point(2.0, 0.0)

    def test_from_corners_round_trip(self):
        box = BoundingBox.from_corners(1, 2, 5, 10)
        assert box.cx == 3 and box.cy == 6
        assert box.width == 4 and box.height == 8

    def test_from_corners_invalid_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_corners(5, 0, 1, 1)


class TestIoU:
    def test_identical_boxes_have_iou_one(self):
        box = BoundingBox(0, 0, 10, 10)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes_have_iou_zero(self):
        assert iou(BoundingBox(0, 0, 2, 2), BoundingBox(10, 10, 2, 2)) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 0, 2, 2)  # overlap area 2, union 6
        assert iou(a, b) == pytest.approx(1.0 / 3.0)

    def test_contained_box(self):
        outer = BoundingBox(0, 0, 4, 4)
        inner = BoundingBox(0, 0, 2, 2)
        assert iou(outer, inner) == pytest.approx(4.0 / 16.0)

    def test_zero_area_boxes(self):
        a = BoundingBox(0, 0, 0, 0)
        assert iou(a, a) == 0.0

    def test_method_and_function_agree(self):
        a = BoundingBox(0, 0, 3, 3)
        b = BoundingBox(1, 1, 3, 3)
        assert a.iou(b) == iou(a, b)

    @given(boxes(), boxes())
    def test_iou_symmetric_and_bounded(self, a, b):
        value = iou(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(iou(b, a))

    @given(boxes(), st.floats(-100, 100), st.floats(-100, 100))
    def test_translation_invariance(self, box, dx, dy):
        other = box.translated(1.0, 1.0)
        moved_a = box.translated(dx, dy)
        moved_b = other.translated(dx, dy)
        assert iou(box, other) == pytest.approx(iou(moved_a, moved_b), abs=1e-6)

    @given(boxes())
    def test_intersection_bounded_by_smaller_area(self, box):
        other = box.translated(box.width / 4, 0.0)
        assert box.intersection_area(other) <= min(box.area, other.area) + 1e-9

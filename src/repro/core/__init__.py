"""RoboTack: the paper's primary contribution.

The smart malware answers three questions (paper §I):

* **what** to attack — the scenario matcher selects the target object and an
  attack vector (`Move_Out`, `Move_In`, `Disappear`) from the rule table of
  paper Table I (:mod:`repro.core.scenario_matcher`);
* **when** to attack — the safety hijacker predicts the post-attack safety
  potential with a feed-forward neural network and binary-searches the minimal
  attack window (:mod:`repro.core.safety_hijacker`);
* **how** to attack — the trajectory hijacker perturbs the camera feed within
  the detector's characterized noise so the Kalman-filter tracker follows a
  fake trajectory (:mod:`repro.core.trajectory_hijacker`).

:mod:`repro.core.robotack` combines the three into the per-frame attack
procedure of paper Algorithm 1; :mod:`repro.core.baselines` provides the
random-attack baseline and the "RoboTack without safety hijacker" ablation;
:mod:`repro.core.training` collects the simulation dataset used to train the
safety hijacker.
"""

from repro.core.attack_vectors import AttackVector
from repro.core.baselines import RandomAttacker, RoboTackWithoutSafetyHijacker
from repro.core.robotack import RoboTack, RoboTackConfig
from repro.core.safety_hijacker import (
    AttackDecision,
    AttackFeatures,
    KinematicSafetyPredictor,
    NeuralSafetyPredictor,
    SafetyHijacker,
    SafetyHijackerConfig,
)
from repro.core.scenario_matcher import ScenarioMatcher, TrajectoryClass
from repro.core.trajectory_hijacker import TrajectoryHijacker, TrajectoryHijackerConfig
from repro.core.training import (
    OracleArtifact,
    SafetyDataset,
    ScriptedAttacker,
    collect_safety_dataset,
    load_registered_predictor,
    train_and_register_predictor,
    train_neural_safety_predictor,
)

__all__ = [
    "AttackVector",
    "RandomAttacker",
    "RoboTackWithoutSafetyHijacker",
    "RoboTack",
    "RoboTackConfig",
    "AttackDecision",
    "AttackFeatures",
    "KinematicSafetyPredictor",
    "NeuralSafetyPredictor",
    "SafetyHijacker",
    "SafetyHijackerConfig",
    "ScenarioMatcher",
    "TrajectoryClass",
    "TrajectoryHijacker",
    "TrajectoryHijackerConfig",
    "OracleArtifact",
    "SafetyDataset",
    "ScriptedAttacker",
    "collect_safety_dataset",
    "load_registered_predictor",
    "train_and_register_predictor",
    "train_neural_safety_predictor",
]

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ads.agent import AdsAgent
from repro.ads.planning import PlannerConfig
from repro.sim.road import Road
from repro.sim.scenarios import ScenarioVariation, build_scenario


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def road() -> Road:
    """The default three-lane road used by every scenario."""
    return Road()


@pytest.fixture
def nominal_ds1():
    """DS-1 (car following) with nominal, unrandomized initial conditions."""
    return build_scenario("DS-1", ScenarioVariation.nominal())


@pytest.fixture
def nominal_ds2():
    """DS-2 (pedestrian crossing) with nominal initial conditions."""
    return build_scenario("DS-2", ScenarioVariation.nominal())


def make_ads_agent(scenario, seed: int = 1) -> AdsAgent:
    """Build the victim ADS for a scenario with a fixed seed."""
    return AdsAgent(
        road=scenario.road,
        planner_config=PlannerConfig(cruise_speed_mps=scenario.cruise_speed_mps),
        rng=np.random.default_rng(seed),
    )


@pytest.fixture
def ads_factory():
    """Factory fixture for building seeded ADS agents."""
    return make_ads_agent

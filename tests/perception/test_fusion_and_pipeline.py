"""Tests for camera/LiDAR fusion and the full perception pipeline."""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.perception.fusion import (
    FUSION_POLICIES,
    CameraOnlyFusion,
    ConsistencyGatedFusion,
    FusionConfig,
    LidarOnlyFusion,
    SensorFusion,
    build_fusion_policy,
    list_fusion_policies,
)
from repro.perception.pipeline import PerceptionConfig, PerceptionSystem
from repro.perception.transforms import WorldObjectEstimate
from repro.sensors.camera import CameraSensor
from repro.sensors.lidar import LidarDetection, LidarScan, LidarSensor
from repro.sim.actors import ActorKind
from repro.sim.scenarios import ScenarioVariation, build_scenario

FRAME_DT = 1.0 / 15.0


def camera_estimate(distance, lateral, kind=ActorKind.VEHICLE, track_id=1, actor_id=1, v_rel=0.0):
    return WorldObjectEstimate(
        track_id=track_id,
        actor_id=actor_id,
        kind=kind,
        distance_m=distance,
        lateral_m=lateral,
        relative_longitudinal_velocity_mps=v_rel,
        relative_longitudinal_acceleration_mps2=0.0,
        lateral_velocity_mps=0.0,
        age_frames=5,
    )


def lidar_scan(step, detections):
    return LidarScan(time_s=step * FRAME_DT, frame_index=step, detections=tuple(detections))


def lidar_detection(distance, lateral, kind=ActorKind.VEHICLE, actor_id=1, speed=5.0):
    return LidarDetection(
        actor_id=actor_id,
        kind=kind,
        relative_position=Vec2(distance, lateral),
        velocity=Vec2(speed, 0.0),
    )


class TestRegistration:
    def test_camera_plus_lidar_registers_quickly(self):
        fusion = SensorFusion()
        obstacles = []
        for step in range(4):
            obstacles = fusion.step(
                [camera_estimate(30.0, 0.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert len(obstacles) == 1
        assert set(obstacles[0].sources) == {"camera", "lidar"}

    def test_camera_only_registration_is_delayed(self):
        config = FusionConfig(camera_only_registration_frames=8)
        fusion = SensorFusion(config)
        for step in range(5):
            obstacles = fusion.step(
                [camera_estimate(50.0, 0.0, kind=ActorKind.PEDESTRIAN)],
                None,
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert obstacles == []
        for step in range(5, 12):
            obstacles = fusion.step(
                [camera_estimate(50.0, 0.0, kind=ActorKind.PEDESTRIAN)],
                None,
                ego_speed_mps=10.0,
                frame_dt_s=FRAME_DT,
            )
        assert len(obstacles) == 1

    def test_lidar_only_registration_is_much_slower(self):
        config = FusionConfig(lidar_only_registration_scans=30)
        fusion = SensorFusion(config)
        obstacles = []
        for step in range(25):
            obstacles = fusion.step(
                [], lidar_scan(step, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert obstacles == []


class TestLateralBlending:
    def test_fused_lateral_between_camera_and_lidar(self):
        fusion = SensorFusion(FusionConfig(camera_weight=0.65))
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(30.0, 2.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert 0.5 < obstacles[0].lateral_m < 2.0

    def test_camera_only_lateral_passes_through(self):
        fusion = SensorFusion()
        obstacles = []
        for step in range(12):
            obstacles = fusion.step(
                [camera_estimate(40.0, -2.5, kind=ActorKind.PEDESTRIAN)], None, 10.0, FRAME_DT
            )
        assert obstacles[0].lateral_m == pytest.approx(-2.5, abs=0.01)

    def test_distance_is_lidar_dominated(self):
        fusion = SensorFusion(FusionConfig(camera_distance_weight=0.25))
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(26.0, 0.0)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert obstacles[0].distance_m == pytest.approx(29.0, abs=0.3)


class TestDropBehaviour:
    def _register_fused_track(self, fusion):
        for step in range(6):
            obstacles = fusion.step(
                [camera_estimate(25.0, 0.0)],
                lidar_scan(step, [lidar_detection(25.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        assert obstacles
        return 6

    def test_lidar_backed_obstacle_survives_brief_camera_loss(self):
        fusion = SensorFusion()
        step = self._register_fused_track(fusion)
        for offset in range(5):
            obstacles = fusion.step(
                [], lidar_scan(step + offset, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert len(obstacles) == 1

    def test_lidar_backed_obstacle_dropped_after_sustained_camera_loss(self):
        config = FusionConfig(lidar_backed_timeout_frames=12)
        fusion = SensorFusion(config)
        step = self._register_fused_track(fusion)
        for offset in range(config.lidar_backed_timeout_frames + 3):
            obstacles = fusion.step(
                [], lidar_scan(step + offset, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT
            )
        assert obstacles == []

    def test_camera_only_obstacle_dropped_after_timeout(self):
        config = FusionConfig(camera_only_timeout_frames=10)
        fusion = SensorFusion(config)
        for _ in range(12):
            fusion.step([camera_estimate(40.0, 0.0, kind=ActorKind.PEDESTRIAN)], None, 10.0, FRAME_DT)
        for _ in range(config.camera_only_timeout_frames + 2):
            obstacles = fusion.step([], None, 10.0, FRAME_DT)
        assert obstacles == []

    def test_reset_clears_state(self):
        fusion = SensorFusion()
        self._register_fused_track(fusion)
        fusion.reset()
        assert fusion.step([], None, 10.0, FRAME_DT) == []


class TestAssociation:
    def test_one_lane_apart_objects_stay_separate(self):
        fusion = SensorFusion()
        for step in range(8):
            obstacles = fusion.step(
                [camera_estimate(30.0, 0.0, track_id=1, actor_id=1)],
                lidar_scan(
                    step,
                    [
                        lidar_detection(30.0, 0.0, actor_id=1),
                        lidar_detection(31.0, 3.5, actor_id=2, speed=-10.0),
                    ],
                ),
                10.0,
                FRAME_DT,
            )
        # The in-lane fused obstacle keeps the in-lane lateral position; the
        # oncoming vehicle one lane over does not contaminate it.
        in_lane = [o for o in obstacles if abs(o.lateral_m) < 1.0]
        assert len(in_lane) == 1
        assert in_lane[0].longitudinal_speed_mps > 0

    def test_new_camera_track_reassociates_with_existing_object(self):
        fusion = SensorFusion()
        for step in range(6):
            fusion.step(
                [camera_estimate(30.0, 0.0, track_id=1)],
                lidar_scan(step, [lidar_detection(30.0, 0.0)]),
                10.0,
                FRAME_DT,
            )
        # The camera track id changes (e.g. after a misdetection burst); the
        # evidence must flow into the same fused track instead of duplicating.
        obstacles = fusion.step(
            [camera_estimate(30.0, 0.2, track_id=9)],
            lidar_scan(7, [lidar_detection(30.0, 0.0)]),
            10.0,
            FRAME_DT,
        )
        assert len(obstacles) == 1


class TestFusionConfigValidation:
    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(camera_weight=1.5)

    def test_invalid_gate_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(association_gate_m=0.0)

    @pytest.mark.parametrize(
        "field",
        [
            "camera_weight",
            "camera_distance_weight",
            "lateral_velocity_smoothing",
            "consistency_camera_penalty",
        ],
    )
    def test_unit_interval_fields_rejected_outside_range(self, field):
        with pytest.raises(ValueError, match="must be in"):
            FusionConfig(**{field: -0.1})
        with pytest.raises(ValueError, match="must be in"):
            FusionConfig(**{field: 1.01})

    @pytest.mark.parametrize(
        "field",
        [
            "fused_registration_frames",
            "camera_only_registration_frames",
            "lidar_only_registration_scans",
            "camera_only_timeout_frames",
            "lidar_backed_timeout_frames",
            "lidar_only_timeout_scans",
            "lateral_velocity_baseline_frames",
        ],
    )
    def test_count_fields_must_be_positive(self, field):
        with pytest.raises(ValueError, match="must be positive"):
            FusionConfig(**{field: 0})

    def test_negative_gate_range_factor_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FusionConfig(association_gate_range_factor=-0.1)

    def test_non_positive_consistency_gate_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            FusionConfig(consistency_gate_m=0.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown fusion policy"):
            FusionConfig(policy="kalman")

    def test_boundary_values_accepted(self):
        config = FusionConfig(
            camera_weight=0.0,
            camera_distance_weight=1.0,
            lateral_velocity_smoothing=0.0,
            consistency_camera_penalty=1.0,
            association_gate_range_factor=0.0,
        )
        assert config.camera_weight == 0.0


class TestPolicyRegistry:
    def test_builtin_policies_registered(self):
        assert list_fusion_policies() == [
            "camera_only",
            "consistency_gated",
            "late",
            "lidar_only",
        ]
        assert "late" in FUSION_POLICIES

    def test_build_fusion_policy_returns_expected_types(self):
        assert type(build_fusion_policy("late")) is SensorFusion
        assert type(build_fusion_policy("camera_only")) is CameraOnlyFusion
        assert type(build_fusion_policy("lidar_only")) is LidarOnlyFusion
        assert type(build_fusion_policy("consistency_gated")) is ConsistencyGatedFusion

    def test_build_fusion_policy_unknown_name(self):
        with pytest.raises(Exception, match="unknown fusion policy"):
            build_fusion_policy("ekf")


class TestConsistencyGatedFusion:
    def _run(self, fusion, camera_lateral, lidar_lateral, steps=6):
        obstacles = []
        for step in range(steps):
            obstacles = fusion.step(
                [camera_estimate(30.0, camera_lateral)],
                lidar_scan(step, [lidar_detection(30.0, lidar_lateral)]),
                10.0,
                FRAME_DT,
            )
        return obstacles

    def test_agreeing_modalities_match_late_fusion(self):
        config = FusionConfig(policy="consistency_gated")
        gated = self._run(ConsistencyGatedFusion(config), 0.4, 0.2)
        late = self._run(SensorFusion(FusionConfig()), 0.4, 0.2)
        assert gated[0].lateral_m == pytest.approx(late[0].lateral_m)
        assert gated[0].distance_m == pytest.approx(late[0].distance_m)

    def test_disagreeing_camera_is_down_weighted(self):
        # Camera claims the object slid 2 m laterally; LiDAR disagrees (still
        # close enough to associate into one track).  The gated policy should
        # land much closer to the LiDAR lateral than the plain late fusion.
        config = FusionConfig(policy="consistency_gated", consistency_gate_m=1.2)
        gated = self._run(ConsistencyGatedFusion(config), 2.0, 0.0)
        late = self._run(SensorFusion(FusionConfig()), 2.0, 0.0)
        assert abs(gated[0].lateral_m) < abs(late[0].lateral_m)
        assert abs(gated[0].lateral_m) < 0.5 * abs(late[0].lateral_m)


class TestCameraOnlyFusion:
    def test_passes_camera_estimates_through(self):
        fusion = CameraOnlyFusion()
        obstacles = fusion.step(
            [camera_estimate(40.0, -1.5, v_rel=-3.0)], None, ego_speed_mps=10.0, frame_dt_s=FRAME_DT
        )
        assert len(obstacles) == 1
        assert obstacles[0].sources == ("camera",)
        assert obstacles[0].distance_m == pytest.approx(40.0)
        assert obstacles[0].lateral_m == pytest.approx(-1.5)
        assert obstacles[0].longitudinal_speed_mps == pytest.approx(7.0)

    def test_ignores_lidar_scan(self):
        fusion = CameraOnlyFusion()
        obstacles = fusion.step(
            [], lidar_scan(0, [lidar_detection(20.0, 0.0)]), 10.0, FRAME_DT
        )
        assert obstacles == []


class TestLidarOnlyFusion:
    def test_registers_from_lidar_alone(self):
        config = FusionConfig(policy="lidar_only")
        fusion = LidarOnlyFusion(config)
        obstacles = []
        for step in range(config.fused_registration_frames + 2):
            obstacles = fusion.step(
                [], lidar_scan(step, [lidar_detection(25.0, 0.5)]), 10.0, FRAME_DT
            )
        assert len(obstacles) == 1
        assert obstacles[0].sources == ("lidar",)
        assert obstacles[0].distance_m == pytest.approx(25.0)

    def test_ignores_camera_estimates(self):
        fusion = LidarOnlyFusion()
        obstacles = []
        for _ in range(12):
            obstacles = fusion.step([camera_estimate(30.0, 0.0)], None, 10.0, FRAME_DT)
        assert obstacles == []

    def test_track_dropped_after_timeout(self):
        config = FusionConfig(policy="lidar_only", lidar_only_timeout_scans=4)
        fusion = LidarOnlyFusion(config)
        for step in range(6):
            fusion.step([], lidar_scan(step, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT)
        obstacles = []
        for step in range(6, 6 + config.lidar_only_timeout_scans + 2):
            obstacles = fusion.step([], lidar_scan(step, []), 10.0, FRAME_DT)
        assert obstacles == []

    def test_reset_clears_tracks(self):
        fusion = LidarOnlyFusion()
        for step in range(8):
            fusion.step([], lidar_scan(step, [lidar_detection(25.0, 0.0)]), 10.0, FRAME_DT)
        fusion.reset()
        assert fusion.step([], None, 10.0, FRAME_DT) == []


class TestPerceptionSystem:
    def test_full_pipeline_detects_lead_vehicle(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        lidar = LidarSensor(rng=np.random.default_rng(0))
        system = PerceptionSystem(rng=np.random.default_rng(1))
        output = None
        for _ in range(8):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), lidar.scan(snapshot), ego_speed_mps=12.5)
            scenario.world.step(FRAME_DT, 0.0)
        assert output.obstacles
        lead = output.obstacles[0]
        assert lead.kind is ActorKind.VEHICLE
        assert lead.distance_m == pytest.approx(58.0, abs=6.0)
        assert abs(lead.lateral_m) < 1.0

    def test_camera_only_mode_uses_camera_only_policy(self):
        config = PerceptionConfig(use_lidar=False)
        assert config.fusion_policy == "camera_only"
        system = PerceptionSystem(config, rng=np.random.default_rng(2))
        assert type(system.fusion) is CameraOnlyFusion
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        output = None
        for _ in range(6):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), None, ego_speed_mps=12.5)
            scenario.world.step(FRAME_DT, 0.0)
        assert output.obstacles
        assert output.obstacles[0].sources == ("camera",)

    def test_use_lidar_false_identical_to_camera_only_policy(self):
        # The deprecated ``use_lidar=False`` flag is an alias for the
        # ``camera_only`` policy — same code path, identical outputs.
        legacy = PerceptionSystem(
            PerceptionConfig(use_lidar=False), rng=np.random.default_rng(7)
        )
        policy = PerceptionSystem(
            PerceptionConfig(fusion=FusionConfig(policy="camera_only")),
            rng=np.random.default_rng(7),
        )
        scenario = build_scenario("DS-2", ScenarioVariation.nominal())
        camera = CameraSensor()
        for _ in range(20):
            snapshot = scenario.world.snapshot()
            legacy_out = legacy.process(camera.capture(snapshot), None, 12.5)
            policy_out = policy.process(camera.capture(snapshot), None, 12.5)
            assert legacy_out.obstacles == policy_out.obstacles
            scenario.world.step(FRAME_DT, 0.0)

    def test_perception_config_resolves_policy_from_fusion(self):
        assert PerceptionConfig().fusion_policy == "late"
        config = PerceptionConfig(fusion=FusionConfig(policy="lidar_only"))
        assert config.fusion_policy == "lidar_only"
        system = PerceptionSystem(config, rng=np.random.default_rng(8))
        assert type(system.fusion) is LidarOnlyFusion

    def test_output_lookup_helpers(self):
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        system = PerceptionSystem(rng=np.random.default_rng(3))
        camera = CameraSensor()
        lidar = LidarSensor(rng=np.random.default_rng(4))
        target_id = scenario.target_actor_id
        found = False
        output = None
        # Individual frames can fall inside a misdetection burst and obstacle
        # registration takes a few frames, so look for a frame where both the
        # camera estimate and the fused obstacle exist.
        for _ in range(25):
            snapshot = scenario.world.snapshot()
            output = system.process(camera.capture(snapshot), lidar.scan(snapshot), 12.5)
            scenario.world.step(FRAME_DT, 0.0)
            if (
                output.estimate_for_actor(target_id) is not None
                and output.obstacle_for_actor(target_id) is not None
            ):
                found = True
                break
        assert found
        assert output.nearest_obstacle() is not None
        assert output.estimate_for_actor(10**9) is None

    def test_reset_restores_clean_state(self):
        system = PerceptionSystem(rng=np.random.default_rng(5))
        scenario = build_scenario("DS-1", ScenarioVariation.nominal())
        camera = CameraSensor()
        for _ in range(5):
            system.process(camera.capture(scenario.world.snapshot()), None, 12.5)
        system.reset()
        assert system.tracker.tracks == {}

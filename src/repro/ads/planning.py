"""The longitudinal planner: cruise, car-following, and emergency braking.

The planner consumes the world model and produces a desired longitudinal
acceleration.  Behaviourally it reproduces the Apollo reactions that the
paper's attacks exploit:

* with no relevant obstacle, accelerate to and hold the cruise speed
  ("lane-keep mode");
* with an in-path obstacle, follow it with an Intelligent-Driver-Model-style
  gap controller under comfortable accelerations;
* when the situation cannot be resolved comfortably (an obstacle appears too
  close or is closing too fast), command **emergency braking** — the
  safety-hazard event counted throughout the paper's evaluation;
* a caution rule caps the speed when a pedestrian stands close to the ego
  lane (DS-4's golden-run behaviour of slowing from 45 kph to 35 kph).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.ads.prediction import ObstaclePredictor, PredictionConfig
from repro.ads.safety import SafetyModel
from repro.ads.world_model import WorldModel
from repro.perception.fusion import FusedObstacle
from repro.sim.road import Road
from repro.utils.units import kph_to_mps

__all__ = ["PlannerConfig", "PlanningDecision", "LongitudinalPlanner"]


@dataclass(frozen=True)
class PlannerConfig:
    """Parameters of the longitudinal planner."""

    #: Cruise (target) speed when the road ahead is clear.
    cruise_speed_mps: float = kph_to_mps(45.0)
    #: Maximum comfortable acceleration.
    max_accel_mps2: float = 1.2
    #: Maximum comfortable deceleration (also used in the safety model).
    comfortable_decel_mps2: float = 3.0
    #: Maximum (emergency) deceleration.
    max_decel_mps2: float = 6.0
    #: IDM time headway towards the lead obstacle (tuned so the EV settles
    #: roughly 20 m behind a 25 kph lead vehicle, as in the paper's DS-1).
    time_headway_s: float = 2.2
    #: IDM standstill distance.
    standstill_gap_m: float = 3.0
    #: After the lead obstacle is lost (dropped from the world model without
    #: being overtaken), the planner coasts — holds its speed instead of
    #: re-accelerating — for this many cycles.  A cautious ADS does not
    #: immediately speed up into space that was occupied a moment ago.
    lost_lead_coast_frames: int = 20
    #: Deceleration demand (m/s^2) above which the planner escalates to
    #: emergency braking.
    emergency_decel_demand_mps2: float = 3.5
    #: Perceived safety potential (m) below which the planner emergency-brakes
    #: while closing on the obstacle (matches the 4 m accident threshold of the
    #: safety model).
    emergency_delta_m: float = 4.0
    #: Pedestrian caution speed cap (paper DS-4: the EV slows to 35 kph).
    pedestrian_caution_speed_mps: float = kph_to_mps(35.0)
    #: Range within which a near-lane pedestrian triggers the caution cap.
    pedestrian_caution_range_m: float = 45.0
    #: Lateral margin outside the ego lane that still counts as "near" for the
    #: pedestrian caution rule.
    pedestrian_caution_margin_m: float = 1.6
    prediction: PredictionConfig = field(default_factory=PredictionConfig)

    def __post_init__(self) -> None:
        if self.cruise_speed_mps <= 0:
            raise ValueError("cruise speed must be positive")
        if self.max_decel_mps2 < self.comfortable_decel_mps2:
            raise ValueError("max deceleration must be at least the comfortable deceleration")


@dataclass(frozen=True)
class PlanningDecision:
    """Output of one planning cycle."""

    #: Desired longitudinal acceleration before actuation smoothing.
    desired_acceleration_mps2: float
    #: Whether the planner escalated to emergency braking this cycle.
    emergency_brake: bool
    #: Perceived safety potential w.r.t. the lead in-path obstacle (inf if none).
    perceived_delta_m: float
    #: The obstacle the planner is reacting to, if any.
    lead_obstacle: Optional[FusedObstacle]
    #: Target speed after caution rules.
    target_speed_mps: float


class LongitudinalPlanner:
    """IDM-style longitudinal planning with emergency-braking escalation."""

    def __init__(self, road: Road, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()
        self.road = road
        self.predictor = ObstaclePredictor(road, self.config.prediction)
        self.safety_model = SafetyModel(
            comfortable_decel_mps2=self.config.comfortable_decel_mps2
        )
        self._cycles_since_lead_lost = 10_000

    def reset(self) -> None:
        """Clear the lost-lead coasting state for a fresh run."""
        self._cycles_since_lead_lost = 10_000

    def plan(self, world: WorldModel) -> PlanningDecision:
        """Produce the desired acceleration for the current world model."""
        cfg = self.config
        ego_speed = world.ego.speed_mps
        obstacles = list(world.obstacles)
        lead = self.predictor.nearest_in_path(obstacles)

        target_speed = cfg.cruise_speed_mps
        cautious_pedestrians = self.predictor.pedestrians_near_path(
            obstacles,
            max_distance_m=cfg.pedestrian_caution_range_m,
            caution_margin_m=cfg.pedestrian_caution_margin_m,
        )
        if cautious_pedestrians:
            target_speed = min(target_speed, cfg.pedestrian_caution_speed_mps)

        free_accel = self._free_road_acceleration(ego_speed, target_speed)

        if lead is None:
            self._cycles_since_lead_lost += 1
            if self._cycles_since_lead_lost <= cfg.lost_lead_coast_frames:
                # The lead obstacle vanished from the world model moments ago:
                # hold speed instead of accelerating into the gap it occupied.
                free_accel = min(free_accel, 0.0)
            return PlanningDecision(
                desired_acceleration_mps2=free_accel,
                emergency_brake=False,
                perceived_delta_m=float("inf"),
                lead_obstacle=None,
                target_speed_mps=target_speed,
            )
        self._cycles_since_lead_lost = 0

        gap = max(0.1, self.predictor.bumper_gap(lead))
        lead_speed = max(0.0, lead.longitudinal_speed_mps)
        closing_speed = ego_speed - lead_speed
        perceived_delta = self.safety_model.safety_potential(gap, ego_speed)

        interaction_accel = self._idm_acceleration(ego_speed, target_speed, gap, closing_speed)
        desired = min(free_accel, interaction_accel)

        emergency = self._emergency_required(gap, closing_speed, perceived_delta)
        if emergency:
            desired = -cfg.max_decel_mps2
        else:
            desired = max(desired, -cfg.comfortable_decel_mps2)

        return PlanningDecision(
            desired_acceleration_mps2=desired,
            emergency_brake=emergency,
            perceived_delta_m=perceived_delta,
            lead_obstacle=lead,
            target_speed_mps=target_speed,
        )

    # ------------------------------------------------------------------ #
    # Acceleration models
    # ------------------------------------------------------------------ #

    def _free_road_acceleration(self, ego_speed: float, target_speed: float) -> float:
        """IDM free-road term: approach the target speed comfortably."""
        cfg = self.config
        if target_speed <= 0:
            return -cfg.comfortable_decel_mps2
        speed_ratio = ego_speed / target_speed
        accel = cfg.max_accel_mps2 * (1.0 - speed_ratio**4)
        return float(min(max(accel, -cfg.comfortable_decel_mps2), cfg.max_accel_mps2))

    def _idm_acceleration(
        self, ego_speed: float, target_speed: float, gap: float, closing_speed: float
    ) -> float:
        """IDM interaction term for car-following."""
        cfg = self.config
        desired_gap = (
            cfg.standstill_gap_m
            + ego_speed * cfg.time_headway_s
            + ego_speed * closing_speed / (2.0 * math.sqrt(cfg.max_accel_mps2 * cfg.comfortable_decel_mps2))
        )
        desired_gap = max(desired_gap, cfg.standstill_gap_m)
        speed_ratio = ego_speed / max(target_speed, 0.1)
        accel = cfg.max_accel_mps2 * (1.0 - speed_ratio**4 - (desired_gap / gap) ** 2)
        return float(min(accel, cfg.max_accel_mps2))

    def _emergency_required(
        self, gap: float, closing_speed: float, perceived_delta: float
    ) -> bool:
        """Whether the situation demands more than comfortable braking."""
        cfg = self.config
        if closing_speed <= 0.3:
            return False
        required_decel = closing_speed**2 / (2.0 * max(gap - 1.0, 0.1))
        if required_decel > cfg.emergency_decel_demand_mps2:
            return True
        return perceived_delta < cfg.emergency_delta_m

"""Kalman filters.

The per-object tracker in the paper's perception system is a Kalman filter
("F" in Fig. 1) operating in a recursive predict/update loop with a Gaussian
measurement-noise model — which is precisely the assumption the attack
exploits (paper §III-B: noise injected within one standard deviation of the
modelled Gaussian cannot be distinguished from sensor noise, so the filter
tracks it).

:class:`KalmanFilter` is a generic linear filter; :class:`BoundingBoxKalmanFilter`
specializes it to the constant-velocity bounding-box state used by the
multi-object tracker.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import BoundingBox

__all__ = ["KalmanFilter", "BoundingBoxKalmanFilter"]


class KalmanFilter:
    """Generic linear Kalman filter with constant matrices."""

    def __init__(
        self,
        transition: np.ndarray,
        observation: np.ndarray,
        process_noise: np.ndarray,
        measurement_noise: np.ndarray,
        initial_state: np.ndarray,
        initial_covariance: np.ndarray,
    ):
        self.transition = np.asarray(transition, dtype=float)
        self.observation = np.asarray(observation, dtype=float)
        self.process_noise = np.asarray(process_noise, dtype=float)
        self.measurement_noise = np.asarray(measurement_noise, dtype=float)
        self.state = np.asarray(initial_state, dtype=float).reshape(-1)
        self.covariance = np.asarray(initial_covariance, dtype=float)
        n = self.state.shape[0]
        if self.transition.shape != (n, n):
            raise ValueError("transition matrix shape does not match state dimension")
        if self.covariance.shape != (n, n):
            raise ValueError("covariance shape does not match state dimension")
        m = self.observation.shape[0]
        if self.observation.shape != (m, n):
            raise ValueError("observation matrix shape is inconsistent")
        if self.measurement_noise.shape != (m, m):
            raise ValueError("measurement noise shape is inconsistent")

    def predict(self) -> np.ndarray:
        """Run the prediction step and return the predicted state."""
        self.state = self.transition @ self.state
        self.covariance = (
            self.transition @ self.covariance @ self.transition.T + self.process_noise
        )
        return self.state.copy()

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Run the update step with a measurement and return the new state.

        The gain solves ``K S = P Hᵀ`` directly (no explicit inverse) and the
        covariance uses the Joseph form ``(I−KH) P (I−KH)ᵀ + K R Kᵀ``, which —
        unlike the textbook ``(I−KH) P`` shortcut — keeps the covariance
        symmetric positive-semidefinite under floating-point error over long
        tracks; a final explicit symmetrization removes the last-bit asymmetry
        of the matrix products themselves.
        """
        measurement = np.asarray(measurement, dtype=float).reshape(-1)
        innovation = measurement - self.observation @ self.state
        innovation_cov = (
            self.observation @ self.covariance @ self.observation.T + self.measurement_noise
        )
        gain = np.linalg.solve(
            innovation_cov.T, (self.covariance @ self.observation.T).T
        ).T
        self.state = self.state + gain @ innovation
        identity = np.eye(self.state.shape[0])
        i_kh = identity - gain @ self.observation
        self.covariance = (
            i_kh @ self.covariance @ i_kh.T
            + gain @ self.measurement_noise @ gain.T
        )
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        return self.state.copy()

    def predicted_measurement(self) -> np.ndarray:
        """The measurement the filter expects given its current state."""
        return self.observation @ self.state


class BoundingBoxKalmanFilter:
    """Constant-velocity Kalman filter over an image-plane bounding box.

    State vector: ``[cx, cy, w, h, vx, vy]`` where ``vx, vy`` are the pixel
    velocities of the box centre per frame.  Measurements are ``[cx, cy, w, h]``.
    """

    STATE_DIM = 6
    MEASUREMENT_DIM = 4

    def __init__(
        self,
        initial_bbox: BoundingBox,
        process_noise_scale: float = 1.0,
        measurement_noise_scale: float = 10.0,
    ):
        transition = np.eye(self.STATE_DIM)
        transition[0, 4] = 1.0
        transition[1, 5] = 1.0
        observation = np.zeros((self.MEASUREMENT_DIM, self.STATE_DIM))
        observation[0, 0] = observation[1, 1] = observation[2, 2] = observation[3, 3] = 1.0
        process_noise = np.diag([1.0, 1.0, 0.5, 0.5, 2.0, 2.0]) * process_noise_scale
        measurement_noise = np.eye(self.MEASUREMENT_DIM) * measurement_noise_scale
        initial_state = np.array(
            [initial_bbox.cx, initial_bbox.cy, initial_bbox.width, initial_bbox.height, 0.0, 0.0]
        )
        initial_covariance = np.diag([10.0, 10.0, 10.0, 10.0, 100.0, 100.0])
        self._kf = KalmanFilter(
            transition=transition,
            observation=observation,
            process_noise=process_noise,
            measurement_noise=measurement_noise,
            initial_state=initial_state,
            initial_covariance=initial_covariance,
        )

    def predict(self) -> BoundingBox:
        """Advance the filter one frame and return the predicted box."""
        state = self._kf.predict()
        return self._state_to_bbox(state)

    def update(self, bbox: BoundingBox) -> BoundingBox:
        """Incorporate a measured box and return the filtered box."""
        self._kf.update(np.array([bbox.cx, bbox.cy, bbox.width, bbox.height]))
        return self.current_bbox()

    def current_bbox(self) -> BoundingBox:
        """The current filtered box estimate."""
        return self._state_to_bbox(self._kf.state)

    def velocity_px_per_frame(self) -> tuple[float, float]:
        """Estimated pixel velocity of the box centre, per frame."""
        return (float(self._kf.state[4]), float(self._kf.state[5]))

    @staticmethod
    def _state_to_bbox(state: np.ndarray) -> BoundingBox:
        width = max(float(state[2]), 1.0)
        height = max(float(state[3]), 1.0)
        return BoundingBox(cx=float(state[0]), cy=float(state[1]), width=width, height=height)

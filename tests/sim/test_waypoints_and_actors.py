"""Tests for waypoint routes, scripted actors, and the ego vehicle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.sim.actors import ActorDimensions, ActorKind, EgoVehicle, ScriptedActor
from repro.sim.waypoints import Waypoint, WaypointRoute


class TestWaypointRoute:
    def test_stationary_route_never_moves(self):
        route = WaypointRoute.stationary(Vec2(5, 1))
        route.advance(10.0)
        assert route.position == Vec2(5, 1)
        assert route.velocity == Vec2(0, 0)

    def test_straight_line_progress(self):
        route = WaypointRoute.straight_line(Vec2(0, 0), Vec2(10, 0), speed_mps=2.0)
        route.advance(1.0)
        assert route.position.x == pytest.approx(2.0)
        assert route.velocity == Vec2(2.0, 0.0)

    def test_route_stops_at_final_waypoint(self):
        route = WaypointRoute.straight_line(Vec2(0, 0), Vec2(4, 0), speed_mps=2.0)
        route.advance(10.0)
        assert route.position == Vec2(4, 0)
        assert route.finished
        assert route.velocity == Vec2(0, 0)

    def test_hold_delays_motion(self):
        route = WaypointRoute(
            [
                Waypoint(Vec2(0, 0), 0.0, hold_s=1.0),
                Waypoint(Vec2(10, 0), 2.0),
            ]
        )
        route.advance(1.0)
        assert route.position.x == pytest.approx(0.0)
        route.advance(1.0)
        assert route.position.x == pytest.approx(2.0)

    def test_multiple_segments(self):
        route = WaypointRoute(
            [
                Waypoint(Vec2(0, 0), 0.0),
                Waypoint(Vec2(2, 0), 2.0),
                Waypoint(Vec2(2, 2), 1.0),
            ]
        )
        route.advance(1.0)  # reaches (2, 0)
        route.advance(1.0)  # halfway up the second segment
        assert route.position.x == pytest.approx(2.0)
        assert route.position.y == pytest.approx(1.0)

    def test_negative_dt_rejected(self):
        route = WaypointRoute.stationary(Vec2(0, 0))
        with pytest.raises(ValueError):
            route.advance(-0.1)

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            WaypointRoute([])

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            Waypoint(Vec2(0, 0), speed_mps=-1.0)

    @given(st.floats(0.01, 5.0), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_distance_travelled_never_exceeds_speed_times_time(self, dt, speed):
        route = WaypointRoute.straight_line(Vec2(0, 0), Vec2(1000, 0), speed)
        start = route.position
        route.advance(dt)
        assert route.position.distance_to(start) <= speed * dt + 1e-6


class TestActorDimensions:
    def test_presets_positive(self):
        for dims in (ActorDimensions.sedan(), ActorDimensions.suv(), ActorDimensions.pedestrian()):
            assert dims.length_m > 0 and dims.width_m > 0 and dims.height_m > 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ActorDimensions(0.0, 1.0, 1.0)


class TestScriptedActor:
    def test_unique_ids(self):
        a = ScriptedActor(ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(0, 0)))
        b = ScriptedActor(ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(0, 0)))
        assert a.actor_id != b.actor_id

    def test_default_dimensions_by_kind(self):
        vehicle = ScriptedActor(ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(0, 0)))
        pedestrian = ScriptedActor(ActorKind.PEDESTRIAN, WaypointRoute.stationary(Vec2(0, 0)))
        assert vehicle.dimensions.length_m > pedestrian.dimensions.length_m

    def test_snapshot_reflects_route_state(self):
        actor = ScriptedActor(
            ActorKind.VEHICLE, WaypointRoute.straight_line(Vec2(0, 0), Vec2(10, 0), 5.0)
        )
        actor.step(1.0)
        snap = actor.snapshot()
        assert snap.position.x == pytest.approx(5.0)
        assert snap.velocity.x == pytest.approx(5.0)
        assert not snap.is_ego


class TestEgoVehicle:
    def test_accelerates_with_positive_command(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=10.0)
        ego.apply_control(1.0, dt=1.0)
        assert ego.speed_mps == pytest.approx(11.0)
        assert ego.position.x == pytest.approx(10.5)

    def test_speed_never_negative(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0)
        ego.apply_control(-6.0, dt=1.0)
        assert ego.speed_mps == 0.0

    def test_commands_clamped_to_limits(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=10.0, max_accel_mps2=2.0, max_decel_mps2=6.0)
        ego.apply_control(10.0, dt=1.0)
        assert ego.acceleration_mps2 == 2.0
        ego.apply_control(-20.0, dt=1.0)
        assert ego.acceleration_mps2 == -6.0

    def test_lateral_position_fixed(self):
        ego = EgoVehicle(Vec2(0, 0.0), speed_mps=10.0)
        ego.apply_control(1.0, dt=1.0)
        assert ego.position.y == 0.0

    def test_negative_initial_speed_rejected(self):
        with pytest.raises(ValueError):
            EgoVehicle(Vec2(0, 0), speed_mps=-1.0)

    def test_invalid_dt_rejected(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0)
        with pytest.raises(ValueError):
            ego.apply_control(0.0, dt=0.0)

    def test_snapshot_is_ego(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0)
        assert ego.snapshot().is_ego


class TestActorSnapshotGeometry:
    def test_longitudinal_gap(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0).snapshot()
        lead = ScriptedActor(
            ActorKind.VEHICLE,
            WaypointRoute.stationary(Vec2(20, 0)),
            ActorDimensions.sedan(),
        ).snapshot()
        expected = 20 - (ego.dimensions.length_m + lead.dimensions.length_m) / 2.0
        assert ego.longitudinal_gap_to(lead) == pytest.approx(expected)

    def test_overlap_detection(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0).snapshot()
        close = ScriptedActor(
            ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(3.0, 0.0))
        ).snapshot()
        far = ScriptedActor(
            ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(30.0, 0.0))
        ).snapshot()
        assert ego.overlaps(close)
        assert not ego.overlaps(far)

    def test_no_lateral_overlap_means_no_collision(self):
        ego = EgoVehicle(Vec2(0, 0), speed_mps=1.0).snapshot()
        beside = ScriptedActor(
            ActorKind.VEHICLE, WaypointRoute.stationary(Vec2(1.0, 3.5))
        ).snapshot()
        assert not ego.overlaps(beside)

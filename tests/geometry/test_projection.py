"""Tests for the camera projection model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import CameraIntrinsics, CameraProjection


@pytest.fixture
def projection():
    return CameraProjection(CameraIntrinsics())


class TestIntrinsics:
    def test_defaults_match_paper_camera(self):
        intr = CameraIntrinsics()
        assert intr.image_width == 1920
        assert intr.image_height == 1080

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(image_width=0)

    def test_invalid_focal_rejected(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(focal_px=-1)

    def test_center_coordinates(self):
        intr = CameraIntrinsics()
        assert intr.image_cx == 960
        assert intr.image_cy == 540


class TestProjection:
    def test_centered_object_projects_to_image_center_column(self, projection):
        box = projection.project(distance_m=20, lateral_m=0.0, object_width_m=2, object_height_m=1.5)
        assert box.cx == pytest.approx(projection.intrinsics.image_cx)

    def test_box_shrinks_with_distance(self, projection):
        near = projection.project(10, 0, 2, 1.5)
        far = projection.project(40, 0, 2, 1.5)
        assert near.height > far.height
        assert near.width > far.width

    def test_left_offset_moves_box_left_in_image(self, projection):
        # Positive lateral (left in the world) decreases the pixel column.
        left = projection.project(20, 2.0, 2, 1.5)
        center = projection.project(20, 0.0, 2, 1.5)
        assert left.cx < center.cx

    def test_invalid_object_size_rejected(self, projection):
        with pytest.raises(ValueError):
            projection.project(20, 0, 0, 1.5)

    def test_distance_round_trip(self, projection):
        box = projection.project(35, 1.0, 1.9, 1.6)
        assert projection.inverse_distance(box, 1.6) == pytest.approx(35, rel=1e-6)

    def test_lateral_round_trip(self, projection):
        box = projection.project(35, -2.5, 1.9, 1.6)
        distance = projection.inverse_distance(box, 1.6)
        assert projection.inverse_lateral(box, distance) == pytest.approx(-2.5, rel=1e-6)

    def test_inverse_distance_requires_positive_height(self, projection):
        box = projection.project(35, 0, 1.9, 1.6)
        with pytest.raises(ValueError):
            projection.inverse_distance(box, 0.0)

    def test_pixel_shift_round_trip(self, projection):
        pixel_shift = projection.lateral_shift_to_pixels(1.5, 30.0)
        assert projection.pixels_to_lateral_shift(pixel_shift, 30.0) == pytest.approx(1.5)

    def test_field_of_view_excludes_behind_camera(self, projection):
        assert not projection.in_field_of_view(-5.0, 0.0)

    def test_field_of_view_excludes_extreme_lateral(self, projection):
        assert not projection.in_field_of_view(5.0, 50.0)

    def test_field_of_view_includes_straight_ahead(self, projection):
        assert projection.in_field_of_view(50.0, 0.0)

    @given(
        distance=st.floats(2.0, 100.0),
        lateral=st.floats(-5.0, 5.0),
        height=st.floats(0.5, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_projection_inversion_property(self, distance, lateral, height):
        projection = CameraProjection()
        box = projection.project(distance, lateral, 1.0, height)
        recovered_distance = projection.inverse_distance(box, height)
        recovered_lateral = projection.inverse_lateral(box, recovered_distance)
        assert recovered_distance == pytest.approx(distance, rel=1e-6)
        assert recovered_lateral == pytest.approx(lateral, rel=1e-5, abs=1e-6)

"""A small decorator-friendly plugin registry.

The registry powers the open scenario catalog (``@register_scenario("DS-6")``
in :mod:`repro.sim.scenarios`), replacing the closed module-level dict that
previously capped the system at the paper's five hard-coded scenarios.  It is
generic: any keyed family of builders/factories can use it.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["Registry", "RegistryError"]

T = TypeVar("T")


class RegistryError(KeyError):
    """Raised on unknown keys and conflicting registrations."""


class Registry(Generic[T]):
    """A keyed collection of plugins with decorator-based registration.

    >>> scenarios: Registry[Callable[[], str]] = Registry("scenario")
    >>> @scenarios.register("DS-1")
    ... def build_ds1():
    ...     return "car following"
    >>> scenarios.get("DS-1")()
    'car following'
    """

    def __init__(self, kind: str):
        #: Human-readable name of the registered family, used in error messages.
        self.kind = kind
        self._entries: Dict[str, T] = {}
        self._descriptions: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        key: str,
        value: Optional[T] = None,
        *,
        description: str = "",
        overwrite: bool = False,
    ):
        """Register ``value`` under ``key``; usable directly or as a decorator.

        Direct form: ``registry.register("DS-1", builder)``.
        Decorator form: ``@registry.register("DS-1")``.
        Re-registering an existing key raises unless ``overwrite=True`` (so a
        typo cannot silently shadow a scenario).
        """
        if not key or not isinstance(key, str):
            raise RegistryError(f"{self.kind} keys must be non-empty strings, got {key!r}")

        def _store(entry: T) -> T:
            if not overwrite and key in self._entries:
                raise RegistryError(
                    f"{self.kind} {key!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[key] = entry
            if description:
                self._descriptions[key] = description
            elif getattr(entry, "__doc__", None):
                self._descriptions[key] = str(entry.__doc__).strip().splitlines()[0]
            return entry

        if value is not None:
            return _store(value)
        return _store

    def unregister(self, key: str) -> T:
        """Remove and return the entry for ``key`` (mainly for tests)."""
        if key not in self._entries:
            raise RegistryError(f"unknown {self.kind} {key!r}; available: {self.keys()}")
        self._descriptions.pop(key, None)
        return self._entries.pop(key)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> T:
        """Look up an entry, with an informative error for unknown keys."""
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {key!r}; available: {self.keys()}"
            ) from None

    def description(self, key: str) -> str:
        """The one-line description recorded at registration time."""
        self.get(key)  # raise on unknown keys
        return self._descriptions.get(key, "")

    def keys(self) -> List[str]:
        """All registered keys, sorted."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """(key, entry) pairs, sorted by key."""
        return [(key, self._entries[key]) for key in self.keys()]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind!r}, keys={self.keys()})"

"""Campaign-level metrics (the quantities reported throughout paper §VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.attack_vectors import AttackVector
from repro.experiments.results import CampaignResult

__all__ = [
    "CampaignSummary",
    "attack_succeeded",
    "summarize_campaign",
    "combined_rates",
]


def attack_succeeded(run) -> bool:
    """Whether a run produced the hazard its attack vector aims for.

    The paper's §VI-C success rule: the Move_In vector aims for spurious
    emergency braking, every other vector (and the vectorless baselines) for
    an accident.  ``run`` is anything exposing ``vector`` /
    ``emergency_braking`` / ``accident`` — a :class:`RunResult`, a stored
    :class:`~repro.experiments.store.RunOutcome`, etc.  This single rule is
    shared by the defense tables and the falsification objectives, so "attack
    success" means the same thing in every report.
    """
    if run.vector is AttackVector.MOVE_IN:
        return bool(run.emergency_braking)
    return bool(run.accident)


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate statistics of one campaign (one row of paper Table II)."""

    campaign_id: str
    scenario_id: str
    attacker_kind: str
    vector: str
    n_runs: int
    median_k_frames: float
    emergency_braking_count: int
    emergency_braking_rate: float
    accident_count: int
    accident_rate: float
    median_k_prime_frames: float

    def format_row(self) -> str:
        """Human-readable row in the style of paper Table II."""
        crash_text = (
            f"{self.accident_count} ({self.accident_rate:.1%})"
            if self.vector != "move_in"
            else "—"
        )
        return (
            f"{self.campaign_id:28s} K={self.median_k_frames:5.1f} "
            f"runs={self.n_runs:4d} "
            f"EB={self.emergency_braking_count:4d} ({self.emergency_braking_rate:6.1%}) "
            f"crashes={crash_text}"
        )


def summarize_campaign(campaign: CampaignResult) -> CampaignSummary:
    """Aggregate a campaign into one Table-II-style row."""
    return CampaignSummary(
        campaign_id=campaign.campaign_id,
        scenario_id=campaign.scenario_id,
        attacker_kind=campaign.attacker_kind,
        vector=campaign.vector.value if campaign.vector is not None else "random",
        n_runs=campaign.n_runs,
        median_k_frames=campaign.median_planned_k(),
        emergency_braking_count=campaign.emergency_braking_count,
        emergency_braking_rate=campaign.emergency_braking_rate,
        accident_count=campaign.accident_count,
        accident_rate=campaign.accident_rate,
        median_k_prime_frames=campaign.median_k_prime(),
    )


def combined_rates(campaigns: Sequence[CampaignResult]) -> tuple[float, float]:
    """Overall emergency-braking and accident rates across several campaigns.

    Matches how the paper aggregates its headline numbers (75.2 % forced
    emergency braking over 851 runs; 52.6 % accidents over the 568 runs that
    exclude Move_In campaigns).
    """
    total_runs = sum(c.n_runs for c in campaigns)
    if total_runs == 0:
        return 0.0, 0.0
    eb_rate = sum(c.emergency_braking_count for c in campaigns) / total_runs
    crash_campaigns = [
        c for c in campaigns if c.vector is None or c.vector.value != "move_in"
    ]
    crash_runs = sum(c.n_runs for c in crash_campaigns)
    crash_rate = (
        sum(c.accident_count for c in crash_campaigns) / crash_runs if crash_runs else 0.0
    )
    return eb_rate, crash_rate

"""Falsification objectives: score a campaign's stored outcomes.

An objective condenses one sweep point's runs (the :class:`RunOutcome` rows
the store's incremental :meth:`~repro.experiments.store.ExperimentStore.aggregate`
returns) into a single scalar in ``[0, 1]`` — higher means *closer to
falsification*, so every sampler maximizes.  Built-ins (the
:data:`OBJECTIVES` registry behind ``--objective``):

* ``attack_success`` (default) — the fraction of runs that produced the
  hazard their vector aims for (the shared
  :func:`~repro.experiments.metrics.attack_succeeded` §VI-C rule);
* ``time_to_violation`` — rewards *fast* violations: each successful run
  contributes ``1 - t/​cap`` (``t`` its wall-clock simulated duration,
  ``cap`` the normalization horizon), unsuccessful runs contribute 0;
* ``min_delta_margin`` — a *smooth* boundary signal for spaces where binary
  success is everywhere 0 or 1: how deeply the run pushed the ground-truth
  safety potential toward zero, ``1 - clamp(min_delta / scale, 0, 1)``
  averaged over runs (runs whose attack never fired score 0).
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.experiments.store import RunOutcome
from repro.runtime.registry import Registry

__all__ = [
    "Objective",
    "AttackSuccessRate",
    "TimeToViolation",
    "MinDeltaMargin",
    "OBJECTIVES",
    "build_objective",
    "list_objectives",
]


@runtime_checkable
class Objective(Protocol):
    """Scores one sweep point's outcomes; higher = closer to falsification."""

    #: Registry name (recorded in search manifests and reports).
    name: str

    def score(self, outcomes: Sequence[RunOutcome]) -> float:
        ...


class AttackSuccessRate:
    """Fraction of runs whose attack produced its intended hazard."""

    name = "attack_success"

    def score(self, outcomes: Sequence[RunOutcome]) -> float:
        if not outcomes:
            return 0.0
        return sum(o.success for o in outcomes) / len(outcomes)


class TimeToViolation:
    """Rewards violations that arrive *early* in the run.

    ``horizon_s`` is the normalization cap — typically the campaign's
    ``simulation.max_duration_s``.  A run that violates instantly scores 1, a
    violation at the horizon scores ~0, and a run with no violation scores 0;
    the point's score is the mean over its runs.
    """

    name = "time_to_violation"

    def __init__(self, horizon_s: float = 60.0):
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self.horizon_s = float(horizon_s)

    def score(self, outcomes: Sequence[RunOutcome]) -> float:
        if not outcomes:
            return 0.0
        total = 0.0
        for outcome in outcomes:
            if outcome.success:
                total += 1.0 - min(outcome.duration_s, self.horizon_s) / self.horizon_s
        return total / len(outcomes)


class MinDeltaMargin:
    """How deeply runs pushed the ground-truth safety potential toward 0.

    ``scale_m`` is the margin considered "comfortably safe": a run whose
    minimum δ after attack start reaches 0 scores 1, one that never dips
    below ``scale_m`` scores 0.  Runs with no finite δ (the attack never
    launched) score 0.  Unlike binary success this degrades smoothly, which
    is what gradient-free samplers need on spaces where success is rare.
    """

    name = "min_delta_margin"

    def __init__(self, scale_m: float = 10.0):
        if scale_m <= 0:
            raise ValueError("scale_m must be positive")
        self.scale_m = float(scale_m)

    def score(self, outcomes: Sequence[RunOutcome]) -> float:
        if not outcomes:
            return 0.0
        total = 0.0
        for outcome in outcomes:
            delta = outcome.min_true_delta_m
            if np.isfinite(delta):
                total += 1.0 - min(max(delta, 0.0), self.scale_m) / self.scale_m
        return total / len(outcomes)


#: Objective name -> factory(**options); the ``--objective`` registry.
OBJECTIVES: Registry = Registry("search objective")
OBJECTIVES.register(
    "attack_success", AttackSuccessRate,
    description="fraction of runs producing their vector's intended hazard",
)
OBJECTIVES.register(
    "time_to_violation", TimeToViolation,
    description="mean normalized earliness of violations (1 = instant)",
)
OBJECTIVES.register(
    "min_delta_margin", MinDeltaMargin,
    description="mean depth of the ground-truth safety-potential dip",
)


def build_objective(name: str, **options) -> Objective:
    """Instantiate a registered objective (the ``--objective`` path)."""
    return OBJECTIVES.get(name)(**options)


def list_objectives() -> List[str]:
    """The registered objective names (CLI help and validation)."""
    return OBJECTIVES.keys()

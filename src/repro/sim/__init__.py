"""Driving-scenario simulation substrate.

This package replaces the LGSVL/Unity simulator used in the paper with a
deterministic, seedable 2-D road-frame simulator.  It provides:

* a road/lane model (:mod:`repro.sim.road`),
* actor kinematics and waypoint following (:mod:`repro.sim.actors`,
  :mod:`repro.sim.waypoints`),
* the five driving scenarios DS-1 ... DS-5 from paper §V-C
  (:mod:`repro.sim.scenarios`),
* collision / emergency-braking event bookkeeping (:mod:`repro.sim.events`),
* the simulation loop that wires sensors, the ADS, and an optional
  man-in-the-middle attacker together (:mod:`repro.sim.simulator`),
* and a vectorized engine that advances many independently-seeded runs in
  lockstep with bit-identical results (:mod:`repro.sim.batch`).
"""

from repro.sim.actors import ActorKind, ActorSnapshot, EgoVehicle, ScriptedActor
from repro.sim.config import SimulationConfig
from repro.sim.events import EventLog, SimulationEvent
from repro.sim.road import Lane, Road
from repro.sim.scenarios import (
    DrivingScenario,
    ScenarioVariation,
    build_scenario,
    list_scenario_ids,
)
from repro.sim.waypoints import Waypoint, WaypointRoute
from repro.sim.world import GroundTruthSnapshot, World


def __getattr__(name: str):
    """Lazily expose the simulator loop.

    ``repro.sim.simulator`` depends on the sensor and ADS packages, which in
    turn import the low-level ``repro.sim`` submodules; importing it lazily
    keeps ``import repro.sim`` free of that cycle.
    """
    if name in ("Simulator", "SimulationResult"):
        from repro.sim import simulator

        return getattr(simulator, name)
    if name in ("BatchSimulator", "BatchRunSpec"):
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ActorKind",
    "ActorSnapshot",
    "EgoVehicle",
    "ScriptedActor",
    "SimulationConfig",
    "EventLog",
    "SimulationEvent",
    "Lane",
    "Road",
    "DrivingScenario",
    "ScenarioVariation",
    "build_scenario",
    "list_scenario_ids",
    "SimulationResult",
    "Simulator",
    "BatchRunSpec",
    "BatchSimulator",
    "Waypoint",
    "WaypointRoute",
    "GroundTruthSnapshot",
    "World",
]

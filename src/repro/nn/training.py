"""Mini-batch training loop with train/validation splitting.

The paper trains the safety hijacker with Adam on a 60 %/40 % train/validation
split of the attack-response dataset (paper §IV-B); :func:`train_network`
implements that loop generically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.nn.losses import MeanSquaredError
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import Adam, Optimizer

__all__ = ["TrainingHistory", "TrainingResult", "train_validation_split", "train_network"]


@dataclass
class TrainingHistory:
    """Per-epoch loss curves."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        if not self.train_loss:
            raise ValueError("no training epochs recorded")
        return self.train_loss[-1]

    @property
    def final_validation_loss(self) -> float:
        if not self.validation_loss:
            raise ValueError("no validation epochs recorded")
        return self.validation_loss[-1]


@dataclass
class TrainingResult:
    """Outcome of :func:`train_network`."""

    network: FeedForwardNetwork
    history: TrainingHistory
    n_train_samples: int
    n_validation_samples: int


def train_validation_split(
    inputs: np.ndarray,
    targets: np.ndarray,
    train_fraction: float = 0.6,
    rng: np.random.Generator | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split a dataset into train and validation subsets.

    The default 60/40 split matches the paper.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    rng = rng if rng is not None else np.random.default_rng()
    n = inputs.shape[0]
    order = rng.permutation(n)
    n_train = max(1, int(round(n * train_fraction)))
    n_train = min(n_train, n - 1) if n > 1 else n
    train_idx, val_idx = order[:n_train], order[n_train:]
    return inputs[train_idx], targets[train_idx], inputs[val_idx], targets[val_idx]


def train_network(
    network: FeedForwardNetwork,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 50,
    batch_size: int = 32,
    optimizer: Optimizer | None = None,
    train_fraction: float = 0.6,
    rng: np.random.Generator | None = None,
) -> TrainingResult:
    """Train ``network`` on ``(inputs, targets)`` with mini-batch gradient descent.

    Returns the trained network along with per-epoch train/validation loss
    curves.  The loss is the mean squared error of paper Eq. (3).
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    optimizer = optimizer if optimizer is not None else Adam(learning_rate=1e-3)
    loss_fn = MeanSquaredError()

    x_train, y_train, x_val, y_val = train_validation_split(
        inputs, targets, train_fraction=train_fraction, rng=rng
    )
    history = TrainingHistory()
    n_train = x_train.shape[0]

    for _ in range(epochs):
        order = rng.permutation(n_train)
        # Per-batch losses are averaged weighted by batch size: a ragged final
        # batch (n_train % batch_size != 0) must not bias the epoch loss.
        epoch_loss_sum = 0.0
        for start in range(0, n_train, batch_size):
            batch_idx = order[start : start + batch_size]
            x_batch = x_train[batch_idx]
            y_batch = y_train[batch_idx]
            predictions = network.forward(x_batch, training=True)
            batch_loss = loss_fn.forward(predictions, y_batch)
            grad = loss_fn.backward(predictions, y_batch)
            network.backward(grad)
            optimizer.step(network.trainable_layers())
            epoch_loss_sum += batch_loss * len(batch_idx)
        history.train_loss.append(float(epoch_loss_sum / n_train))
        if x_val.shape[0] > 0:
            val_predictions = network.predict(x_val)
            history.validation_loss.append(loss_fn.forward(val_predictions, y_val))
        else:
            history.validation_loss.append(history.train_loss[-1])

    return TrainingResult(
        network=network,
        history=history,
        n_train_samples=int(x_train.shape[0]),
        n_validation_samples=int(x_val.shape[0]),
    )

"""Image-to-world transformation ("T" in paper Fig. 1).

Each confirmed image-space track is converted into a road-frame estimate of
the object's longitudinal distance, lateral offset, and their rates of change.
Distance is recovered from the pixel height of the box via the pinhole model
(objects of a known class have a nominal physical height); lateral offset from
the horizontal position of the box centre.  Velocities are smoothed finite
differences, mirroring how the paper's perception derives object trajectories
(velocity, acceleration, heading) from the tracked states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry import CameraProjection
from repro.perception.tracker import ObjectTrack
from repro.sim.actors import ActorKind

__all__ = ["WorldObjectEstimate", "ImageToWorldTransform"]

#: Nominal physical heights used to invert the projection, per object class.
NOMINAL_HEIGHT_M = {
    ActorKind.VEHICLE: 1.6,
    ActorKind.PEDESTRIAN: 1.7,
}


@dataclass(frozen=True)
class WorldObjectEstimate:
    """Road-frame estimate of one tracked object, relative to the ego camera."""

    track_id: int
    actor_id: int
    kind: ActorKind
    #: Longitudinal distance from the camera (ego front bumper) to the object.
    distance_m: float
    #: Lateral offset of the object relative to the ego centreline (positive left).
    lateral_m: float
    #: Rate of change of the distance (negative when closing).
    relative_longitudinal_velocity_mps: float
    #: Rate of change of the relative longitudinal velocity.
    relative_longitudinal_acceleration_mps2: float
    #: Rate of change of the lateral offset.
    lateral_velocity_mps: float
    #: Number of frames this object has been tracked.
    age_frames: int


@dataclass
class _TrackHistory:
    distance_m: float
    lateral_m: float
    velocity_mps: float = 0.0
    lateral_velocity_mps: float = 0.0
    acceleration_mps2: float = 0.0
    initialized: bool = False


class ImageToWorldTransform:
    """Stateful conversion of image tracks into road-frame object estimates."""

    def __init__(
        self,
        projection: CameraProjection | None = None,
        frame_dt_s: float = 1.0 / 15.0,
        velocity_smoothing: float = 0.25,
    ):
        if frame_dt_s <= 0:
            raise ValueError("frame_dt_s must be positive")
        if not 0.0 < velocity_smoothing <= 1.0:
            raise ValueError("velocity_smoothing must be in (0, 1]")
        self.projection = projection or CameraProjection()
        self.frame_dt_s = frame_dt_s
        self.velocity_smoothing = velocity_smoothing
        self._history: Dict[int, _TrackHistory] = {}

    def reset(self) -> None:
        """Drop all per-track history."""
        self._history.clear()

    def transform(self, tracks: List[ObjectTrack]) -> List[WorldObjectEstimate]:
        """Convert the current set of image tracks into world estimates."""
        estimates: List[WorldObjectEstimate] = []
        live_track_ids = set()
        for track in tracks:
            live_track_ids.add(track.track_id)
            estimate = self._transform_track(track)
            if estimate is not None:
                estimates.append(estimate)
        for track_id in list(self._history):
            if track_id not in live_track_ids:
                del self._history[track_id]
        estimates.sort(key=lambda e: e.distance_m)
        return estimates

    def _transform_track(self, track: ObjectTrack) -> Optional[WorldObjectEstimate]:
        bbox = track.bbox
        nominal_height = NOMINAL_HEIGHT_M[track.kind]
        if bbox.height <= 0:
            return None
        distance = self.projection.inverse_distance(bbox, nominal_height)
        lateral = self.projection.inverse_lateral(bbox, distance)

        history = self._history.get(track.track_id)
        if history is None or not history.initialized:
            history = _TrackHistory(distance_m=distance, lateral_m=lateral, initialized=True)
            self._history[track.track_id] = history
            velocity = 0.0
            lateral_velocity = 0.0
            acceleration = 0.0
        else:
            alpha = self.velocity_smoothing
            raw_velocity = (distance - history.distance_m) / self.frame_dt_s
            raw_lateral_velocity = (lateral - history.lateral_m) / self.frame_dt_s
            velocity = (1 - alpha) * history.velocity_mps + alpha * raw_velocity
            lateral_velocity = (
                (1 - alpha) * history.lateral_velocity_mps + alpha * raw_lateral_velocity
            )
            raw_acceleration = (velocity - history.velocity_mps) / self.frame_dt_s
            acceleration = (1 - alpha) * history.acceleration_mps2 + alpha * raw_acceleration
            history.distance_m = distance
            history.lateral_m = lateral
            history.velocity_mps = velocity
            history.lateral_velocity_mps = lateral_velocity
            history.acceleration_mps2 = acceleration

        return WorldObjectEstimate(
            track_id=track.track_id,
            actor_id=track.actor_id,
            kind=track.kind,
            distance_m=distance,
            lateral_m=lateral,
            relative_longitudinal_velocity_mps=velocity,
            relative_longitudinal_acceleration_mps2=acceleration,
            lateral_velocity_mps=lateral_velocity,
            age_frames=track.age_frames,
        )

"""Detector characterization (paper §VI-A, Fig. 5).

The paper drives the AV manually for ten minutes, records YOLOv3 detections,
and characterizes (a-b) the distribution of continuous misdetection bursts and
(c-f) the distribution of the normalized bounding-box centre errors.  The same
procedure runs here against the simulated detector: a scripted drive past a
lead vehicle and a sidewalk pedestrian produces a long camera sequence, the
detector output is compared against the rendered ground truth, and the burst
lengths / centre errors are fitted with exponential / Gaussian models.

The fitted 99th percentiles feed straight back into the attack: they are the
stealth bound ``Kmax`` used by the safety hijacker.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.geometry import Vec2, iou
from repro.perception.detection import DetectorConfig, SimulatedDetector
from repro.runtime import ExecutorLike, resolve_executor
from repro.sensors.camera import CameraSensor
from repro.sim.actors import ActorDimensions, ActorKind, EgoVehicle, ScriptedActor
from repro.sim.road import Road
from repro.sim.waypoints import WaypointRoute
from repro.sim.world import World
from repro.utils.stats import ExponentialFit, NormalFit, fit_exponential, fit_normal, percentile

__all__ = [
    "ClassCharacterization",
    "CharacterizationReport",
    "CharacterizationEnsemble",
    "characterize_detector",
    "characterize_detector_ensemble",
]

#: IoU below which a detection does not count as detecting the object (paper §VI-A).
_MISDETECTION_IOU = 0.6


@dataclass(frozen=True)
class ClassCharacterization:
    """Fig. 5 panels for one object class."""

    kind: ActorKind
    misdetection_burst_fit: ExponentialFit
    misdetection_burst_p99: float
    center_error_x_fit: NormalFit
    center_error_y_fit: NormalFit
    center_error_x_p99: float
    center_error_y_p99: float
    n_frames_observed: int


@dataclass(frozen=True)
class CharacterizationReport:
    """Complete Fig. 5 reproduction: one characterization per object class."""

    per_class: Dict[ActorKind, ClassCharacterization]

    def k_max_frames(self, kind: ActorKind) -> int:
        """The stealth bound Kmax implied by the characterization."""
        return int(round(self.per_class[kind].misdetection_burst_p99))


@dataclass(frozen=True)
class CharacterizationEnsemble:
    """Several independently-seeded characterization drives, aggregated.

    One ten-minute drive gives a noisy estimate of the 99th-percentile
    misdetection burst; an ensemble of seeded drives (fanned out over worker
    processes) tightens the Kmax stealth bound the safety hijacker inherits.
    """

    reports: tuple[CharacterizationReport, ...]

    def k_max_frames(self, kind: ActorKind) -> int:
        """Median per-drive Kmax — robust to a single unlucky drive."""
        if not self.reports:
            raise ValueError("ensemble has no reports")
        return int(round(float(np.median([r.k_max_frames(kind) for r in self.reports]))))

    def burst_p99_values(self, kind: ActorKind) -> List[float]:
        """Per-drive 99th-percentile burst lengths (for dispersion estimates)."""
        return [r.per_class[kind].misdetection_burst_p99 for r in self.reports]


def _build_characterization_world(road: Road) -> World:
    """A scripted drive with a lead vehicle and a sidewalk pedestrian in view."""
    ego = EgoVehicle(position=Vec2(0.0, 0.0), speed_mps=10.0)
    lead = ScriptedActor(
        ActorKind.VEHICLE,
        WaypointRoute.straight_line(Vec2(35.0, 0.0), Vec2(12_000.0, 0.0), speed_mps=10.0),
        ActorDimensions.sedan(),
        name="characterization-lead",
    )
    pedestrian = ScriptedActor(
        ActorKind.PEDESTRIAN,
        WaypointRoute.straight_line(Vec2(55.0, -4.0), Vec2(12_000.0, -4.0), speed_mps=9.0),
        name="characterization-pedestrian",
    )
    return World(ego=ego, actors=[lead, pedestrian], road=road)


def characterize_detector(
    duration_s: float = 120.0,
    seed: int = 99,
    detector_config: DetectorConfig | None = None,
    frame_rate_hz: float = 15.0,
) -> CharacterizationReport:
    """Run the Fig. 5 characterization drive and fit the noise distributions."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    road = Road()
    world = _build_characterization_world(road)
    camera = CameraSensor()
    detector = SimulatedDetector(detector_config or DetectorConfig(), rng=rng)
    dt = 1.0 / frame_rate_hz
    n_frames = int(round(duration_s * frame_rate_hz))

    burst_lengths: Dict[ActorKind, List[int]] = {k: [] for k in ActorKind}
    current_burst: Dict[int, int] = {}
    errors_x: Dict[ActorKind, List[float]] = {k: [] for k in ActorKind}
    errors_y: Dict[ActorKind, List[float]] = {k: [] for k in ActorKind}
    frames_observed: Dict[ActorKind, int] = {k: 0 for k in ActorKind}
    actor_kinds: Dict[int, ActorKind] = {}

    for _ in range(n_frames):
        snapshot = world.snapshot()
        frame = camera.capture(snapshot)
        detections = {d.actor_id: d for d in detector.detect(frame)}
        for obj in frame.objects:
            actor_kinds[obj.actor_id] = obj.kind
            frames_observed[obj.kind] += 1
            detection = detections.get(obj.actor_id)
            detected = detection is not None and iou(detection.bbox, obj.bbox) >= _MISDETECTION_IOU
            if detected:
                if obj.actor_id in current_burst:
                    burst_lengths[obj.kind].append(current_burst.pop(obj.actor_id))
                errors_x[obj.kind].append((detection.bbox.cx - obj.bbox.cx) / obj.bbox.width)
                errors_y[obj.kind].append((detection.bbox.cy - obj.bbox.cy) / obj.bbox.height)
            else:
                current_burst[obj.actor_id] = current_burst.get(obj.actor_id, 0) + 1
        # The EV cruises at constant speed for the characterization drive.
        world.step(dt, ego_acceleration_mps2=0.0)

    for actor_id, length in current_burst.items():
        kind = actor_kinds.get(actor_id, ActorKind.VEHICLE)
        burst_lengths[kind].append(length)

    per_class: Dict[ActorKind, ClassCharacterization] = {}
    for kind in ActorKind:
        bursts = burst_lengths[kind] or [1]
        ex_fit = fit_exponential(bursts, loc=1.0)
        ex_p99 = percentile(bursts, 99.0) if len(bursts) >= 10 else ex_fit.percentile(99.0)
        x_errors = errors_x[kind] or [0.0]
        y_errors = errors_y[kind] or [0.0]
        per_class[kind] = ClassCharacterization(
            kind=kind,
            misdetection_burst_fit=ex_fit,
            misdetection_burst_p99=float(ex_p99),
            center_error_x_fit=fit_normal(x_errors),
            center_error_y_fit=fit_normal(y_errors),
            center_error_x_p99=percentile(np.abs(x_errors), 99.0),
            center_error_y_p99=percentile(np.abs(y_errors), 99.0),
            n_frames_observed=frames_observed[kind],
        )
    return CharacterizationReport(per_class=per_class)


def _characterize_with_seed(
    duration_s: float, frame_rate_hz: float, seed: int
) -> CharacterizationReport:
    """Module-level worker so the ensemble fan-out is picklable."""
    return characterize_detector(
        duration_s=duration_s, seed=seed, frame_rate_hz=frame_rate_hz
    )


def characterize_detector_ensemble(
    seeds: Sequence[int],
    duration_s: float = 120.0,
    frame_rate_hz: float = 15.0,
    executor: ExecutorLike = None,
) -> CharacterizationEnsemble:
    """Run several seeded characterization drives, optionally in parallel.

    ``executor`` follows the same convention as the campaign runner (``None``
    = serial, an int = worker count, or a shared
    :class:`~repro.runtime.executor.Executor`); the drives are independent, so
    serial and parallel ensembles are identical.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    resolved = resolve_executor(executor)
    try:
        reports = resolved.map(
            functools.partial(_characterize_with_seed, duration_s, frame_rate_hz),
            [int(seed) for seed in seeds],
        )
    finally:
        if resolved is not executor:
            resolved.close()
    return CharacterizationEnsemble(reports=tuple(reports))

"""The trajectory hijacker: *how* to attack (paper §IV-C).

Once the safety hijacker has decided to attack, the trajectory hijacker
perturbs the camera feed so that the target object appears to follow a *fake
lateral trajectory*:

* ``Move_Out`` — the fake trajectory drifts out of (or holds clear of) the ego
  lane, so the EV believes an in-path object is leaving its lane (or that an
  object that is really cutting in is staying out);
* ``Move_In`` — the fake trajectory drifts into the ego lane, forcing an
  emergency brake for an object that is really parked or walking beside the
  lane;
* ``Disappear`` — the target's detections are suppressed entirely.

Stealth constraints (paper Eq. 4):

* the per-frame change of the fake trajectory stays within one standard
  deviation of the detector's characterized Gaussian centre noise, so the
  victim's Kalman filter keeps absorbing it as ordinary noise;
* the shifted box must remain associated with the existing tracker state by
  the Hungarian matcher — enforced by keeping the IoU with the attacker's own
  predicted tracker box above the association threshold (the constraint is
  deliberately dropped for ``Disappear``);
* the hijacker stops enlarging the displacement once the fake trajectory
  reaches its goal Ω; the number of frames spent actively shifting is ``K'``
  (paper Fig. 7), after which the fake trajectory is merely maintained for the
  rest of the attack window.

In the paper the box motion is realized by optimizing an adversarial pixel
patch (Jia et al.); the substrate here operates directly at the bounding-box
level of the intercepted camera frame, which exercises the identical
downstream code path (tracker, fusion, planner) — see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.attack_vectors import AttackVector
from repro.geometry import BoundingBox, CameraProjection, iou
from repro.perception.detection import DetectorConfig
from repro.perception.tracker import ObjectTrack
from repro.sensors.camera import CameraFrame, CameraObject
from repro.sim.actors import ActorKind
from repro.sim.road import Road

__all__ = ["TrajectoryHijackerConfig", "TrajectoryHijacker"]


@dataclass(frozen=True)
class TrajectoryHijackerConfig:
    """Stealth and goal parameters of the trajectory hijacker."""

    #: Minimum IoU that must be preserved between the shifted detection and the
    #: tracker's predicted box so the Hungarian matcher keeps the association
    #: (the lambda constraint of paper Eq. 4).
    association_min_iou: float = 0.2
    #: Extra lateral clearance (m) beyond the lane edge targeted by Move_Out for
    #: a pedestrian target (usually camera-only, so the camera estimate moves
    #: the fused estimate one-for-one).
    move_out_exit_margin_pedestrian_m: float = 0.7
    #: Extra lateral clearance (m) beyond the lane edge targeted by Move_Out for
    #: a vehicle target.  Vehicles are also confirmed by LiDAR, whose lateral
    #: estimate the fusion blends in, so the camera trajectory must be pushed
    #: further out to move the *fused* estimate out of the lane — this is why
    #: vehicle attacks need longer perturbation windows (paper §VI-C).
    move_out_exit_margin_vehicle_m: float = 2.8
    #: Lateral offset (m) inside the ego lane targeted by Move_In.
    move_in_target_offset_m: float = 0.4
    #: Detector noise models that define the per-frame stealth bound.
    detector: DetectorConfig = field(default_factory=DetectorConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.association_min_iou < 1.0:
            raise ValueError("association_min_iou must be in [0, 1)")


class TrajectoryHijacker:
    """Applies the per-frame camera perturbation for one attack episode."""

    def __init__(
        self,
        road: Road,
        config: TrajectoryHijackerConfig | None = None,
        projection: CameraProjection | None = None,
    ):
        self.road = road
        self.config = config or TrajectoryHijackerConfig()
        self.projection = projection or CameraProjection()
        self._vector: Optional[AttackVector] = None
        self._target_actor_id: Optional[int] = None
        self._fake_lateral_m = 0.0
        self._goal_lateral_m = 0.0
        self._shift_frames = 0
        self._shift_complete = False
        self._frames_perturbed = 0

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #

    @property
    def active(self) -> bool:
        """Whether an attack episode is in progress."""
        return self._vector is not None

    @property
    def target_actor_id(self) -> Optional[int]:
        return self._target_actor_id

    @property
    def shift_frames_k_prime(self) -> int:
        """``K'``: frames spent actively shifting the perceived trajectory."""
        return self._shift_frames

    @property
    def frames_perturbed(self) -> int:
        """Total number of frames perturbed so far in this episode."""
        return self._frames_perturbed

    @property
    def fake_lateral_m(self) -> float:
        """Current lateral position of the fake trajectory."""
        return self._fake_lateral_m

    def begin(
        self, vector: AttackVector, target_actor_id: int, target_lateral_m: float, target_kind: ActorKind
    ) -> None:
        """Start an attack episode against one target object."""
        self._vector = vector
        self._target_actor_id = target_actor_id
        self._fake_lateral_m = target_lateral_m
        self._shift_frames = 0
        self._shift_complete = False
        self._frames_perturbed = 0
        self._goal_lateral_m = self._goal_lateral(vector, target_lateral_m, target_kind)

    def end(self) -> None:
        """Terminate the current attack episode."""
        self._vector = None
        self._target_actor_id = None

    def _goal_lateral(
        self, vector: AttackVector, target_lateral_m: float, target_kind: ActorKind
    ) -> float:
        """The lateral position Ω that the fake trajectory should reach and hold."""
        half_width = 0.95 if target_kind is ActorKind.VEHICLE else 0.25
        exit_margin = (
            self.config.move_out_exit_margin_vehicle_m
            if target_kind is ActorKind.VEHICLE
            else self.config.move_out_exit_margin_pedestrian_m
        )
        lane = self.road.ego_lane
        if vector is AttackVector.MOVE_OUT:
            # Keep the perceived object clear of the ego lane on its own side:
            # either its current position (if already further out) or just
            # beyond the lane edge.
            if target_lateral_m >= 0.0:
                exit_boundary = lane.y_max + half_width + exit_margin
                return max(target_lateral_m, exit_boundary)
            exit_boundary = lane.y_min - half_width - exit_margin
            return min(target_lateral_m, exit_boundary)
        if vector is AttackVector.MOVE_IN:
            # Pull the perceived object just inside the ego lane.
            sign = -1.0 if target_lateral_m > 0 else 1.0
            return sign * self.config.move_in_target_offset_m
        return target_lateral_m

    # ------------------------------------------------------------------ #
    # Per-frame perturbation
    # ------------------------------------------------------------------ #

    def perturb_frame(
        self, frame: CameraFrame, attacker_track: Optional[ObjectTrack]
    ) -> CameraFrame:
        """Apply the perturbation for the active episode to one camera frame.

        ``attacker_track`` is the malware's own tracker state for the target
        (paper's ``s_hat_{t-1}``); it constrains the shift so the association
        survives.  When the target is not visible in the frame, the frame is
        returned unchanged (the perturbation budget is still consumed by the
        caller).
        """
        if self._vector is None or self._target_actor_id is None:
            return frame
        self._frames_perturbed += 1

        if self._vector is AttackVector.DISAPPEAR:
            # K' for Disappear counts the frames needed for the (mirrored)
            # tracker to actually lose the object.
            if not self._shift_complete:
                if attacker_track is not None and attacker_track.consecutive_misses <= 1:
                    self._shift_frames += 1
                else:
                    self._shift_complete = True
            return frame.without_actor(self._target_actor_id)

        target_object = frame.object_for_actor(self._target_actor_id)
        if target_object is None:
            return frame

        self._advance_fake_trajectory(target_object, attacker_track)

        offset_m = self._fake_lateral_m - target_object.lateral_m
        pixel_shift = self.projection.lateral_shift_to_pixels(
            offset_m, target_object.distance_m
        )
        shifted = CameraObject(
            actor_id=target_object.actor_id,
            kind=target_object.kind,
            bbox=target_object.bbox.translated(pixel_shift, 0.0),
            distance_m=target_object.distance_m,
            lateral_m=self._fake_lateral_m,
            object_height_m=target_object.object_height_m,
            object_width_m=target_object.object_width_m,
        )
        return frame.with_replaced_object(shifted)

    def _advance_fake_trajectory(
        self, target_object: CameraObject, attacker_track: Optional[ObjectTrack]
    ) -> None:
        """Move the fake lateral trajectory one stealth-bounded step towards Ω."""
        if self._shift_complete:
            return
        remaining = self._goal_lateral_m - self._fake_lateral_m
        if abs(remaining) < 1e-6:
            self._shift_complete = True
            return
        direction = 1.0 if remaining > 0 else -1.0
        step_m = direction * min(abs(remaining), self._stealth_bound_m(target_object))
        step_m = self._respect_association(step_m, target_object, attacker_track)
        self._fake_lateral_m += step_m
        self._shift_frames += 1
        if abs(self._goal_lateral_m - self._fake_lateral_m) < 1e-6:
            self._shift_complete = True

    def _stealth_bound_m(self, target_object: CameraObject) -> float:
        """Per-frame displacement bound: one sigma of the detector centre noise."""
        noise = self.config.detector.noise_for(target_object.kind)
        bound_px = (
            abs(noise.center_noise_mu_x) + noise.center_noise_sigma_x
        ) * target_object.bbox.width
        return abs(
            self.projection.pixels_to_lateral_shift(bound_px, target_object.distance_m)
        )

    def _respect_association(
        self,
        step_m: float,
        target_object: CameraObject,
        attacker_track: Optional[ObjectTrack],
    ) -> float:
        """Shrink the step until the shifted box still matches the tracker box."""
        if attacker_track is None:
            return step_m
        predicted_box: BoundingBox = attacker_track.bbox
        candidate_step = step_m
        for _ in range(4):
            candidate_lateral = self._fake_lateral_m + candidate_step
            pixel_shift = self.projection.lateral_shift_to_pixels(
                candidate_lateral - target_object.lateral_m, target_object.distance_m
            )
            shifted_box = target_object.bbox.translated(pixel_shift, 0.0)
            if iou(shifted_box, predicted_box) >= self.config.association_min_iou:
                return candidate_step
            candidate_step *= 0.5
        return candidate_step

#!/usr/bin/env python3
"""Reproduce paper Fig. 5: characterize the object detector's noise behaviour.

Drives the simulated camera + detector past a lead vehicle and a sidewalk
pedestrian, collects continuous-misdetection bursts and normalized bounding-box
centre errors, and fits the exponential / Gaussian models of Fig. 5.  The
fitted 99th percentiles are the attack's stealth bound Kmax.

``--drives N`` runs an ensemble of N independently-seeded drives (fanned out
over ``--jobs`` worker processes) and reports the aggregated stealth bound.

Run with:  python examples/characterize_detector.py --duration 240
"""

from __future__ import annotations

import argparse

from repro.experiments.characterization import (
    characterize_detector,
    characterize_detector_ensemble,
)
from repro.sim.actors import ActorKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=240.0, help="drive duration in seconds")
    parser.add_argument("--seed", type=int, default=99)
    parser.add_argument("--drives", type=int, default=1, help="independent drives to aggregate")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the ensemble (0/1 = serial, -1 = all CPUs)",
    )
    args = parser.parse_args()

    if args.drives > 1:
        ensemble = characterize_detector_ensemble(
            seeds=[args.seed + i for i in range(args.drives)],
            duration_s=args.duration,
            executor=args.jobs,
        )
        print(f"ensemble of {args.drives} drives x {args.duration:.0f} s at 15 Hz")
        for kind in (ActorKind.PEDESTRIAN, ActorKind.VEHICLE):
            p99s = ensemble.burst_p99_values(kind)
            print(
                f"  {kind.value:<10s} Kmax = {ensemble.k_max_frames(kind)} frames "
                f"(per-drive p99 range {min(p99s):.1f} .. {max(p99s):.1f})"
            )
        report = ensemble.reports[0]
        print("\nfirst drive in detail:\n")
    else:
        report = characterize_detector(duration_s=args.duration, seed=args.seed)

    print(f"characterization drive: {args.duration:.0f} s at 15 Hz\n")
    for kind in (ActorKind.PEDESTRIAN, ActorKind.VEHICLE):
        c = report.per_class[kind]
        print(f"=== {kind.value} ===")
        print(
            "continuous misdetections : "
            f"Exp(loc=1, rate={c.misdetection_burst_fit.rate:.3f}), "
            f"99th percentile = {c.misdetection_burst_p99:.1f} frames"
        )
        print(
            "bbox centre error (x)    : "
            f"Normal(mu={c.center_error_x_fit.mu:+.3f}, sigma={c.center_error_x_fit.sigma:.3f}), "
            f"99th pct |error| = {c.center_error_x_p99:.3f}"
        )
        print(
            "bbox centre error (y)    : "
            f"Normal(mu={c.center_error_y_fit.mu:+.3f}, sigma={c.center_error_y_fit.sigma:.3f}), "
            f"99th pct |error| = {c.center_error_y_p99:.3f}"
        )
        print(f"implied stealth bound Kmax = {report.k_max_frames(kind)} frames")
        print(f"frames observed          : {c.n_frames_observed}\n")

    print("Paper Fig. 5 reference: pedestrian bursts Exp(loc=1, 0.717), p99 ~31 frames;")
    print("vehicle bursts Exp(loc=1, 0.327), p99 ~59 frames; centre errors Gaussian.")


if __name__ == "__main__":
    main()

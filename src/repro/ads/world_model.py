"""The ADS world model ``W_t``.

A thin container over the fused obstacle list plus the ego state estimate —
"a model of the world, which consists of the positions and velocities of
objects around the EV" (paper §II-A).  The planner queries it through the
obstacle predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.perception.fusion import FusedObstacle
from repro.sensors.gps_imu import EgoPoseEstimate

__all__ = ["WorldModel"]


@dataclass(frozen=True)
class WorldModel:
    """Snapshot of everything the ADS believes about the world at time t."""

    time_s: float
    ego: EgoPoseEstimate
    obstacles: tuple[FusedObstacle, ...]

    def obstacle_count(self) -> int:
        return len(self.obstacles)

    def obstacles_ahead(self, max_distance_m: float | None = None) -> List[FusedObstacle]:
        """Obstacles ahead of the EV, optionally limited to a distance."""
        ahead = [o for o in self.obstacles if o.distance_m > 0]
        if max_distance_m is not None:
            ahead = [o for o in ahead if o.distance_m <= max_distance_m]
        return sorted(ahead, key=lambda o: o.distance_m)

    def nearest_obstacle(self) -> Optional[FusedObstacle]:
        ahead = self.obstacles_ahead()
        return ahead[0] if ahead else None

    def obstacle_for_actor(self, actor_id: int) -> Optional[FusedObstacle]:
        """Bookkeeping lookup by simulated actor id (metrics only)."""
        for obstacle in self.obstacles:
            if obstacle.actor_id == actor_id:
                return obstacle
        return None

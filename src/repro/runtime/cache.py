"""Process-safe, optionally disk-backed artifact caches.

Trained safety-predictor weights and campaign results are expensive to build
(hundreds of seeded simulation runs per predictor dataset) and were previously
memoized in module-global dicts — invisible to worker processes and lost when
the process exited.  :class:`ArtifactCache` replaces those globals:

* the in-memory layer keeps the old per-process behaviour (same object
  returned on a hit);
* an optional disk layer (``cache_dir`` argument or the ``REPRO_CACHE_DIR``
  environment variable) persists artifacts across processes and sessions,
  with atomic writes (temp file + :func:`os.replace`) so concurrent writers
  never corrupt each other.

Cache keys can be arbitrary compositions of primitives, enums, tuples, and
frozen dataclasses; they are canonicalized to a stable string (and hashed to
a filename for the disk layer) by :func:`encode_key`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, TypeVar, Union

__all__ = ["ArtifactCache", "atomic_publish", "encode_key", "default_cache_dir"]

T = TypeVar("T")

#: Environment variable enabling the disk layer for all caches by default.
_CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISSING = object()

_LOGGER = logging.getLogger(__name__)

#: Exceptions that mean the file's *contents* are bad (truncated or garbage
#: pickle stream, or a payload type that no longer deserializes) — as opposed
#: to :class:`OSError`, which is an I/O-level problem that may be transient.
_CORRUPT_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)


def default_cache_dir() -> Optional[Path]:
    """The disk-cache root configured via ``REPRO_CACHE_DIR``, if any."""
    value = os.environ.get(_CACHE_DIR_ENV)
    return Path(value).expanduser() if value else None


def atomic_publish(path: Path, write: Callable[[Any], None], durable: bool = False) -> None:
    """Atomically publish a file: write a temp sibling, then rename over ``path``.

    Concurrent writers race benignly (last one wins, readers always see a
    complete file) and a failure cleans up the temp file.  ``durable=True``
    additionally fsyncs the data before the rename and the directory after
    it — the ordering the experiment store's write-ahead discipline relies
    on ("a log line implies its payload file exists after a crash").
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        try:  # pragma: no cover - platform-dependent; directory fsync is
            # best-effort (not supported everywhere, e.g. Windows).
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass


def encode_key(key: Any) -> str:
    """Canonicalize a cache key into a stable, process-independent string.

    Enums encode as ``ClassName.MEMBER`` (never by identity or hash), frozen
    dataclasses by their field values, and containers recursively — so the
    same logical key encodes identically in every worker process and session.
    """
    if isinstance(key, enum.Enum):
        return f"{type(key).__name__}.{key.name}"
    if key is None or isinstance(key, (bool, int, str, bytes)):
        return repr(key)
    if isinstance(key, float):
        return repr(key)  # repr round-trips floats exactly
    if dataclasses.is_dataclass(key) and not isinstance(key, type):
        fields = ", ".join(
            f"{f.name}={encode_key(getattr(key, f.name))}"
            for f in dataclasses.fields(key)
        )
        return f"{type(key).__name__}({fields})"
    if isinstance(key, (tuple, list)):
        inner = ", ".join(encode_key(item) for item in key)
        open_, close = ("(", ")") if isinstance(key, tuple) else ("[", "]")
        return f"{open_}{inner}{close}"
    if isinstance(key, (dict,)):
        inner = ", ".join(
            f"{encode_key(k)}: {encode_key(key[k])}" for k in sorted(key, key=repr)
        )
        return f"{{{inner}}}"
    if isinstance(key, frozenset):
        inner = ", ".join(sorted(encode_key(item) for item in key))
        return f"frozenset({{{inner}}})"
    raise TypeError(
        f"cannot build a stable cache key from {type(key).__name__}: {key!r}"
    )


class ArtifactCache:
    """A named cache for expensive artifacts with an optional disk layer.

    ``cache_dir`` pins the disk root for this cache; when left ``None`` the
    ``REPRO_CACHE_DIR`` environment variable is consulted on every access, so
    enabling persistence requires no code changes.  With no directory
    configured the cache is purely in-memory (the pre-refactor behaviour).
    """

    def __init__(self, name: str, cache_dir: Union[str, Path, None] = None):
        if not name:
            raise ValueError("cache name must be non-empty")
        self.name = name
        self._explicit_dir = Path(cache_dir).expanduser() if cache_dir else None
        self._memory: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Disk layer
    # ------------------------------------------------------------------ #

    @property
    def directory(self) -> Optional[Path]:
        """This cache's disk directory, or ``None`` when memory-only."""
        root = self._explicit_dir or default_cache_dir()
        return root / self.name if root is not None else None

    def set_directory(self, cache_dir: Union[str, Path, None]) -> None:
        """(Re)configure the disk root (``None`` reverts to the env default)."""
        self._explicit_dir = Path(cache_dir).expanduser() if cache_dir else None

    def _path_for(self, encoded: str) -> Optional[Path]:
        directory = self.directory
        if directory is None:
            return None
        digest = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
        return directory / f"{digest}.pkl"

    def _load_from_disk(self, encoded: str) -> Any:
        path = self._path_for(encoded)
        if path is None or not path.exists():
            return _MISSING
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except OSError:
            # An I/O-level hiccup (permissions, racing unlink); the file may
            # be fine on the next access, so treat as a plain miss.
            return _MISSING
        except _CORRUPT_PICKLE_ERRORS:
            # The entry itself is unreadable and will stay unreadable: move
            # it aside so later gets miss cleanly (and rebuild via the
            # factory) instead of re-attempting the doomed load every time.
            self._quarantine(path)
            return _MISSING

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the lookup path (keeping it for triage)."""
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
            _LOGGER.warning(
                "cache %r: quarantined corrupt entry %s -> %s",
                self.name,
                path.name,
                quarantined.name,
            )
        except OSError:
            try:
                path.unlink()
                _LOGGER.warning(
                    "cache %r: deleted corrupt entry %s", self.name, path.name
                )
            except OSError:  # pragma: no cover - racing cleanup is benign
                pass

    def _store_to_disk(self, encoded: str, value: Any) -> None:
        path = self._path_for(encoded)
        if path is None:
            return
        atomic_publish(
            path,
            lambda handle: pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached artifact for ``key``, or ``default`` on a miss."""
        encoded = encode_key(key)
        if encoded in self._memory:
            return self._memory[encoded]
        value = self._load_from_disk(encoded)
        if value is _MISSING:
            return default
        self._memory[encoded] = value
        return value

    def put(self, key: Any, value: Any) -> None:
        """Store an artifact in memory and (when configured) on disk."""
        encoded = encode_key(key)
        self._memory[encoded] = value
        self._store_to_disk(encoded, value)

    def get_or_create(self, key: Any, factory: Callable[[], T]) -> T:
        """Return the cached artifact for ``key``, building it on first use."""
        encoded = encode_key(key)
        if encoded in self._memory:
            return self._memory[encoded]
        value = self._load_from_disk(encoded)
        if value is _MISSING:
            value = factory()
            self._store_to_disk(encoded, value)
        self._memory[encoded] = value
        return value

    def __contains__(self, key: Any) -> bool:
        encoded = encode_key(key)
        if encoded in self._memory:
            return True
        return self._load_from_disk(encoded) is not _MISSING

    def __len__(self) -> int:
        """Number of artifacts in the in-memory layer."""
        return len(self._memory)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer; with ``disk=True`` also delete disk files."""
        self._memory.clear()
        if disk:
            directory = self.directory
            if directory is not None and directory.exists():
                # "*.pkl*" also sweeps quarantined "*.pkl.corrupt" entries.
                for path in directory.glob("*.pkl*"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactCache({self.name!r}, entries={len(self._memory)}, dir={self.directory})"

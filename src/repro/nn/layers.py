"""Layers for the feed-forward network: dense, ReLU, and dropout.

Each layer implements ``forward`` / ``backward`` with explicit caching of the
quantities needed for back-propagation, and exposes its parameters and
gradients so optimizers can update them in place.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Dropout"]


class Layer:
    """Base class for network layers."""

    #: Whether the layer behaves differently at training vs. inference time.
    has_training_mode = False

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch of inputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. inputs."""
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable parameters, keyed by name."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Gradients for each trainable parameter (same keys as parameters)."""
        return {}


class Dense(Layer):
    """Fully-connected affine layer ``y = x W + b``.

    Weights are initialized with He initialization, which suits the ReLU
    activations used throughout the safety hijacker.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weights.shape[0]

    @property
    def out_features(self) -> int:
        return self.weights.shape[1]

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {inputs.shape[1]}"
            )
        self._inputs = inputs
        return inputs @ self.weights + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.atleast_2d(grad_output)
        self.grad_weights = self._inputs.T @ grad_output
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weights": self.grad_weights, "bias": self.grad_bias}


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``.

    The paper uses a dropout rate of 0.1 in the safety hijacker.
    """

    has_training_mode = True

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = np.ones_like(inputs)
            return inputs
        keep_prob = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep_prob) / keep_prob
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


def layers_with_parameters(layers: List[Layer]) -> List[Layer]:
    """Return the subset of ``layers`` that have trainable parameters."""
    return [layer for layer in layers if layer.parameters()]

"""Actors: the ego vehicle, scripted vehicles, and pedestrians.

The ego vehicle (EV in the paper) is controlled by the ADS through a
longitudinal acceleration command; every other actor follows a scripted
waypoint route.  Actor footprints are axis-aligned rectangles in the road
frame, which is sufficient for the straight-road scenarios of the paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.geometry import Vec2
from repro.sim.waypoints import WaypointRoute

__all__ = ["ActorKind", "ActorDimensions", "ActorSnapshot", "ScriptedActor", "EgoVehicle"]

_actor_id_counter = itertools.count(1)


class ActorKind(enum.Enum):
    """Object classes recognized by the perception system."""

    VEHICLE = "vehicle"
    PEDESTRIAN = "pedestrian"


@dataclass(frozen=True)
class ActorDimensions:
    """Physical footprint and height of an actor."""

    length_m: float
    width_m: float
    height_m: float

    def __post_init__(self) -> None:
        if min(self.length_m, self.width_m, self.height_m) <= 0:
            raise ValueError("actor dimensions must be positive")

    @staticmethod
    def sedan() -> "ActorDimensions":
        return ActorDimensions(length_m=4.6, width_m=1.9, height_m=1.5)

    @staticmethod
    def suv() -> "ActorDimensions":
        return ActorDimensions(length_m=4.9, width_m=2.0, height_m=1.8)

    @staticmethod
    def pedestrian() -> "ActorDimensions":
        return ActorDimensions(length_m=0.5, width_m=0.5, height_m=1.7)


@dataclass(frozen=True)
class ActorSnapshot:
    """Ground-truth state of one actor at a simulation step."""

    actor_id: int
    kind: ActorKind
    position: Vec2
    velocity: Vec2
    dimensions: ActorDimensions
    is_ego: bool = False

    @property
    def speed(self) -> float:
        return self.velocity.norm()

    def longitudinal_gap_to(self, other: "ActorSnapshot") -> float:
        """Bumper-to-bumper longitudinal gap to ``other`` (negative if overlapping)."""
        center_gap = abs(other.position.x - self.position.x)
        return center_gap - (self.dimensions.length_m + other.dimensions.length_m) / 2.0

    def lateral_overlap_with(self, other: "ActorSnapshot", margin: float = 0.0) -> bool:
        """Whether the two footprints overlap laterally (within ``margin``)."""
        half_widths = (self.dimensions.width_m + other.dimensions.width_m) / 2.0
        return abs(other.position.y - self.position.y) <= half_widths + margin

    def overlaps(self, other: "ActorSnapshot") -> bool:
        """Whether the two rectangular footprints physically overlap."""
        return self.longitudinal_gap_to(other) <= 0.0 and self.lateral_overlap_with(other)


class ScriptedActor:
    """A non-ego actor (vehicle or pedestrian) that follows a waypoint route."""

    def __init__(
        self,
        kind: ActorKind,
        route: WaypointRoute,
        dimensions: ActorDimensions | None = None,
        name: str | None = None,
    ):
        self.actor_id = next(_actor_id_counter)
        self.kind = kind
        self.route = route
        if dimensions is None:
            dimensions = (
                ActorDimensions.sedan() if kind is ActorKind.VEHICLE else ActorDimensions.pedestrian()
            )
        self.dimensions = dimensions
        self.name = name or f"{kind.value}-{self.actor_id}"

    def step(self, dt: float) -> None:
        """Advance the actor along its route."""
        self.route.advance(dt)

    def snapshot(self) -> ActorSnapshot:
        """Current ground-truth state."""
        return ActorSnapshot(
            actor_id=self.actor_id,
            kind=self.kind,
            position=self.route.position,
            velocity=self.route.velocity,
            dimensions=self.dimensions,
            is_ego=False,
        )


class EgoVehicle:
    """The ego vehicle, driven longitudinally by the ADS acceleration command.

    The EV keeps its lane (lateral position fixed); the paper's attacks and
    scenarios are longitudinal, and Apollo's planner in those scenarios is in
    lane-keep mode.
    """

    def __init__(
        self,
        position: Vec2,
        speed_mps: float,
        dimensions: ActorDimensions | None = None,
        max_accel_mps2: float = 2.0,
        max_decel_mps2: float = 6.0,
    ):
        if speed_mps < 0:
            raise ValueError("initial speed must be non-negative")
        self.actor_id = next(_actor_id_counter)
        self.kind = ActorKind.VEHICLE
        self.position = position
        self.speed_mps = speed_mps
        self.acceleration_mps2 = 0.0
        self.dimensions = dimensions or ActorDimensions.sedan()
        self.max_accel_mps2 = max_accel_mps2
        self.max_decel_mps2 = max_decel_mps2
        self.name = "ego"

    def apply_control(self, acceleration_mps2: float, dt: float) -> None:
        """Apply a longitudinal acceleration command for one time step."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        accel = float(
            min(max(acceleration_mps2, -self.max_decel_mps2), self.max_accel_mps2)
        )
        self.acceleration_mps2 = accel
        new_speed = max(0.0, self.speed_mps + accel * dt)
        # Trapezoidal position update keeps the kinematics consistent when the
        # speed clamps at zero.
        avg_speed = (self.speed_mps + new_speed) / 2.0
        self.position = Vec2(self.position.x + avg_speed * dt, self.position.y)
        self.speed_mps = new_speed

    def snapshot(self) -> ActorSnapshot:
        """Current ground-truth state."""
        return ActorSnapshot(
            actor_id=self.actor_id,
            kind=self.kind,
            position=self.position,
            velocity=Vec2(self.speed_mps, 0.0),
            dimensions=self.dimensions,
            is_ego=True,
        )

    @property
    def front_bumper_x(self) -> float:
        """Longitudinal coordinate of the front bumper."""
        return self.position.x + self.dimensions.length_m / 2.0

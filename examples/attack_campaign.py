#!/usr/bin/env python3
"""Run a miniature version of the paper's Table II evaluation campaign.

Executes seeded campaigns for every <driving scenario, attack vector> pair of
paper Table II (RoboTack with the trained neural safety hijacker), plus the
DS-5 random-attack baseline, and prints the resulting table together with the
§I headline comparisons.

The number of runs per campaign is controlled with ``--runs`` (default 10; the
paper uses 130-200 per campaign); ``--jobs N`` fans the runs of each campaign
out over N worker processes with identical results.

Run with:  python examples/attack_campaign.py --runs 10 --jobs 4
"""

from __future__ import annotations

import argparse

from repro.experiments.campaign import (
    baseline_random_campaign,
    run_campaign,
    standard_campaigns,
)
from repro.experiments.metrics import summarize_campaign
from repro.experiments.tables import headline_findings
from repro.runtime import resolve_executor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10, help="simulation runs per campaign")
    parser.add_argument("--seed", type=int, default=2020, help="root seed for the campaigns")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes per campaign (0/1 = serial, -1 = all CPUs)",
    )
    args = parser.parse_args()

    print(f"Running {args.runs} runs per campaign (paper: 130-200). This trains one")
    print("safety-hijacker network per <scenario, vector> pair on the first use.\n")

    executor = resolve_executor(args.jobs)
    try:
        robotack_results = []
        for config in standard_campaigns(n_runs=args.runs, seed=args.seed):
            print(f"running {config.campaign_id} ...")
            robotack_results.append(run_campaign(config, executor=executor))
        print("running DS-5-Baseline-Random ...")
        random_result = run_campaign(
            baseline_random_campaign(n_runs=args.runs, seed=args.seed), executor=executor
        )
    finally:
        executor.close()

    print("\n=== Table II (reproduced) ===")
    for campaign in robotack_results + [random_result]:
        print(summarize_campaign(campaign).format_row())

    findings = headline_findings(robotack_results, random_result)
    print("\n=== Headline findings ===")
    print(f"RoboTack forced emergency braking in {findings['robotack_eb_rate']:.1%} of runs")
    print(f"RoboTack caused accidents in {findings['robotack_crash_rate']:.1%} of runs")
    print(f"Random baseline: EB {findings['random_eb_rate']:.1%}, accidents {findings['random_crash_rate']:.1%}")
    print(
        f"Success on pedestrians vs vehicles: "
        f"{findings['pedestrian_success_rate']:.1%} vs {findings['vehicle_success_rate']:.1%}"
    )


if __name__ == "__main__":
    main()

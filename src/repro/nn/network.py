"""The feed-forward network container.

``FeedForwardNetwork.safety_hijacker_architecture`` builds exactly the
architecture described in paper §IV-B: three hidden layers of 100, 100, and 50
neurons with ReLU activations and dropout rate 0.1, and a linear scalar output
(the predicted safety potential).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.nn.layers import Dense, Dropout, Layer, ReLU

__all__ = ["FeedForwardNetwork"]


class FeedForwardNetwork:
    """A sequential stack of layers with forward/backward passes."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)

    @classmethod
    def mlp(
        cls,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        dropout_rate: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "FeedForwardNetwork":
        """Build a standard multi-layer perceptron with ReLU activations."""
        rng = rng if rng is not None else np.random.default_rng()
        dims = [input_dim, *hidden_dims]
        layers: List[Layer] = []
        for in_dim, out_dim in zip(dims[:-1], dims[1:]):
            layers.append(Dense(in_dim, out_dim, rng=rng))
            layers.append(ReLU())
            if dropout_rate > 0.0:
                layers.append(Dropout(dropout_rate, rng=rng))
        layers.append(Dense(dims[-1], output_dim, rng=rng))
        return cls(layers)

    @classmethod
    def safety_hijacker_architecture(
        cls, input_dim: int, rng: np.random.Generator | None = None
    ) -> "FeedForwardNetwork":
        """The 100-100-50 ReLU/dropout-0.1 architecture from paper §IV-B."""
        return cls.mlp(
            input_dim=input_dim,
            hidden_dims=(100, 100, 50),
            output_dim=1,
            dropout_rate=0.1,
            rng=rng,
        )

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the forward pass for a batch of inputs."""
        out = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (dropout disabled)."""
        return self.forward(inputs, training=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate the loss gradient through every layer."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def trainable_layers(self) -> List[Layer]:
        """Layers that expose trainable parameters."""
        return [layer for layer in self.layers if layer.parameters()]

    def num_parameters(self) -> int:
        """Total count of trainable scalar parameters."""
        return sum(
            int(np.prod(param.shape))
            for layer in self.trainable_layers()
            for param in layer.parameters().values()
        )

    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy out all parameters (for checkpointing / tests)."""
        return [
            {name: param.copy() for name, param in layer.parameters().items()}
            for layer in self.trainable_layers()
        ]

    def save(self, path: Union[str, Path]) -> Path:
        """Persist this network (architecture JSON + weights NPZ) under ``path``.

        A loaded copy (:meth:`load`) produces bit-identical predictions.
        """
        from repro.nn.serialization import save_network

        return save_network(self, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FeedForwardNetwork":
        """Rebuild a network previously persisted with :meth:`save`."""
        from repro.nn.serialization import load_network

        return load_network(path)

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        trainable = self.trainable_layers()
        if len(weights) != len(trainable):
            raise ValueError(
                f"expected weights for {len(trainable)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(trainable, weights):
            params = layer.parameters()
            for name, value in layer_weights.items():
                if name not in params:
                    raise KeyError(f"unknown parameter {name!r}")
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{params[name].shape} vs {value.shape}"
                    )
                params[name][...] = value

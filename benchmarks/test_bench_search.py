"""Benchmark: adaptive falsification vs blind random search on DS-3.

The falsification engine's reason to exist is sample efficiency: finding the
attack-success region of a parameter space in fewer simulation runs than a
blind sweep.  This benchmark pins that claim on the paper's DS-3 (parked
vehicle) scenario under the Move_In vector, searching the detector-degradation
plane for a ``>= 95%`` emergency-braking success pocket.

The landscape (measured at 30 runs/point) has a genuine structure: success is
near-certain only where ``detector.sigma_scale`` is high *and*
``detector.misdetection_scale`` is low — roughly 2% of the plane — with a
broad 0.5-0.8 plateau elsewhere.  At 20 runs/point the 0.95 target needs
19/20 successes, which the plateau essentially never produces by luck, so
reaching the target means actually locating the pocket.

Everything is seeded and store-backed: both searches are deterministic, so
the gate (cross-entropy spends at most half of random's run budget) is a
regression bound on the sampler, not a statistical coin flip.  The run count
per point is fixed at 20 — independent of ``REPRO_BENCH_RUNS`` — because the
binomial noise floor is part of the problem being benchmarked.
``REPRO_BENCH_JOBS`` still fans the simulation runs out over workers.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import BENCH_JOBS
from repro.core.attack_vectors import AttackVector
from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    PredictorKind,
    clear_caches,
)
from repro.experiments.store import ExperimentStore
from repro.search import FalsificationLoop, SearchResult, SearchSpec

from repro.sim.sweeps import ParameterSpace, Uniform

# The detector-degradation plane searched for the attack-success pocket.
SPACE = ParameterSpace(
    {
        "detector.sigma_scale": Uniform(0.25, 12.0),
        "detector.misdetection_scale": Uniform(0.5, 8.0),
    }
)

TARGET_SCORE = 0.95  # 19/20 successful runs at a point
RUNS_PER_POINT = 20
BUDGET_RUNS = 1600  # 80 points — an 8x10 grid's worth of simulation budget
SEARCH_SEED = 1


def _search(sampler: str, store_root: Path) -> SearchResult:
    base = CampaignConfig(
        campaign_id="bench-search",
        scenario_id="DS-3",
        attacker=AttackerKind.ROBOTACK,
        vector=AttackVector.MOVE_IN,
        n_runs=RUNS_PER_POINT,
        seed=2020,
        predictor=PredictorKind.KINEMATIC,
    )
    spec = SearchSpec(
        base=base,
        space=SPACE,
        sampler=sampler,
        objective="attack_success",
        budget_runs=BUDGET_RUNS,
        batch_points=8,
        seed=SEARCH_SEED,
        target_score=TARGET_SCORE,
        sampler_options=(
            {"min_sigma": 0.12, "smoothing": 0.5} if sampler == "ce" else {}
        ),
    )
    clear_caches()
    loop = FalsificationLoop(spec, ExperimentStore(store_root), executor=BENCH_JOBS)
    return loop.run()


def test_cross_entropy_halves_random_search_budget(tmp_path):
    ce = _search("ce", tmp_path / "ce")
    random_ = _search("random", tmp_path / "random")

    print("\nAdaptive falsification on DS-3 Move_In (target EB rate >= 0.95):")
    for result in (ce, random_):
        status = "reached" if result.reached_target else "exhausted budget"
        print(
            f"  {result.spec.sampler:>6}: {result.runs_spent:>5} runs "
            f"({result.iterations_completed} iterations, {status}, "
            f"best score {result.best_score:.2f})"
        )

    # The adaptive sampler must actually find the pocket...
    assert ce.reached_target
    assert ce.best_score >= TARGET_SCORE
    assert ce.best_assignment is not None
    # ...and spend at most half the runs blind random search needed (random
    # exhausts its full budget here without reaching the target).
    assert ce.runs_spent <= 0.5 * random_.runs_spent

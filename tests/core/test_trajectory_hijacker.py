"""Tests for the trajectory hijacker (how to attack)."""

import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.trajectory_hijacker import TrajectoryHijacker, TrajectoryHijackerConfig
from repro.geometry import CameraProjection, iou
from repro.perception.detection import Detection
from repro.perception.tracker import ObjectTrack
from repro.sensors.camera import CameraFrame, CameraObject
from repro.sim.actors import ActorKind
from repro.sim.road import Road

PROJECTION = CameraProjection()


def camera_object(distance=30.0, lateral=0.0, kind=ActorKind.VEHICLE, actor_id=1):
    width = 1.9 if kind is ActorKind.VEHICLE else 0.5
    height = 1.6 if kind is ActorKind.VEHICLE else 1.7
    bbox = PROJECTION.project(distance, lateral, width, height)
    return CameraObject(
        actor_id=actor_id,
        kind=kind,
        bbox=bbox,
        distance_m=distance,
        lateral_m=lateral,
        object_height_m=height,
        object_width_m=width,
    )


def frame_with(objects, index=0):
    return CameraFrame(time_s=index / 15.0, frame_index=index, objects=tuple(objects))


def perceived_lateral(camera_obj):
    """Recover the lateral position the victim would estimate from a frame object."""
    distance = PROJECTION.inverse_distance(camera_obj.bbox, camera_obj.object_height_m)
    return PROJECTION.inverse_lateral(camera_obj.bbox, distance)


@pytest.fixture
def hijacker(road):
    return TrajectoryHijacker(road)


class TestEpisodeLifecycle:
    def test_inactive_by_default(self, hijacker):
        assert not hijacker.active
        frame = frame_with([camera_object()])
        assert hijacker.perturb_frame(frame, None) is frame

    def test_begin_and_end(self, hijacker):
        hijacker.begin(AttackVector.MOVE_OUT, target_actor_id=1, target_lateral_m=0.0, target_kind=ActorKind.VEHICLE)
        assert hijacker.active
        assert hijacker.target_actor_id == 1
        hijacker.end()
        assert not hijacker.active

    def test_missing_target_leaves_frame_unchanged(self, hijacker):
        hijacker.begin(AttackVector.MOVE_OUT, 99, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(actor_id=1)])
        out = hijacker.perturb_frame(frame, None)
        assert out.objects == frame.objects


class TestDisappear:
    def test_target_removed_from_frame(self, hijacker):
        hijacker.begin(AttackVector.DISAPPEAR, 1, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(actor_id=1), camera_object(distance=50, actor_id=2)])
        out = hijacker.perturb_frame(frame, None)
        assert out.object_for_actor(1) is None
        assert out.object_for_actor(2) is not None

    def test_frames_perturbed_counted(self, hijacker):
        hijacker.begin(AttackVector.DISAPPEAR, 1, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(actor_id=1)])
        for _ in range(5):
            hijacker.perturb_frame(frame, None)
        assert hijacker.frames_perturbed == 5


class TestMoveOut:
    def test_fake_trajectory_leaves_ego_lane(self, hijacker, road):
        hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(distance=25.0, lateral=0.0)])
        shifted_lateral = 0.0
        for _ in range(40):
            out = hijacker.perturb_frame(frame, None)
            shifted_lateral = perceived_lateral(out.object_for_actor(1))
        assert not road.in_ego_lane(shifted_lateral, margin=1.0)

    def test_shift_is_gradual_within_noise_bound(self, hijacker):
        hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(distance=25.0, lateral=0.0)])
        previous = 0.0
        for _ in range(10):
            out = hijacker.perturb_frame(frame, None)
            current = perceived_lateral(out.object_for_actor(1))
            step = abs(current - previous)
            noise = hijacker.config.detector.noise_for(ActorKind.VEHICLE)
            bound_m = (abs(noise.center_noise_mu_x) + noise.center_noise_sigma_x) * 1.9
            assert step <= bound_m * 1.3
            previous = current

    def test_k_prime_counts_only_shift_phase(self, hijacker):
        hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.VEHICLE)
        frame = frame_with([camera_object(distance=25.0, lateral=0.0)])
        for _ in range(60):
            hijacker.perturb_frame(frame, None)
        assert 0 < hijacker.shift_frames_k_prime < 60
        assert hijacker.frames_perturbed == 60

    def test_out_of_lane_target_is_held_outside(self, hijacker, road):
        # A crossing pedestrian at -4 m: the fake trajectory should keep it
        # outside the ego lane even as the real pedestrian moves in.
        hijacker.begin(AttackVector.MOVE_OUT, 1, -4.0, ActorKind.PEDESTRIAN)
        for step in range(30):
            real_lateral = -4.0 + 1.4 * step / 15.0
            frame = frame_with(
                [camera_object(distance=40.0, lateral=real_lateral, kind=ActorKind.PEDESTRIAN)], step
            )
            out = hijacker.perturb_frame(frame, None)
            fake = perceived_lateral(out.object_for_actor(1))
            assert not road.in_ego_lane(fake, margin=0.3)

    def test_vehicle_goal_further_out_than_pedestrian_goal(self, road):
        config = TrajectoryHijackerConfig()
        vehicle_hijacker = TrajectoryHijacker(road, config)
        vehicle_hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.VEHICLE)
        pedestrian_hijacker = TrajectoryHijacker(road, config)
        pedestrian_hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.PEDESTRIAN)
        assert abs(vehicle_hijacker._goal_lateral_m) > abs(pedestrian_hijacker._goal_lateral_m)


class TestMoveIn:
    def test_fake_trajectory_enters_ego_lane(self, hijacker, road):
        hijacker.begin(AttackVector.MOVE_IN, 1, -3.5, ActorKind.VEHICLE)
        frame = frame_with([camera_object(distance=30.0, lateral=-3.5)])
        final_lateral = -3.5
        for _ in range(40):
            out = hijacker.perturb_frame(frame, None)
            final_lateral = perceived_lateral(out.object_for_actor(1))
        assert road.in_ego_lane(final_lateral, margin=0.1)

    def test_distance_is_preserved(self, hijacker):
        hijacker.begin(AttackVector.MOVE_IN, 1, -3.5, ActorKind.VEHICLE)
        frame = frame_with([camera_object(distance=30.0, lateral=-3.5)])
        out = hijacker.perturb_frame(frame, None)
        obj = out.object_for_actor(1)
        assert PROJECTION.inverse_distance(obj.bbox, obj.object_height_m) == pytest.approx(30.0, rel=0.01)


class TestAssociationConstraint:
    def test_shift_keeps_association_with_own_tracker(self, road):
        hijacker = TrajectoryHijacker(road)
        hijacker.begin(AttackVector.MOVE_OUT, 1, 0.0, ActorKind.VEHICLE)
        obj = camera_object(distance=25.0, lateral=0.0)
        track = ObjectTrack(1, Detection(ActorKind.VEHICLE, obj.bbox, 0.9, 1))
        frame = frame_with([obj])
        for _ in range(30):
            out = hijacker.perturb_frame(frame, track)
            shifted = out.object_for_actor(1)
            assert iou(shifted.bbox, track.bbox) >= hijacker.config.association_min_iou
            # The malware's own tracker mirrors the victim's and follows the fake.
            track.predict()
            track.update(Detection(ActorKind.VEHICLE, shifted.bbox, 0.9, 1))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryHijackerConfig(association_min_iou=1.0)

"""Multi-object tracking by detection (paper Definition 2 and Fig. 1).

Every frame the tracker:

1. predicts each existing track one step forward with its Kalman filter,
2. associates detections to predicted boxes with the Hungarian algorithm on an
   IoU cost (a pair is only accepted when its IoU clears a threshold — this is
   the association constraint λ that the trajectory hijacker must respect),
3. updates matched tracks, marks unmatched tracks as missed, and spawns new
   tracks for unmatched detections,
4. retires tracks that have been missed for too many consecutive frames.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.geometry import iou
from repro.perception.detection import Detection
from repro.perception.hungarian import hungarian_assignment
from repro.perception.tracker import ObjectTrack

__all__ = ["TrackerConfig", "MultiObjectTracker"]


@dataclass(frozen=True)
class TrackerConfig:
    """Association and lifecycle parameters of the multi-object tracker."""

    #: Minimum IoU between a detection and a predicted track box for the
    #: Hungarian match to be accepted.
    min_iou_for_match: float = 0.2
    #: A match is also accepted when the centre distance between the detection
    #: and the predicted box is below this many mean box widths (small,
    #: fast-moving boxes such as distant pedestrians can lose IoU overlap for a
    #: frame while clearly belonging to the same track).
    center_distance_gate: float = 2.0
    #: Number of consecutive missed frames after which a track is dropped.
    max_consecutive_misses: int = 15
    #: Number of associated detections before a track is considered confirmed.
    min_hits_to_confirm: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_iou_for_match <= 1.0:
            raise ValueError("min_iou_for_match must be in [0, 1]")
        if self.center_distance_gate <= 0:
            raise ValueError("center_distance_gate must be positive")
        if self.max_consecutive_misses < 1:
            raise ValueError("max_consecutive_misses must be at least 1")
        if self.min_hits_to_confirm < 1:
            raise ValueError("min_hits_to_confirm must be at least 1")


class MultiObjectTracker:
    """Tracking-by-detection over image-plane bounding boxes."""

    def __init__(self, config: TrackerConfig | None = None):
        self.config = config or TrackerConfig()
        self.tracks: Dict[int, ObjectTrack] = {}
        self._next_track_id = itertools.count(1)

    def reset(self) -> None:
        """Drop all tracks."""
        self.tracks.clear()

    def step(self, detections: List[Detection]) -> List[ObjectTrack]:
        """Process one frame of detections and return the live confirmed tracks."""
        track_ids = list(self.tracks)
        predicted_boxes = {tid: self.tracks[tid].predict() for tid in track_ids}

        matched_track_ids, matched_detection_idx = self._associate(
            track_ids, predicted_boxes, detections
        )

        for tid, det_idx in zip(matched_track_ids, matched_detection_idx):
            self.tracks[tid].update(detections[det_idx])

        unmatched_tracks = set(track_ids) - set(matched_track_ids)
        for tid in unmatched_tracks:
            self.tracks[tid].mark_missed()

        matched_detections = set(matched_detection_idx)
        for det_idx, detection in enumerate(detections):
            if det_idx not in matched_detections:
                track_id = next(self._next_track_id)
                self.tracks[track_id] = ObjectTrack(track_id, detection)

        self._retire_stale_tracks()
        return self.confirmed_tracks()

    def confirmed_tracks(self) -> List[ObjectTrack]:
        """Tracks with enough supporting detections to be reported downstream."""
        return [
            track
            for track in self.tracks.values()
            if track.is_confirmed(self.config.min_hits_to_confirm)
        ]

    def track_for_actor(self, actor_id: int) -> ObjectTrack | None:
        """Bookkeeping lookup: the track most recently fed by a given actor."""
        for track in self.tracks.values():
            if track.actor_id == actor_id:
                return track
        return None

    def _associate(
        self,
        track_ids: List[int],
        predicted_boxes: Dict[int, object],
        detections: List[Detection],
    ) -> tuple[List[int], List[int]]:
        if not track_ids or not detections:
            return [], []
        cost = np.ones((len(track_ids), len(detections)))
        acceptable = np.zeros((len(track_ids), len(detections)), dtype=bool)
        for row, tid in enumerate(track_ids):
            predicted = predicted_boxes[tid]
            for col, detection in enumerate(detections):
                overlap = iou(predicted, detection.bbox)
                center_distance = np.hypot(
                    predicted.cx - detection.bbox.cx, predicted.cy - detection.bbox.cy
                )
                mean_width = max(1.0, (predicted.width + detection.bbox.width) / 2.0)
                normalized_distance = center_distance / mean_width
                # The Hungarian cost prefers high-IoU pairs but still orders
                # non-overlapping candidates by proximity.
                cost[row, col] = (1.0 - overlap) + 0.05 * min(normalized_distance, 10.0)
                width_ratio = detection.bbox.width / max(predicted.width, 1.0)
                size_consistent = 0.4 <= width_ratio <= 2.5
                acceptable[row, col] = size_consistent and (
                    overlap >= self.config.min_iou_for_match
                    or normalized_distance <= self.config.center_distance_gate
                )
        pairs = hungarian_assignment(cost)
        matched_tracks: List[int] = []
        matched_detections: List[int] = []
        for row, col in pairs:
            if acceptable[row, col]:
                matched_tracks.append(track_ids[row])
                matched_detections.append(col)
        return matched_tracks, matched_detections

    def _retire_stale_tracks(self) -> None:
        stale = [
            tid
            for tid, track in self.tracks.items()
            if track.consecutive_misses > self.config.max_consecutive_misses
        ]
        for tid in stale:
            del self.tracks[tid]

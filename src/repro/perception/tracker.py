"""A single object track: a Kalman filter plus lifecycle bookkeeping.

Each detected object is associated with a unique tracker maintaining its state
(paper Definition 1 / §II-B).  The track records hit/miss streaks so the
multi-object tracker can confirm new tracks and retire stale ones, and keeps
the bookkeeping ``actor_id`` of the detection that most recently updated it
(used only by the simulation metrics and the attacker's target selection).
"""

from __future__ import annotations

from repro.geometry import BoundingBox
from repro.perception.detection import Detection
from repro.perception.kalman import BoundingBoxKalmanFilter
from repro.sim.actors import ActorKind

__all__ = ["ObjectTrack"]


class ObjectTrack:
    """State of one tracked object in image space."""

    def __init__(self, track_id: int, detection: Detection):
        self.track_id = track_id
        self.kind: ActorKind = detection.kind
        self.filter = BoundingBoxKalmanFilter(detection.bbox)
        self.actor_id = detection.actor_id
        self.hits = 1
        self.consecutive_misses = 0
        self.age_frames = 1
        self.last_predicted_bbox: BoundingBox = detection.bbox

    def predict(self) -> BoundingBox:
        """Advance the track's Kalman filter one frame."""
        self.age_frames += 1
        self.last_predicted_bbox = self.filter.predict()
        return self.last_predicted_bbox

    def update(self, detection: Detection) -> None:
        """Incorporate an associated detection."""
        self.filter.update(detection.bbox)
        self.kind = detection.kind
        self.actor_id = detection.actor_id
        self.hits += 1
        self.consecutive_misses = 0

    def mark_missed(self) -> None:
        """Record that no detection was associated with this track this frame."""
        self.consecutive_misses += 1

    @property
    def bbox(self) -> BoundingBox:
        """Current filtered bounding box."""
        return self.filter.current_bbox()

    @property
    def velocity_px_per_frame(self) -> tuple[float, float]:
        """Filtered pixel velocity of the box centre."""
        return self.filter.velocity_px_per_frame()

    def is_confirmed(self, min_hits: int) -> bool:
        """Whether the track has enough supporting detections to be trusted."""
        return self.hits >= min_hits

"""Experiment harness: campaigns, metrics, and table/figure generators.

This package regenerates every table and figure of the paper's evaluation
(§VI) on top of the simulation substrate:

* :mod:`repro.experiments.characterization` — the detector characterization of
  Fig. 5 (misdetection bursts, bounding-box centre noise);
* :mod:`repro.experiments.campaign` — seeded campaigns of attacked simulation
  runs (RoboTack, RoboTack without the safety hijacker, random baseline,
  golden runs);
* :mod:`repro.experiments.results` / :mod:`repro.experiments.metrics` — per-run
  records and campaign aggregation (emergency-braking and crash rates);
* :mod:`repro.experiments.store` — the durable, append-only experiment store
  (per-run JSONL records + NPZ traces, content-addressed by config hash) that
  makes campaigns resumable and their statistics queryable after the fact;
* :mod:`repro.experiments.tables` — Table I and Table II;
* :mod:`repro.experiments.figures` — Fig. 6 (safety-potential boxplots),
  Fig. 7 (K' distributions), and Fig. 8 (safety-hijacker prediction quality).
"""

from repro.experiments.campaign import (
    AttackerKind,
    CampaignConfig,
    PredictorKind,
    clear_caches,
    get_or_train_predictor,
    run_campaign,
    run_campaigns,
    run_single_experiment,
    run_single_experiment_record,
)
from repro.experiments.store import ExperimentStore, RunRecord, config_hash
from repro.experiments.characterization import CharacterizationReport, characterize_detector
from repro.experiments.figures import (
    Fig6Panel,
    Fig7Panel,
    Fig8Data,
    fig6_panels,
    fig7_panels,
    fig8_data,
)
from repro.experiments.metrics import CampaignSummary, summarize_campaign
from repro.experiments.results import CampaignResult, RunResult
from repro.experiments.tables import (
    Table1Row,
    Table2Row,
    headline_findings,
    table1_rows,
    table2_rows,
)

__all__ = [
    "AttackerKind",
    "CampaignConfig",
    "PredictorKind",
    "clear_caches",
    "get_or_train_predictor",
    "run_campaign",
    "run_campaigns",
    "run_single_experiment",
    "run_single_experiment_record",
    "ExperimentStore",
    "RunRecord",
    "config_hash",
    "CharacterizationReport",
    "characterize_detector",
    "Fig6Panel",
    "Fig7Panel",
    "Fig8Data",
    "fig6_panels",
    "fig7_panels",
    "fig8_data",
    "CampaignSummary",
    "summarize_campaign",
    "CampaignResult",
    "RunResult",
    "Table1Row",
    "Table2Row",
    "headline_findings",
    "table1_rows",
    "table2_rows",
]

"""Geometric primitives: 2-D vectors, bounding boxes, and camera projection.

These primitives are shared by the simulator (world-frame positions), the
sensors (image-plane bounding boxes), and the perception stack (IoU-based
association, bbox <-> world transforms).
"""

from repro.geometry.vec import Vec2
from repro.geometry.bbox import BoundingBox, iou
from repro.geometry.projection import CameraIntrinsics, CameraProjection

__all__ = [
    "Vec2",
    "BoundingBox",
    "iou",
    "CameraIntrinsics",
    "CameraProjection",
]

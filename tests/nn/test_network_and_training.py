"""Tests for the feed-forward network, losses, optimizers, and training loop."""

import gc
import weakref

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    FeedForwardNetwork,
    MeanSquaredError,
    SGD,
    train_network,
    train_validation_split,
)


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        loss = MeanSquaredError()
        y = np.array([[1.0], [2.0]])
        assert loss.forward(y, y) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([[2.0]]), np.array([[0.0]])) == pytest.approx(4.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.ones((2, 1)), np.ones((3, 1)))

    def test_gradient_sign(self):
        loss = MeanSquaredError()
        grad = loss.backward(np.array([[2.0]]), np.array([[0.0]]))
        assert grad[0, 0] > 0


class TestFeedForwardNetwork:
    def test_paper_architecture_layer_sizes(self, rng):
        network = FeedForwardNetwork.safety_hijacker_architecture(4, rng=rng)
        dense_layers = network.trainable_layers()
        sizes = [(layer.in_features, layer.out_features) for layer in dense_layers]
        assert sizes == [(4, 100), (100, 100), (100, 50), (50, 1)]

    def test_parameter_count_positive(self, rng):
        network = FeedForwardNetwork.mlp(4, (8, 8), 1, rng=rng)
        assert network.num_parameters() == 4 * 8 + 8 + 8 * 8 + 8 + 8 * 1 + 1

    def test_predict_shape(self, rng):
        network = FeedForwardNetwork.mlp(3, (5,), 2, rng=rng)
        assert network.predict(np.ones((7, 3))).shape == (7, 2)

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork([])

    def test_get_set_weights_round_trip(self, rng):
        network = FeedForwardNetwork.mlp(3, (5,), 1, rng=rng)
        weights = network.get_weights()
        x = np.ones((2, 3))
        before = network.predict(x)
        # Perturb, then restore.
        for layer in network.trainable_layers():
            layer.weights += 1.0
        network.set_weights(weights)
        np.testing.assert_allclose(network.predict(x), before)

    def test_set_weights_wrong_length_rejected(self, rng):
        network = FeedForwardNetwork.mlp(3, (5,), 1, rng=rng)
        with pytest.raises(ValueError):
            network.set_weights(network.get_weights()[:-1])

    def test_dropout_only_active_in_training(self, rng):
        network = FeedForwardNetwork.mlp(4, (32, 32), 1, dropout_rate=0.5, rng=rng)
        x = np.ones((4, 4))
        inference_a = network.predict(x)
        inference_b = network.predict(x)
        np.testing.assert_allclose(inference_a, inference_b)


class TestTrainValidationSplit:
    def test_split_sizes(self, rng):
        x = np.arange(40, dtype=float).reshape(20, 2)
        y = np.arange(20, dtype=float).reshape(20, 1)
        xt, yt, xv, yv = train_validation_split(x, y, train_fraction=0.6, rng=rng)
        assert xt.shape[0] == 12 and xv.shape[0] == 8
        assert yt.shape[0] == 12 and yv.shape[0] == 8

    def test_rows_stay_paired(self, rng):
        x = np.arange(20, dtype=float).reshape(10, 2)
        y = x.sum(axis=1, keepdims=True)
        xt, yt, _, _ = train_validation_split(x, y, rng=rng)
        np.testing.assert_allclose(xt.sum(axis=1, keepdims=True), yt)

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            train_validation_split(np.ones((4, 1)), np.ones((4, 1)), train_fraction=1.5, rng=rng)

    def test_mismatched_rows_rejected(self, rng):
        with pytest.raises(ValueError):
            train_validation_split(np.ones((4, 1)), np.ones((5, 1)), rng=rng)


class TestOptimizers:
    def test_sgd_reduces_simple_quadratic_loss(self, rng):
        network = FeedForwardNetwork.mlp(1, (8,), 1, rng=rng)
        x = np.linspace(-1, 1, 32).reshape(-1, 1)
        y = 2.0 * x
        result = train_network(
            network, x, y, epochs=60, batch_size=8, optimizer=SGD(learning_rate=0.01), rng=rng
        )
        assert result.history.train_loss[-1] < result.history.train_loss[0]

    def test_adam_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.0)

    def test_sgd_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.5)

    @staticmethod
    def _dense_with_unit_grad() -> Dense:
        layer = Dense(1, 1, rng=np.random.default_rng(0))
        layer.weights[...] = 0.0
        layer.bias[...] = 0.0
        layer.grad_weights = np.array([[1.0]])
        layer.grad_bias = np.array([0.0])
        return layer

    def test_optimizer_pins_layers_against_id_reuse(self):
        # State is keyed by id(layer); the optimizer must hold a strong
        # reference so a collected layer's id can never be recycled by an
        # unrelated layer that would then inherit stale moment estimates.
        optimizer = Adam()
        layer = self._dense_with_unit_grad()
        ref = weakref.ref(layer)
        optimizer.step([layer])
        del layer
        gc.collect()
        assert ref() is not None

    def test_fresh_layer_gets_fresh_adam_state(self):
        # After many steps on one layer, a brand-new layer must start from
        # zero moments and t=1: its first bias-corrected update is exactly
        # lr * g / (|g| + eps).  Stale moments or a shared global step count
        # would both produce a visibly different first update.
        optimizer = Adam(learning_rate=0.1)
        veteran = self._dense_with_unit_grad()
        for _ in range(50):
            optimizer.step([veteran])
        fresh = self._dense_with_unit_grad()
        optimizer.step([fresh])
        assert fresh.weights[0, 0] == pytest.approx(-0.1, rel=1e-6)

    def test_two_networks_sharing_one_optimizer_train_independently(self, rng):
        # Training net B through an optimizer that already trained net A must
        # produce exactly the weights net B would get from a fresh optimizer.
        x = rng.uniform(-1, 1, size=(40, 1))
        y = 2.0 * x
        shared = Adam(learning_rate=0.01)
        net_a = FeedForwardNetwork.mlp(1, (8,), 1, rng=np.random.default_rng(1))
        train_network(net_a, x, y, epochs=5, optimizer=shared, rng=np.random.default_rng(2))

        net_b = FeedForwardNetwork.mlp(1, (8,), 1, rng=np.random.default_rng(3))
        net_c = FeedForwardNetwork.mlp(1, (8,), 1, rng=np.random.default_rng(3))
        train_network(net_b, x, y, epochs=5, optimizer=shared, rng=np.random.default_rng(4))
        train_network(
            net_c, x, y, epochs=5, optimizer=Adam(learning_rate=0.01),
            rng=np.random.default_rng(4),
        )
        for shared_weights, fresh_weights in zip(net_b.get_weights(), net_c.get_weights()):
            for name in shared_weights:
                np.testing.assert_array_equal(shared_weights[name], fresh_weights[name])


class TestTrainNetwork:
    def test_learns_linear_function(self, rng):
        network = FeedForwardNetwork.mlp(2, (16, 16), 1, rng=rng)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = (3.0 * x[:, :1] - 2.0 * x[:, 1:2])
        result = train_network(network, x, y, epochs=120, batch_size=16, rng=rng)
        predictions = network.predict(x)
        mae = np.abs(predictions - y).mean()
        assert mae < 0.25

    def test_history_lengths_match_epochs(self, rng):
        network = FeedForwardNetwork.mlp(1, (4,), 1, rng=rng)
        x = np.ones((10, 1))
        y = np.ones((10, 1))
        result = train_network(network, x, y, epochs=5, rng=rng)
        assert len(result.history.train_loss) == 5
        assert len(result.history.validation_loss) == 5

    def test_split_counts_reported(self, rng):
        network = FeedForwardNetwork.mlp(1, (4,), 1, rng=rng)
        x = np.ones((10, 1))
        y = np.ones((10, 1))
        result = train_network(network, x, y, epochs=2, train_fraction=0.6, rng=rng)
        assert result.n_train_samples + result.n_validation_samples == 10

    def test_invalid_epochs_rejected(self, rng):
        network = FeedForwardNetwork.mlp(1, (4,), 1, rng=rng)
        with pytest.raises(ValueError):
            train_network(network, np.ones((4, 1)), np.ones((4, 1)), epochs=0, rng=rng)

    def test_epoch_loss_weights_ragged_final_batch(self, rng):
        # 10 samples -> 6 train; batch_size 4 leaves a ragged batch of 2.  With
        # a (practically) frozen network the reported epoch loss must equal the
        # loss over the whole training split — i.e. the per-batch losses
        # averaged weighted by batch size, not the unweighted batch mean.
        inputs = rng.uniform(-1, 1, size=(10, 1))
        targets = rng.uniform(-1, 1, size=(10, 1))
        network = FeedForwardNetwork.mlp(1, (4,), 1, rng=np.random.default_rng(0))
        result = train_network(
            network, inputs, targets, epochs=1, batch_size=4,
            optimizer=SGD(learning_rate=1e-15), rng=np.random.default_rng(5),
        )
        # Replay the split and shuffle with the identical rng stream.
        replay_rng = np.random.default_rng(5)
        x_train, y_train, _, _ = train_validation_split(
            inputs, targets, train_fraction=0.6, rng=replay_rng
        )
        order = replay_rng.permutation(len(x_train))
        loss_fn = MeanSquaredError()
        batch_losses = []
        batch_sizes = []
        for start in range(0, len(x_train), 4):
            batch_idx = order[start : start + 4]
            batch_losses.append(
                loss_fn.forward(network.predict(x_train[batch_idx]), y_train[batch_idx])
            )
            batch_sizes.append(len(batch_idx))
        weighted = sum(l * n for l, n in zip(batch_losses, batch_sizes)) / sum(batch_sizes)
        unweighted = float(np.mean(batch_losses))
        assert abs(weighted - unweighted) > 1e-6  # the bug would be visible here
        assert result.history.train_loss[0] == pytest.approx(weighted, rel=1e-9)
